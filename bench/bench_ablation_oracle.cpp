// Ablation — near-optimality beyond the analytic bound: the designed
// piecewise-linear contract vs a fine-grid oracle that may use any contract
// shape, across effort-function shapes, omega, and partition density.
//
// The Theorem 4.1 bound certifies convergence analytically; this bench
// quantifies the actual optimality ratio the candidate-selection algorithm
// achieves at practical m.
#include <cstdio>

#include "contract/baselines.hpp"
#include "contract/designer.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  params.assert_all_consumed();

  std::printf("== Ablation: designed contract vs unrestricted oracle ==\n\n");

  struct Shape {
    const char* name;
    double r2, r1, r0;
  };
  const Shape shapes[] = {
      {"steep (-1, 8, 2)", -1.0, 8.0, 2.0},
      {"gentle (-0.5, 4, 0.5)", -0.5, 4.0, 0.5},
      {"sharp (-2.5, 14, 4)", -2.5, 14.0, 4.0},
      {"flat (-0.08, 1.2, 0.1)", -0.08, 1.2, 0.1},
  };

  util::TextTable table({"psi", "omega", "m", "designed", "oracle",
                         "ratio %"});
  for (const Shape& shape : shapes) {
    for (const double omega : {0.0, 0.25, 0.5}) {
      for (const std::size_t m : {10ul, 20ul, 40ul, 80ul}) {
        contract::SubproblemSpec spec;
        spec.psi = effort::QuadraticEffort(shape.r2, shape.r1, shape.r0);
        spec.incentives = {1.0, omega};
        spec.weight = 1.0;
        spec.mu = 1.0;
        spec.intervals = m;
        const contract::DesignResult d = contract::design_contract(spec);
        const contract::OracleOutcome oracle = contract::oracle_optimal(spec);
        table.add_row(
            {shape.name, util::format_double(omega, 2), std::to_string(m),
             util::format_double(d.requester_utility, 4),
             util::format_double(oracle.requester_utility, 4),
             util::format_double(
                 100.0 * d.requester_utility / oracle.requester_utility, 2)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: the ratio climbs toward 100%% as m grows, for "
              "every psi and omega.\n");
  return 0;
}
