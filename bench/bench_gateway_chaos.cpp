// Gateway chaos — kill -9 a shard mid-campaign and prove nothing is lost.
//
// Boots `shards` real ccdd daemon processes (fork/exec, Unix sockets,
// per-shard checkpoint directories, checkpoint_every=1) behind an
// in-process serve::Gateway, then drives `sessions` concurrent campaigns
// through the gateway from `drivers` closed-loop client threads. Once the
// campaign passes `kill_at` of its total rounds, one shard is killed with
// SIGKILL — no drain, no goodbye — and the gateway must fail over: detect
// the death, hand the victim's checkpointed sessions to the survivors,
// and keep every campaign running.
//
// The exit code is the verdict. Hard failures:
//  * any client request without exactly one response (the ledger),
//  * gateway counters that do not reconcile exactly with the
//    client-observed totals (requests == responses, and responses ==
//    local + backpressure + rejected + successful forwards + forward
//    failures),
//  * any handoff failure, or survivors whose ccd.serve.sessions_restored
//    sum differs from the gateway's sessions_handed_off,
//  * any session that does not finish its round budget,
//  * any sampled session whose final contracts are not bitwise identical
//    to an uninterrupted in-process StackelbergSimulator run on the same
//    seed — failover must be invisible in the results.
//
// With drill=1 the single SIGKILL becomes a rolling-restart drill: every
// shard in turn is SIGKILLed at a staggered point of the campaign, its
// sessions fail over to the survivors, a fresh ccdd is spawned on the
// same endpoint and rejoined with Gateway::admit_shard — which must move
// back exactly the sessions whose ring owner changed. After each death
// AND each rejoin the gateway's sessions_handed_off must equal its
// sessions_restored; at the end the drill additionally requires
// failovers == joins == shards, a zero-loss ledger, and the same bitwise
// contract samples as the undisturbed reference run.
//
// Usage: bench_gateway_chaos [shards=4] [sessions=1000] [drivers=32]
//                            [rounds=3] [workers=4] [malicious=1]
//                            [seed=3000] [kill_shard=1] [kill_at=0.25]
//                            [drill=0] [sample_every=41] [max_inflight=256]
//                            [ccdd=PATH] [out=BENCH_gateway_chaos.json]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/stackelberg.hpp"
#include "serve/client.hpp"
#include "serve/gateway.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace {

using namespace ccd;

struct ClientTally {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t transient_errors = 0;  // answered with an error, retried
};

std::uint64_t gateway_counter(const char* name) {
  namespace metrics = util::metrics;
  for (const metrics::MetricSnapshot& m : metrics::registry().snapshot()) {
    if (m.name == name) return m.counter;
  }
  return 0;
}

/// Pull one counter out of a ccd metrics JSON dump (a shard's kMetrics
/// response): `"name": {"type": "counter", "value": N}`.
std::uint64_t counter_from_json(const std::string& json,
                                const std::string& name) {
  const std::string needle = "\"" + name + "\"";
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  pos = json.find("\"value\":", pos);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + 8, nullptr, 10);
}

std::string session_id(std::size_t n) {
  return "chaos-" + std::to_string(n);
}

/// Uninterrupted reference: the same campaign, one in-process simulator.
std::vector<contract::Contract> reference_contracts(std::uint64_t rounds,
                                                    std::uint64_t workers,
                                                    std::uint64_t malicious,
                                                    std::uint64_t seed) {
  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;
  core::StackelbergSimulator sim(
      core::preset_fleet(workers, malicious), std::move(config));
  sim.run();
  return sim.contracts();
}

bool contracts_bitwise_equal(const std::vector<contract::Contract>& a,
                             const std::vector<contract::Contract>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_zero() != b[i].is_zero()) return false;
    if (a[i].is_zero()) continue;
    if (a[i].intervals() != b[i].intervals()) return false;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      // Exact double comparison on purpose: bitwise reproducibility is
      // the contract under test.
      if (a[i].knot(l) != b[i].knot(l)) return false;
      if (a[i].payment(l) != b[i].payment(l)) return false;
    }
  }
  return true;
}

pid_t spawn_ccdd(const std::string& binary, const std::string& socket,
                 const std::string& checkpoint_dir, std::size_t max_sessions,
                 const std::string& log_path) {
  // Flush before forking so the child doesn't replay buffered output.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) throw ccd::Error("fork failed: " + std::string(strerror(errno)));
  if (pid > 0) return pid;
  // Child: quiet stdout/stderr into the shard log, then exec ccdd.
  std::FILE* log = std::freopen(log_path.c_str(), "w", stdout);
  if (log != nullptr) ::dup2(::fileno(stdout), 2);
  const std::string socket_arg = "socket=" + socket;
  const std::string ckpt_arg = "checkpoint_dir=" + checkpoint_dir;
  const std::string sessions_arg =
      "max_sessions=" + std::to_string(max_sessions);
  ::execl(binary.c_str(), "ccdd", socket_arg.c_str(), ckpt_arg.c_str(),
          "checkpoint_every=1", "threads=2", "queue=64", sessions_arg.c_str(),
          "resume=1", static_cast<char*>(nullptr));
  std::fprintf(stderr, "exec %s failed: %s\n", binary.c_str(),
               strerror(errno));
  ::_exit(127);
}

void wait_for_daemon(const std::string& socket) {
  for (int i = 0; i < 200; ++i) {
    try {
      serve::Client client = serve::Client::connect_unix(socket);
      (void)client.ping();
      return;
    } catch (const ccd::Error&) {
      ::usleep(50 * 1000);
    }
  }
  throw ccd::Error("daemon on " + socket + " did not come up");
}

}  // namespace

int main(int argc, char** argv) {
  namespace metrics = util::metrics;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::size_t shards =
      static_cast<std::size_t>(params.get_int("shards", 4));
  const std::size_t sessions =
      static_cast<std::size_t>(params.get_int("sessions", 1000));
  const std::size_t drivers =
      static_cast<std::size_t>(params.get_int("drivers", 32));
  const std::uint64_t rounds =
      static_cast<std::uint64_t>(params.get_int("rounds", 3));
  const std::uint64_t workers =
      static_cast<std::uint64_t>(params.get_int("workers", 4));
  const std::uint64_t malicious =
      static_cast<std::uint64_t>(params.get_int("malicious", 1));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.get_int("seed", 3000));
  const bool drill = params.get_bool("drill", false);
  const long long kill_shard_param = params.get_int("kill_shard", 1);
  // The drill retires every shard in turn; the single-kill knob is moot.
  const long long kill_shard = drill ? -1 : kill_shard_param;
  const double kill_at = params.get_double("kill_at", 0.25);
  const std::size_t sample_every =
      static_cast<std::size_t>(params.get_int("sample_every", 41));
  const std::size_t max_inflight =
      static_cast<std::size_t>(params.get_int("max_inflight", 256));
  // Default ccdd path: next to this binary's build tree (bench/ ->
  // tools/), overridable for odd layouts.
  std::string default_ccdd = "tools/ccdd";
  {
    const std::string self = argv[0] != nullptr ? argv[0] : "";
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos) {
      default_ccdd = self.substr(0, slash) + "/../tools/ccdd";
    }
  }
  const std::string ccdd_path = params.get_string("ccdd", default_ccdd);
  const std::string out =
      params.get_string("out", "BENCH_gateway_chaos.json");
  params.assert_all_consumed();

  if (shards < 2) {
    std::fprintf(stderr, "need shards >= 2 (failover needs a survivor)\n");
    return 2;
  }
  if (kill_shard >= static_cast<long long>(shards)) {
    std::fprintf(stderr, "kill_shard=%lld out of range (shards=%zu)\n",
                 kill_shard, shards);
    return 2;
  }

  if (drill) {
    std::printf("== Gateway rolling-restart drill: %zu sessions x %llu "
                "rounds over %zu ccdd shard(s), every shard killed and "
                "rejoined in turn ==\n\n",
                sessions, static_cast<unsigned long long>(rounds), shards);
  } else {
    std::printf("== Gateway chaos: %zu sessions x %llu rounds over %zu ccdd "
                "shard(s), SIGKILL shard %lld at %.0f%% ==\n\n",
                sessions, static_cast<unsigned long long>(rounds), shards,
                kill_shard, kill_at * 100.0);
  }

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ccd_gateway_chaos_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  int exit_code = 1;
  std::vector<pid_t> pids;
  try {
    // --- Boot the fleet -------------------------------------------------
    serve::GatewayConfig gateway_config;
    for (std::size_t i = 0; i < shards; ++i) {
      serve::ShardSpec spec;
      spec.name = "shard" + std::to_string(i);
      spec.unix_socket = (dir / (spec.name + ".sock")).string();
      spec.checkpoint_dir = (dir / (spec.name + ".ckpt")).string();
      std::filesystem::create_directories(spec.checkpoint_dir);
      gateway_config.shards.push_back(spec);
    }
    for (std::size_t i = 0; i < shards; ++i) {
      const serve::ShardSpec& spec = gateway_config.shards[i];
      pids.push_back(spawn_ccdd(ccdd_path, spec.unix_socket,
                                spec.checkpoint_dir, sessions + 8,
                                (dir / (spec.name + ".log")).string()));
    }
    for (const serve::ShardSpec& spec : gateway_config.shards) {
      wait_for_daemon(spec.unix_socket);
    }

    gateway_config.unix_socket = (dir / "gateway.sock").string();
    gateway_config.max_inflight = max_inflight;
    gateway_config.health_interval_ms = 200;
    gateway_config.forward_timeout_ms = 30'000;
    serve::Gateway gateway(gateway_config);

    // Pre-kill routing snapshot: which sessions the victim owns, so the
    // bitwise sample provably covers handed-off sessions.
    std::set<std::size_t> sampled;
    const std::string victim_name =
        kill_shard >= 0 ? "shard" + std::to_string(kill_shard) : "";
    std::size_t victims_sampled = 0;
    std::size_t victim_sessions = 0;
    for (std::size_t n = 0; n < sessions; ++n) {
      const bool on_victim = gateway.shard_for(session_id(n)) == victim_name;
      victim_sessions += on_victim ? 1 : 0;
      if (n % sample_every == 0 || (on_victim && victims_sampled < 16)) {
        sampled.insert(n);
        victims_sampled += on_victim ? 1 : 0;
      }
    }

    // --- Drive the campaign --------------------------------------------
    std::vector<ClientTally> tallies(drivers);
    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> rounds_done{0};
    const std::uint64_t total_rounds = sessions * rounds;
    const auto t0 = std::chrono::steady_clock::now();

    // A request is answered with an error status when the gateway's
    // forward budget is exhausted mid-failover; that answer is part of
    // the ledger, and the op is safe to reissue (advance is budget-
    // capped). The retry cap bounds a genuinely wedged fleet.
    const auto call_admitted = [&](serve::Client& client,
                                   ClientTally& tally,
                                   serve::Request request) -> serve::Response {
      std::uint64_t request_id = 0;
      for (int attempt = 0; attempt < 200; ++attempt) {
        request.request_id = ++request_id;
        ++tally.requests;
        serve::Response response = client.call(request);
        ++tally.responses;
        if (response.status == serve::Status::kBackpressure) {
          ++tally.backpressure;
          ::usleep(200);
          continue;
        }
        if (serve::is_error(response.status)) {
          ++tally.transient_errors;
          ::usleep(10 * 1000);
          continue;
        }
        return response;
      }
      throw ccd::Error("request not admitted after 200 attempts (op " +
                       std::string(to_string(request.op)) + ", session '" +
                       request.session + "')");
    };

    std::vector<std::thread> threads;
    threads.reserve(drivers);
    for (std::size_t d = 0; d < drivers; ++d) {
      threads.emplace_back([&, d] {
        try {
          // No client-side reconnects: the gateway must never drop a
          // client connection, even while a shard dies under it.
          serve::ClientOptions options;
          options.io_timeout_ms = 0;
          options.max_reconnects = 0;
          serve::Client client = serve::Client::connect_unix(
              gateway_config.unix_socket, options);
          ClientTally& tally = tallies[d];

          std::vector<std::size_t> mine;
          for (std::size_t n = d; n < sessions; n += drivers) {
            mine.push_back(n);
          }
          for (std::size_t n : mine) {
            serve::Request open;
            open.op = serve::Op::kOpen;
            open.session = session_id(n);
            open.open.rounds = rounds;
            open.open.workers = workers;
            open.open.malicious = malicious;
            open.open.seed = seed + n;
            open.open.allow_existing = true;  // reissue-safe
            call_admitted(client, tally, open);
          }
          // Round-robin one round at a time across this driver's
          // sessions: the fleet-wide interleaving keeps every shard busy
          // when the kill lands.
          std::vector<bool> finished(mine.size(), false);
          std::size_t remaining = mine.size();
          while (remaining > 0) {
            for (std::size_t i = 0; i < mine.size(); ++i) {
              if (finished[i]) continue;
              serve::Request advance;
              advance.op = serve::Op::kAdvance;
              advance.session = session_id(mine[i]);
              advance.advance_rounds = 1;
              const serve::Response r =
                  call_admitted(client, tally, advance);
              rounds_done.fetch_add(1, std::memory_order_relaxed);
              if (r.session.finished) {
                finished[i] = true;
                --remaining;
              }
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "driver %zu failed: %s\n", d, e.what());
          failed.store(true);
        }
      });
    }

    // --- Chaos ----------------------------------------------------------
    double kill_after_s = 0.0;
    std::size_t drill_kills = 0;
    std::size_t drill_rejoins = 0;
    std::size_t drill_rejoin_moved = 0;
    bool drill_stage_ok = true;
    if (drill) {
      // Rolling restart: kill + rejoin each shard in turn, all of it
      // under live traffic. A kill -> failover -> rejoin cycle takes wall
      // time during which the drivers keep completing rounds, so the
      // schedule is dynamic: after each rejoin, wait for a burst of
      // traffic to flow through the NEW ring, then fell the next shard —
      // and hard-fail if the round budget ran dry before every shard got
      // its turn (the restarts must not land on a drained fleet).
      const std::uint64_t live_gap =
          std::max<std::uint64_t>(total_rounds / (8 * shards), 1);
      std::uint64_t next_kill_floor = live_gap;
      for (std::size_t i = 0; i < shards; ++i) {
        while (rounds_done.load(std::memory_order_relaxed) <
                   next_kill_floor &&
               !failed.load()) {
          ::usleep(1000);
        }
        if (failed.load()) break;
        const std::uint64_t at_kill =
            rounds_done.load(std::memory_order_relaxed);
        if (at_kill + total_rounds / 10 > total_rounds) {
          std::fprintf(stderr,
                       "FAIL: drill: campaign nearly drained (%llu/%llu "
                       "rounds) before killing shard %zu — raise rounds= "
                       "so every restart happens under live traffic\n",
                       static_cast<unsigned long long>(at_kill),
                       static_cast<unsigned long long>(total_rounds), i);
          drill_stage_ok = false;
          break;
        }
        const serve::ShardSpec& spec = gateway_config.shards[i];
        if (drill_kills == 0) {
          kill_after_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        }
        std::printf("drill: killing %s (pid %d) after %llu/%llu rounds...\n",
                    spec.name.c_str(), pids[i],
                    static_cast<unsigned long long>(rounds_done.load()),
                    static_cast<unsigned long long>(total_rounds));
        std::fflush(stdout);
        ::kill(pids[i], SIGKILL);
        int status = 0;
        ::waitpid(pids[i], &status, 0);
        ++drill_kills;

        // The health prober owns death detection. Wait until the victim
        // left the ring; its checkpoint handoff runs under the same
        // mutex admit_shard takes, so the rejoin below cannot overtake
        // the failover.
        bool dead_seen = false;
        for (int w = 0; w < 600; ++w) {
          if (gateway.alive_shard_count() == shards - 1) {
            dead_seen = true;
            break;
          }
          ::usleep(100 * 1000);
        }
        if (!dead_seen) {
          std::fprintf(stderr,
                       "FAIL: drill: gateway never noticed %s dying\n",
                       spec.name.c_str());
          drill_stage_ok = false;
          break;
        }

        // Same endpoint, fresh process — the daemon side of a restart.
        pids[i] = spawn_ccdd(ccdd_path, spec.unix_socket,
                             spec.checkpoint_dir, sessions + 8,
                             (dir / (spec.name + ".rejoin.log")).string());
        wait_for_daemon(spec.unix_socket);
        serve::Gateway::AdminResult joined;
        bool admitted = false;
        for (int attempt = 0; attempt < 100; ++attempt) {
          joined = gateway.admit_shard(spec);
          if (joined.status == serve::Status::kOk) {
            admitted = true;
            break;
          }
          ::usleep(100 * 1000);
        }
        if (!admitted) {
          std::fprintf(stderr, "FAIL: drill: rejoin of %s refused: %s\n",
                       spec.name.c_str(), joined.message.c_str());
          drill_stage_ok = false;
          break;
        }
        ++drill_rejoins;
        drill_rejoin_moved += joined.sessions_moved;
        std::printf("drill: rejoined %s (ring v%llu, %zu session(s) moved "
                    "back)\n",
                    spec.name.c_str(),
                    static_cast<unsigned long long>(joined.ring_version),
                    joined.sessions_moved);
        std::fflush(stdout);
#ifndef CCD_NO_METRICS
        // The handoff ledger must reconcile after every death + rejoin
        // pair, not just at the end.
        const std::uint64_t stage_handed_off =
            gateway_counter("ccd.gateway.sessions_handed_off");
        const std::uint64_t stage_restored =
            gateway_counter("ccd.gateway.sessions_restored");
        if (stage_handed_off != stage_restored) {
          std::fprintf(stderr,
                       "FAIL: drill stage %zu: handed_off %llu != "
                       "restored %llu\n",
                       i, static_cast<unsigned long long>(stage_handed_off),
                       static_cast<unsigned long long>(stage_restored));
          drill_stage_ok = false;
        }
#endif
        next_kill_floor =
            rounds_done.load(std::memory_order_relaxed) + live_gap;
      }
    } else if (kill_shard >= 0) {
      const auto threshold =
          static_cast<std::uint64_t>(kill_at * static_cast<double>(total_rounds));
      while (rounds_done.load(std::memory_order_relaxed) < threshold &&
             !failed.load()) {
        ::usleep(1000);
      }
      kill_after_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      std::printf("killing %s (pid %d) after %llu/%llu rounds...\n",
                  victim_name.c_str(),
                  pids[static_cast<std::size_t>(kill_shard)],
                  static_cast<unsigned long long>(rounds_done.load()),
                  static_cast<unsigned long long>(total_rounds));
      std::fflush(stdout);
      ::kill(pids[static_cast<std::size_t>(kill_shard)], SIGKILL);
      int status = 0;
      ::waitpid(pids[static_cast<std::size_t>(kill_shard)], &status, 0);
    }

    for (std::thread& t : threads) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    // --- Verify ---------------------------------------------------------
    bool ok = !failed.load();

    // Bitwise check before touching counters is fine: verification
    // traffic is tallied like campaign traffic, and the reconciliation
    // below reads the counters after ALL traffic is done.
    serve::ClientOptions options;
    options.max_reconnects = 0;
    serve::Client verifier =
        serve::Client::connect_unix(gateway_config.unix_socket, options);
    ClientTally verify_tally;
    std::size_t bitwise_mismatches = 0;
    std::size_t unfinished = 0;
    for (std::size_t n : sampled) {
      serve::Request status_req;
      status_req.op = serve::Op::kStatus;
      status_req.session = session_id(n);
      const serve::Response status =
          call_admitted(verifier, verify_tally, status_req);
      if (!status.session.finished) {
        ++unfinished;
        continue;
      }
      serve::Request contracts_req;
      contracts_req.op = serve::Op::kContracts;
      contracts_req.session = session_id(n);
      const serve::Response got =
          call_admitted(verifier, verify_tally, contracts_req);
      if (!contracts_bitwise_equal(
              got.contracts,
              reference_contracts(rounds, workers, malicious, seed + n))) {
        std::fprintf(stderr,
                     "FAIL: session %s contracts differ from the "
                     "uninterrupted reference run\n",
                     session_id(n).c_str());
        ++bitwise_mismatches;
      }
    }
    if (unfinished > 0) {
      std::fprintf(stderr, "FAIL: %zu sampled session(s) never finished\n",
                   unfinished);
      ok = false;
    }
    if (bitwise_mismatches > 0) ok = false;

    // Survivors' ledger: every session the gateway claims to have handed
    // off must have been installed by exactly one surviving shard. A
    // restore that races a retried advance can land as a reload (the
    // restore checkpoints to disk before publishing, and the advance
    // reloads those same bytes) — same session, same bits, different
    // counter — so the exact invariant is restored + reloaded, and
    // nothing in this bench reloads for any other reason.
    std::uint64_t survivors_restored = 0;
    for (std::size_t i = 0; i < shards; ++i) {
      if (static_cast<long long>(i) == kill_shard) continue;
      serve::Client shard_client = serve::Client::connect_unix(
          gateway_config.shards[i].unix_socket, options);
      const std::string shard_metrics = shard_client.metrics(false);
      survivors_restored +=
          counter_from_json(shard_metrics, "ccd.serve.sessions_restored") +
          counter_from_json(shard_metrics, "ccd.serve.sessions_reloaded");
    }

    ClientTally total = verify_tally;
    for (const ClientTally& t : tallies) {
      total.requests += t.requests;
      total.responses += t.responses;
      total.backpressure += t.backpressure;
      total.transient_errors += t.transient_errors;
    }

    const std::uint64_t gw_requests = gateway_counter("ccd.gateway.requests");
    const std::uint64_t gw_responses =
        gateway_counter("ccd.gateway.responses");
    const std::uint64_t gw_local = gateway_counter("ccd.gateway.local");
    const std::uint64_t gw_backpressure =
        gateway_counter("ccd.gateway.backpressure");
    const std::uint64_t gw_rejected = gateway_counter("ccd.gateway.rejected");
    const std::uint64_t gw_forwards = gateway_counter("ccd.gateway.forwards");
    const std::uint64_t gw_retries =
        gateway_counter("ccd.gateway.forward_retries");
    const std::uint64_t gw_forward_failures =
        gateway_counter("ccd.gateway.forward_failures");
    const std::uint64_t gw_failovers =
        gateway_counter("ccd.gateway.failovers");
    const std::uint64_t gw_handed_off =
        gateway_counter("ccd.gateway.sessions_handed_off");
    const std::uint64_t gw_handoff_failures =
        gateway_counter("ccd.gateway.handoff_failures");
    const std::uint64_t gw_restored =
        gateway_counter("ccd.gateway.sessions_restored");
    const std::uint64_t gw_joins = gateway_counter("ccd.gateway.joins");

    if (total.responses != total.requests) {
      std::fprintf(stderr,
                   "FAIL: clients sent %llu requests, received %llu "
                   "responses\n",
                   static_cast<unsigned long long>(total.requests),
                   static_cast<unsigned long long>(total.responses));
      ok = false;
    }
#ifndef CCD_NO_METRICS
    if (gw_requests != total.requests || gw_responses != total.requests) {
      std::fprintf(stderr,
                   "FAIL: gateway ledger (requests=%llu responses=%llu) "
                   "does not reconcile with client-observed %llu\n",
                   static_cast<unsigned long long>(gw_requests),
                   static_cast<unsigned long long>(gw_responses),
                   static_cast<unsigned long long>(total.requests));
      ok = false;
    }
    if (gw_responses != gw_local + gw_backpressure + gw_rejected +
                            (gw_forwards - gw_retries) + gw_forward_failures) {
      std::fprintf(stderr,
                   "FAIL: gateway response breakdown does not reconcile: "
                   "%llu != local %llu + backpressure %llu + rejected %llu "
                   "+ (forwards %llu - retries %llu) + failures %llu\n",
                   static_cast<unsigned long long>(gw_responses),
                   static_cast<unsigned long long>(gw_local),
                   static_cast<unsigned long long>(gw_backpressure),
                   static_cast<unsigned long long>(gw_rejected),
                   static_cast<unsigned long long>(gw_forwards),
                   static_cast<unsigned long long>(gw_retries),
                   static_cast<unsigned long long>(gw_forward_failures));
      ok = false;
    }
    if (gw_handoff_failures != 0) {
      std::fprintf(stderr, "FAIL: %llu session handoff(s) failed\n",
                   static_cast<unsigned long long>(gw_handoff_failures));
      ok = false;
    }
    if (!drill && kill_shard >= 0 && gw_failovers != 1) {
      std::fprintf(stderr, "FAIL: expected exactly 1 failover, saw %llu\n",
                   static_cast<unsigned long long>(gw_failovers));
      ok = false;
    }
    if (gw_handed_off != gw_restored) {
      std::fprintf(stderr,
                   "FAIL: gateway handed off %llu session(s) but restored "
                   "%llu\n",
                   static_cast<unsigned long long>(gw_handed_off),
                   static_cast<unsigned long long>(gw_restored));
      ok = false;
    }
    if (drill && gw_failovers != shards) {
      std::fprintf(stderr,
                   "FAIL: drill killed %zu shard(s) but the gateway saw "
                   "%llu failover(s)\n",
                   shards, static_cast<unsigned long long>(gw_failovers));
      ok = false;
    }
    if (drill && gw_joins != shards) {
      std::fprintf(stderr,
                   "FAIL: drill rejoined %zu shard(s) but the gateway "
                   "counted %llu join(s)\n",
                   shards, static_cast<unsigned long long>(gw_joins));
      ok = false;
    }
    // The shard-side cross-check only holds when no shard restarted (a
    // restart zeroes the shard's own counters); the drill relies on the
    // gateway-side handed_off == restored ledger instead.
    if (!drill && survivors_restored != gw_handed_off) {
      std::fprintf(stderr,
                   "FAIL: gateway handed off %llu session(s) but survivors "
                   "restored %llu\n",
                   static_cast<unsigned long long>(gw_handed_off),
                   static_cast<unsigned long long>(survivors_restored));
      ok = false;
    }
#endif
    if (drill && !drill_stage_ok) ok = false;
    if (drill && drill_rejoins != shards) ok = false;

    // --- Teardown -------------------------------------------------------
    verifier.shutdown_server();  // broadcast: drains every surviving shard
    for (std::size_t i = 0; i < shards; ++i) {
      if (static_cast<long long>(i) == kill_shard) continue;
      int status = 0;
      ::waitpid(pids[i], &status, 0);
    }
    pids.clear();
    gateway.stop();

    const double throughput =
        wall_s > 0.0 ? static_cast<double>(total.responses) / wall_s : 0.0;
    std::printf("\nrequests sent         : %llu\n",
                static_cast<unsigned long long>(total.requests));
    std::printf("responses received    : %llu\n",
                static_cast<unsigned long long>(total.responses));
    std::printf("backpressure rejects  : %llu\n",
                static_cast<unsigned long long>(total.backpressure));
    std::printf("transient error resps : %llu\n",
                static_cast<unsigned long long>(total.transient_errors));
    std::printf("forwards / retries    : %llu / %llu\n",
                static_cast<unsigned long long>(gw_forwards),
                static_cast<unsigned long long>(gw_retries));
    std::printf("failovers             : %llu (victim owned %zu sessions, "
                "%llu handed off, %llu restored, %llu failures)\n",
                static_cast<unsigned long long>(gw_failovers),
                victim_sessions,
                static_cast<unsigned long long>(gw_handed_off),
                static_cast<unsigned long long>(gw_restored),
                static_cast<unsigned long long>(gw_handoff_failures));
    if (drill) {
      std::printf("rolling restart       : %zu kill(s), %zu rejoin(s), "
                  "%zu session(s) moved back on rejoin\n",
                  drill_kills, drill_rejoins, drill_rejoin_moved);
    }
    std::printf("bitwise samples       : %zu (%zu from the victim), "
                "%zu mismatches\n",
                sampled.size(), victims_sampled, bitwise_mismatches);
    std::printf("wall time             : %.3f s (kill at %.3f s)\n", wall_s,
                kill_after_s);
    std::printf("throughput            : %.1f responses/s\n", throughput);

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"gateway_chaos\",\n"
          "  \"shards\": %zu,\n"
          "  \"sessions\": %zu,\n"
          "  \"rounds_per_session\": %llu,\n"
          "  \"requests\": %llu,\n"
          "  \"responses\": %llu,\n"
          "  \"backpressure_rejects\": %llu,\n"
          "  \"transient_error_responses\": %llu,\n"
          "  \"forwards\": %llu,\n"
          "  \"forward_retries\": %llu,\n"
          "  \"forward_failures\": %llu,\n"
          "  \"failovers\": %llu,\n"
          "  \"victim_sessions\": %zu,\n"
          "  \"sessions_handed_off\": %llu,\n"
          "  \"sessions_restored\": %llu,\n"
          "  \"handoff_failures\": %llu,\n"
          "  \"survivors_restored\": %llu,\n"
          "  \"drill\": %s,\n"
          "  \"drill_kills\": %zu,\n"
          "  \"drill_rejoins\": %zu,\n"
          "  \"drill_rejoin_sessions_moved\": %zu,\n"
          "  \"joins\": %llu,\n"
          "  \"bitwise_samples\": %zu,\n"
          "  \"bitwise_mismatches\": %zu,\n"
          "  \"kill_after_seconds\": %.6f,\n"
          "  \"wall_seconds\": %.6f,\n"
          "  \"throughput_rps\": %.3f,\n"
          "  \"ok\": %s\n"
          "}\n",
          shards, sessions, static_cast<unsigned long long>(rounds),
          static_cast<unsigned long long>(total.requests),
          static_cast<unsigned long long>(total.responses),
          static_cast<unsigned long long>(total.backpressure),
          static_cast<unsigned long long>(total.transient_errors),
          static_cast<unsigned long long>(gw_forwards),
          static_cast<unsigned long long>(gw_retries),
          static_cast<unsigned long long>(gw_forward_failures),
          static_cast<unsigned long long>(gw_failovers), victim_sessions,
          static_cast<unsigned long long>(gw_handed_off),
          static_cast<unsigned long long>(gw_restored),
          static_cast<unsigned long long>(gw_handoff_failures),
          static_cast<unsigned long long>(survivors_restored),
          drill ? "true" : "false", drill_kills, drill_rejoins,
          drill_rejoin_moved, static_cast<unsigned long long>(gw_joins),
          sampled.size(), bitwise_mismatches, kill_after_s, wall_s,
          throughput, ok ? "true" : "false");
      std::fclose(f);
      std::printf("wrote %s\n", out.c_str());
    } else {
      std::fprintf(stderr, "cannot open '%s' for writing\n", out.c_str());
      ok = false;
    }

    std::printf(ok ? "gateway chaos: OK — fail over left no request "
                     "unanswered and no bit changed\n"
                   : "gateway chaos: FAILED\n");
    exit_code = ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gateway chaos: %s\n", e.what());
    exit_code = 1;
  }

  // Belt and braces: never leave ccdd orphans behind.
  for (pid_t pid : pids) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  std::filesystem::remove_all(dir);
  return exit_code;
}
