// Fig. 8(c) — requester utility of the dynamic contract vs the baseline
// that simply excludes all suspected malicious workers, across mu.
//
// Paper shape: the dynamic contract strictly beats exclusion, because it
// extracts value from malicious workers whose reviews are biased yet still
// accurate enough to carry a positive weight, while zero-weight workers are
// eliminated automatically.
//
// Usage: bench_fig8c_vs_baseline [scale=full|medium|small]
#include <cstdio>

#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "full");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::amazon2015();
  if (scale == "medium") gen = data::GeneratorParams::medium();
  else if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Fig. 8(c): dynamic contract vs exclude-all-malicious ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  std::printf("trace: %s\n\n", trace.stats().to_string().c_str());

  util::TextTable table({"mu", "dynamic (ours)", "exclusion", "fixed-pay",
                         "gain over exclusion %"});
  for (const double mu : {1.0, 0.9, 0.8}) {
    core::PipelineConfig dynamic;
    dynamic.requester.mu = mu;
    core::PipelineConfig exclusion = dynamic;
    exclusion.strategy = core::PricingStrategy::kExcludeMalicious;
    core::PipelineConfig fixed = dynamic;
    fixed.strategy = core::PricingStrategy::kFixedPayment;
    fixed.fixed_payment = 2.0;
    fixed.fixed_threshold_effort = 1.0;

    const double u_dynamic =
        core::run_pipeline(trace, dynamic).total_requester_utility;
    const double u_exclusion =
        core::run_pipeline(trace, exclusion).total_requester_utility;
    const double u_fixed =
        core::run_pipeline(trace, fixed).total_requester_utility;
    table.add_row({util::format_double(mu, 1),
                   util::format_double(u_dynamic, 1),
                   util::format_double(u_exclusion, 1),
                   util::format_double(u_fixed, 1),
                   util::format_double(
                       100.0 * (u_dynamic - u_exclusion) / u_exclusion, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape check: ours > exclusion for every mu.\n");
  return 0;
}
