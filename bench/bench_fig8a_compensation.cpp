// Fig. 8(a) — compensation paid to 200 active honest workers (those with at
// least 20 reviews) under the designed contract, against the Lemma 4.3
// compensation lower bound, for m = 10, 20, 40 effort intervals.
//
// Paper shape: the gap between each worker's compensation and its lower
// bound shrinks as m increases (the contract converges to the cheapest
// incentive-compatible one).
//
// Usage: bench_fig8a_compensation [workers=200] [min_reviews=20]
//        [scale=full|medium]
#include <cstdio>
#include <vector>

#include "core/requester.hpp"
#include "contract/bounds.hpp"
#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "data/generator.hpp"
#include "data/metrics.hpp"
#include "detect/expert.hpp"
#include "detect/malicious.hpp"
#include "effort/fitting.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::size_t want_workers =
      static_cast<std::size_t>(params.get_int("workers", 200));
  const std::size_t min_reviews =
      static_cast<std::size_t>(params.get_int("min_reviews", 20));
  const std::string scale = params.get_string("scale", "full");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::amazon2015();
  if (scale == "medium") gen = data::GeneratorParams::medium();

  std::printf("== Fig. 8(a): compensation vs Lemma 4.3 lower bound ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  const data::WorkerMetrics metrics(trace);
  const detect::ExpertPanel experts(trace, metrics);
  const detect::MaliciousDetector detector(trace, experts);
  const effort::ClassFits fits = effort::fit_all_classes(metrics);

  // Select the paper's cohort: active honest workers.
  std::vector<data::WorkerId> cohort;
  for (const data::Worker& w : trace.workers()) {
    if (w.true_class != data::WorkerClass::kHonest) continue;
    if (trace.reviews_of_worker(w.id).size() < min_reviews) continue;
    cohort.push_back(w.id);
    if (cohort.size() == want_workers) break;
  }
  std::printf("cohort: %zu honest workers with >= %zu reviews\n\n",
              cohort.size(), min_reviews);

  const core::RequesterConfig requester;
  util::TextTable table({"m", "mean comp", "mean bound", "mean gap",
                         "max gap", "gap/comp %"});
  for (const std::size_t m : {10ul, 20ul, 40ul}) {
    // The whole cohort shares (psi, beta, mu, m) and differs only in the
    // Eq. 5 weight — exactly the sharing design_contracts_batch exploits
    // (one k-sweep for all 200 workers).
    std::vector<contract::SubproblemSpec> specs;
    specs.reserve(cohort.size());
    for (const data::WorkerId id : cohort) {
      // Per-worker accuracy drives the weight (Eq. 5); honest workers have
      // no partners and a low detector score.
      double distance = 0.0;
      for (const data::ReviewId rid : trace.reviews_of_worker(id)) {
        const data::Review& r = trace.review(rid);
        distance += std::abs(r.score - experts.consensus(r.product));
      }
      distance /= static_cast<double>(trace.reviews_of_worker(id).size());

      contract::SubproblemSpec spec;
      spec.psi = fits.honest.model;
      spec.incentives = {requester.beta, 0.0};
      spec.weight = core::feedback_weight(requester, distance,
                                          detector.probability(id), 0);
      spec.mu = requester.mu;
      spec.intervals = m;
      specs.push_back(spec);
    }
    const std::vector<contract::DesignResult> designs =
        contract::design_contracts_batch(specs);

    std::vector<double> comps;
    std::vector<double> gaps;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const contract::DesignResult& d = designs[i];
      if (d.excluded) continue;
      const double bound = contract::lemma43_compensation_lower(
          specs[i].psi, requester.beta, specs[i].delta(), d.k_opt);
      comps.push_back(d.response.compensation);
      gaps.push_back(d.response.compensation - bound);
    }
    const util::Summary comp_summary = util::summarize(comps);
    const util::Summary gap_summary = util::summarize(gaps);
    table.add_row(
        {std::to_string(m), util::format_double(comp_summary.mean, 4),
         util::format_double(comp_summary.mean - gap_summary.mean, 4),
         util::format_double(gap_summary.mean, 4),
         util::format_double(gap_summary.max, 4),
         util::format_double(100.0 * gap_summary.mean / comp_summary.mean,
                             2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape check: the compensation-vs-bound gap shrinks as "
              "m grows (10 -> 20 -> 40).\n");
  return 0;
}
