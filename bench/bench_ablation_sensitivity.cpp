// Ablation — sensitivity of the pipeline to the Eq. 5 penalty coefficients
// (kappa: maliciousness, gamma: partners) and to the assumed malicious
// feedback motive omega (which the paper leaves unspecified).
//
// Usage: bench_ablation_sensitivity [scale=medium|small]
#include <cstdio>

#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

double mean_comp(const ccd::core::PipelineResult& r,
                 ccd::data::WorkerClass cls) {
  const auto v = r.compensations_of_class(cls);
  double total = 0.0;
  for (const double x : v) total += x;
  return v.empty() ? 0.0 : total / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "medium");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::medium();
  if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Ablation: sensitivity to kappa, gamma, omega ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  std::printf("trace: %s\n\n", trace.stats().to_string().c_str());

  const auto run_with = [&](double kappa, double gamma, double omega) {
    core::PipelineConfig config;
    config.requester.kappa = kappa;
    config.requester.gamma = gamma;
    config.requester.omega_malicious = omega;
    return core::run_pipeline(trace, config);
  };

  std::printf("-- kappa sweep (gamma=0.1, omega=0.5) --\n");
  {
    util::TextTable table({"kappa", "utility", "excluded", "honest comp",
                           "ncm comp", "cm comp"});
    for (const double kappa : {0.0, 0.1, 0.3, 0.6, 1.0}) {
      const core::PipelineResult r = run_with(kappa, 0.1, 0.5);
      table.add_row({util::format_double(kappa, 2),
                     util::format_double(r.total_requester_utility, 1),
                     std::to_string(r.excluded_workers),
                     util::format_double(
                         mean_comp(r, data::WorkerClass::kHonest), 3),
                     util::format_double(
                         mean_comp(r, data::WorkerClass::kNonCollusiveMalicious), 3),
                     util::format_double(
                         mean_comp(r, data::WorkerClass::kCollusiveMalicious), 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("-- gamma sweep (kappa=0.1, omega=0.5) --\n");
  {
    util::TextTable table({"gamma", "utility", "excluded", "cm comp"});
    for (const double gamma : {0.0, 0.1, 0.3, 0.6, 1.0}) {
      const core::PipelineResult r = run_with(0.1, gamma, 0.5);
      table.add_row({util::format_double(gamma, 2),
                     util::format_double(r.total_requester_utility, 1),
                     std::to_string(r.excluded_workers),
                     util::format_double(
                         mean_comp(r, data::WorkerClass::kCollusiveMalicious), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("shape check: a larger partner penalty gamma squeezes CM "
                "pay toward zero.\n\n");
  }

  std::printf("-- omega sweep (kappa=gamma=0.1) --\n");
  {
    util::TextTable table({"omega", "utility", "ncm comp", "cm comp"});
    for (const double omega : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      const core::PipelineResult r = run_with(0.1, 0.1, omega);
      table.add_row({util::format_double(omega, 2),
                     util::format_double(r.total_requester_utility, 1),
                     util::format_double(
                         mean_comp(r, data::WorkerClass::kNonCollusiveMalicious), 3),
                     util::format_double(
                         mean_comp(r, data::WorkerClass::kCollusiveMalicious), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("shape check: the more self-motivated the requester assumes "
                "malicious workers are (larger omega), the less it pays "
                "them.\n");
  }
  return 0;
}
