// Extension — the §VII classification generalization, swept over the
// adversarial fraction of the pool: aggregate label quality and requester
// utility for dynamic contracts vs the flat-pay baseline.
//
// Shape: contracts hold aggregate accuracy high as adversaries increase
// (suspects get near-zero-pay contracts and down-weighted votes), while the
// flat-pay baseline's quality decays.
#include <cstdio>

#include "tasks/campaign.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const auto pool_size = static_cast<std::size_t>(params.get_int("pool", 12));
  params.assert_all_consumed();

  std::printf("== Extension: classification campaign vs adversarial share ==\n\n");

  util::TextTable table({"adversaries", "acc majority", "acc weighted",
                         "acc flat-pay", "utility ours", "utility flat"});
  for (const std::size_t adversaries : {0ul, 1ul, 2ul, 3ul, 4ul, 5ul}) {
    std::vector<tasks::LabelerSpec> pool;
    for (std::size_t i = 0; i + adversaries < pool_size; ++i) {
      tasks::LabelerSpec s;
      s.name = "d" + std::to_string(i);
      s.accuracy.cap = 0.9 + 0.01 * static_cast<double>(i % 5);
      pool.push_back(s);
    }
    for (std::size_t i = 0; i < adversaries; ++i) {
      tasks::LabelerSpec s;
      s.name = "a" + std::to_string(i);
      s.type = tasks::LabelerType::kAdversarial;
      s.omega = 0.5;
      s.target_label = true;
      pool.push_back(s);
    }
    tasks::CampaignConfig config;
    config.seed = 17 + adversaries;
    const tasks::CampaignResult r = tasks::run_campaign(pool, config);
    table.add_row({std::to_string(adversaries),
                   util::format_double(r.accuracy_majority, 4),
                   util::format_double(r.accuracy_weighted, 4),
                   util::format_double(r.baseline_accuracy_majority, 4),
                   util::format_double(r.requester_utility, 1),
                   util::format_double(r.baseline_requester_utility, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: weighted-vote accuracy stays high as the "
              "adversarial share grows; the flat-pay baseline degrades and "
              "its utility can go negative.\n");
  return 0;
}
