// Fig. 8(b) — mean / 5th / 95th percentile compensation per worker class for
// mu in {1.0, 0.9, 0.8} (the requester's weight on compensation), from the
// full pipeline.
//
// Paper shape: (1) compensation rises as mu falls (a "generous" requester);
// (2) honest workers are paid more than non-collusive malicious workers,
// who are paid more than collusive malicious workers.
//
// Usage: bench_fig8b_mu_sweep [scale=full|medium|small]
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "data/generator.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "full");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::amazon2015();
  if (scale == "medium") gen = data::GeneratorParams::medium();
  else if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Fig. 8(b): compensation by class for mu in {1.0,0.9,0.8} ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  std::printf("trace: %s\n\n", trace.stats().to_string().c_str());

  util::TextTable table(
      {"mu", "class", "count", "mean", "p5", "p95"});
  for (const double mu : {1.0, 0.9, 0.8}) {
    core::PipelineConfig config;
    config.requester.mu = mu;
    const core::PipelineResult result = core::run_pipeline(trace, config);
    const std::pair<data::WorkerClass, const char*> classes[] = {
        {data::WorkerClass::kHonest, "honest"},
        {data::WorkerClass::kNonCollusiveMalicious, "ncm"},
        {data::WorkerClass::kCollusiveMalicious, "cm"},
    };
    for (const auto& [cls, label] : classes) {
      const util::Summary s =
          util::summarize(result.compensations_of_class(cls));
      table.add_row({util::format_double(mu, 1), label,
                     std::to_string(s.count), util::format_double(s.mean, 4),
                     util::format_double(s.p5, 4),
                     util::format_double(s.p95, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape checks: mean pay rises as mu falls; honest mean "
              "> ncm mean and honest mean > cm mean for every mu.\n");
  return 0;
}
