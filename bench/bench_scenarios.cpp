// Scenario matrix — every designer policy against every adversarial
// scenario (ROADMAP item 5; see src/scenario/scenario.hpp).
//
// Runs the full preset catalog (paper, sybil, adaptive, misreport,
// churn, mixed) x every policy column (dynamic, static, fixed, exclude),
// scoring each cell on requester utility, planted-adversary detection
// precision/recall, planted-community recovery, and quarantine counts.
// Per-cell invariants are asserted, not just reported: every score must
// be finite, detector recall on planted adversaries must clear
// `recall_floor`, and the dynamic designer must beat the fixed-contract
// baseline under every adversary. Any violation is a non-zero exit, so
// the matrix doubles as a regression gate for the designer's robustness
// trajectory.
//
// Writes the machine-readable cell dump to `out=` (default
// BENCH_scenarios.json) for the perf/quality tracking pipeline.
//
// Usage: bench_scenarios [seed=99] [rounds=24] [threads=0]
//                        [recall_floor=0.5] [out=BENCH_scenarios.json]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.get_int("seed", 99));
  const std::size_t rounds =
      static_cast<std::size_t>(params.get_int("rounds", 24));
  const double recall_floor = params.get_double("recall_floor", 0.5);
  scenario::RunOptions options;
  options.threads = static_cast<std::size_t>(params.get_int("threads", 0));
  const std::string out = params.get_string("out", "BENCH_scenarios.json");
  params.assert_all_consumed();

  std::vector<scenario::ScenarioSpec> specs = scenario::ScenarioSpec::matrix();
  for (scenario::ScenarioSpec& spec : specs) {
    spec.seed = seed;
    spec.rounds = rounds;
  }

  std::printf("== Scenario matrix: %zu scenarios x %zu policies "
              "(seed %llu, %zu rounds) ==\n\n",
              specs.size(), scenario::all_policies().size(),
              static_cast<unsigned long long>(seed), rounds);

  const auto t0 = std::chrono::steady_clock::now();
  const scenario::MatrixResult result = scenario::run_matrix(specs, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%-10s %-8s %12s %12s %9s %9s %9s %5s %5s\n", "scenario",
              "policy", "utility", "comp", "det_prec", "det_rec", "comm_rec",
              "quar", "excl");
  for (const scenario::ScenarioCell& cell : result.cells) {
    std::printf("%-10s %-8s %12.1f %12.1f %9.2f %9.2f %9.2f %5zu %5zu\n",
                cell.scenario.c_str(), scenario::to_string(cell.policy),
                cell.score.requester_utility, cell.score.total_compensation,
                cell.score.detector_precision, cell.score.detector_recall,
                cell.score.community_recall, cell.score.quarantined,
                cell.score.excluded);
  }
  std::printf("\nmatrix: %zu cells in %.2fs\n", result.cells.size(), elapsed);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scenarios: cannot open %s\n", out.c_str());
    return 1;
  }
  const std::string json = result.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  const std::vector<std::string> violations = result.violations(recall_floor);
  if (!violations.empty()) {
    for (const std::string& v : violations) {
      std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("all invariants hold (%zu cells, recall floor %.2f)\n",
              result.cells.size(), recall_floor);
  return 0;
}
