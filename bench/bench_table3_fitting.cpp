// Table III — norm of residuals (NoR) of polynomial effort-function fits of
// degree 1..6 for each worker class, on the full-scale synthetic trace.
//
// Paper-reported rows (their units):
//   honest: 13.8 13.7 13.7 13.7 13.7 13.7
//   NC-mal:  2.60 2.60 2.60 2.59 2.59 2.59
//   C-mal:  11.3 11.3 11.3 11.3 11.3 11.3
//
// The absolute NoR depends on the trace's feedback units; the reproduced
// *shape* is that all degrees fit almost equally well (relative spread of a
// few percent), which is why the paper settles on the quadratic. We print
// raw NoRs plus each row normalized by its degree-6 value.
//
// Usage: bench_table3_fitting [scale=full|medium|small]
#include <cstdio>

#include "data/generator.hpp"
#include "data/metrics.hpp"
#include "effort/fitting.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "full");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::amazon2015();
  if (scale == "medium") gen = data::GeneratorParams::medium();
  else if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Table III: NoR of degree-1..6 fits per worker class ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  const data::WorkerMetrics metrics(trace);

  util::TextTable raw({"class", "samples", "linear", "quad", "cubic", "4th",
                       "5th", "6th"});
  util::TextTable rel({"class", "linear/6th", "quad/6th", "cubic/6th",
                       "4th/6th", "5th/6th"});

  const std::pair<data::WorkerClass, const char*> classes[] = {
      {data::WorkerClass::kHonest, "Honest workers"},
      {data::WorkerClass::kNonCollusiveMalicious, "NC-Mal workers"},
      {data::WorkerClass::kCollusiveMalicious, "C-Mal workers"},
  };
  for (const auto& [cls, label] : classes) {
    const auto samples = metrics.samples_of_class(cls);
    const std::vector<double> nors = effort::nor_comparison(samples);
    std::vector<std::string> row = {label, std::to_string(samples.size())};
    for (const double nor : nors) {
      row.push_back(util::format_double(nor, 2));
    }
    raw.add_row(row);

    std::vector<std::string> rel_row = {label};
    for (std::size_t d = 0; d + 1 < nors.size(); ++d) {
      rel_row.push_back(util::format_double(nors[d] / nors.back(), 4));
    }
    rel.add_row(rel_row);
  }
  std::printf("raw NoR (our feedback units):\n%s\n", raw.render().c_str());
  std::printf("normalized by the degree-6 NoR (paper shape: all ~1.00):\n%s\n",
              rel.render().c_str());

  // The conclusion the paper draws from this table:
  const effort::ClassFits fits = effort::fit_all_classes(metrics);
  std::printf("chosen quadratic effort functions:\n");
  std::printf("  honest: %s%s\n", fits.honest.model.to_string(4).c_str(),
              fits.honest.projected ? "  [projected]" : "");
  std::printf("  ncm:    %s%s\n", fits.ncm.model.to_string(4).c_str(),
              fits.ncm.projected ? "  [projected]" : "");
  std::printf("  cm:     %s%s\n", fits.cm.model.to_string(4).c_str(),
              fits.cm.projected ? "  [projected]" : "");
  return 0;
}
