// Fig. 7 — comparison of the three worker classes: average effort level and
// average feedback per review.
//
// Paper shape: the three classes expend *similar* average effort, but
// collusive malicious workers collect much higher feedback (their
// communities upvote each other's reviews).
//
// Usage: bench_fig7_worker_classes [scale=full|medium|small]
#include <cstdio>

#include "data/generator.hpp"
#include "data/metrics.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "full");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::amazon2015();
  if (scale == "medium") gen = data::GeneratorParams::medium();
  else if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Fig. 7: per-class average effort and feedback ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  const data::WorkerMetrics metrics(trace);

  util::TextTable table({"class", "reviews", "mean effort", "sd effort",
                         "mean feedback", "sd feedback"});
  double honest_feedback = 0.0;
  double cm_feedback = 0.0;
  double honest_effort = 0.0;
  double cm_effort = 0.0;

  const std::pair<data::WorkerClass, const char*> classes[] = {
      {data::WorkerClass::kHonest, "honest"},
      {data::WorkerClass::kNonCollusiveMalicious, "ncm"},
      {data::WorkerClass::kCollusiveMalicious, "cm"},
  };
  for (const auto& [cls, label] : classes) {
    util::Accumulator effort;
    util::Accumulator feedback;
    for (const data::EffortSample& s : metrics.samples_of_class(cls)) {
      effort.add(s.effort);
      feedback.add(s.feedback);
    }
    table.add_row({label, std::to_string(effort.count()),
                   util::format_double(effort.mean(), 3),
                   util::format_double(effort.stddev(), 3),
                   util::format_double(feedback.mean(), 3),
                   util::format_double(feedback.stddev(), 3)});
    if (cls == data::WorkerClass::kHonest) {
      honest_feedback = feedback.mean();
      honest_effort = effort.mean();
    }
    if (cls == data::WorkerClass::kCollusiveMalicious) {
      cm_feedback = feedback.mean();
      cm_effort = effort.mean();
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape check: effort ratio cm/honest = %.2f (paper: ~1),"
              " feedback ratio cm/honest = %.2f (paper: >> 1)\n",
              cm_effort / honest_effort, cm_feedback / honest_feedback);
  return 0;
}
