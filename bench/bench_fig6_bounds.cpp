// Fig. 6 — requester utility of the designed contract vs the Theorem 4.1
// upper and lower bounds, for a single honest worker, as the number of
// effort intervals m grows. The paper's claim: the utility converges to the
// upper bound (and hence to the optimum) as the partition densifies.
//
// Usage: bench_fig6_bounds [mu=1.0] [beta=1.0] [w=1.0]
//        [r2=-1.0] [r1=8.0] [r0=2.0]
#include <cstdio>

#include "contract/baselines.hpp"
#include "contract/designer.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const double mu = params.get_double("mu", 1.0);
  const double beta = params.get_double("beta", 1.0);
  const double w = params.get_double("w", 1.0);
  const double r2 = params.get_double("r2", -1.0);
  const double r1 = params.get_double("r1", 8.0);
  const double r0 = params.get_double("r0", 2.0);
  params.assert_all_consumed();

  const effort::QuadraticEffort psi(r2, r1, r0);

  std::printf("== Fig. 6: requester utility vs Theorem 4.1 bounds ==\n");
  std::printf("single honest worker, %s, beta=%.2f mu=%.2f w=%.2f\n\n",
              psi.to_string(2).c_str(), beta, mu, w);

  contract::SubproblemSpec spec;
  spec.psi = psi;
  spec.incentives = {beta, 0.0};
  spec.weight = w;
  spec.mu = mu;

  const contract::OracleOutcome oracle = contract::oracle_optimal(spec);

  util::TextTable table({"m", "designed utility", "lower bound",
                         "upper bound", "gap to UB", "k_opt"});
  for (const std::size_t m :
       {2ul, 4ul, 6ul, 8ul, 10ul, 16ul, 24ul, 32ul, 48ul, 64ul, 96ul,
        128ul}) {
    spec.intervals = m;
    const contract::DesignResult d = contract::design_contract(spec);
    table.add_row({std::to_string(m),
                   util::format_double(d.requester_utility, 4),
                   util::format_double(d.lower_bound, 4),
                   util::format_double(d.upper_bound, 4),
                   util::format_double(d.upper_bound - d.requester_utility, 4),
                   std::to_string(d.k_opt)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("oracle (unrestricted contract shape): utility=%.4f at "
              "effort=%.4f, pay=%.4f\n\n",
              oracle.requester_utility, oracle.effort, oracle.compensation);
  std::printf("paper shape check: utility approaches the upper bound as m "
              "grows; the optimum lies inside the shrinking gap.\n");
  return 0;
}
