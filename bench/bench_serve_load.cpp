// Serve load — closed-loop load generator for the ccd::serve subsystem.
//
// Boots an in-process Engine + Server on a Unix socket, then drives
// `sessions` concurrent campaigns, one blocking client connection per
// session, each advancing its simulation round-by-round until the round
// budget is exhausted. The admission queue is deliberately smaller than
// the client population so the overload path (explicit kBackpressure,
// client-owned retry) is exercised under real contention, not mocked.
//
// Accounting is strict: every request a client sends must come back with
// exactly one response, and the server's own ccd.serve.* counters must
// reconcile with the client-observed totals — any "dropped but
// acknowledged" request is a hard failure (non-zero exit), not a warning.
//
// Reports throughput and client-observed p50/p95/p99 latency via
// util::metrics histograms and writes a machine-readable summary to
// `out=` (default BENCH_serve_load.json).
//
// Usage: bench_serve_load [sessions=64] [rounds=5] [workers=4]
//                         [malicious=1] [threads=4] [queue=16]
//                         [seed=1000] [out=BENCH_serve_load.json]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/config.hpp"
#include "util/metrics.hpp"

namespace {

struct ClientTally {
  std::uint64_t requests = 0;   // frames sent (including rejected retries)
  std::uint64_t responses = 0;  // frames received
  std::uint64_t rounds = 0;     // simulation rounds completed
  std::uint64_t backpressure = 0;
  double final_utility = 0.0;
};

double counter_value(const char* name) {
  namespace metrics = ccd::util::metrics;
  for (const metrics::MetricSnapshot& m : metrics::registry().snapshot()) {
    if (m.name == name) return static_cast<double>(m.counter);
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccd;
  namespace metrics = util::metrics;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::size_t sessions =
      static_cast<std::size_t>(params.get_int("sessions", 64));
  const std::uint64_t rounds =
      static_cast<std::uint64_t>(params.get_int("rounds", 5));
  const std::uint64_t workers =
      static_cast<std::uint64_t>(params.get_int("workers", 4));
  const std::uint64_t malicious =
      static_cast<std::uint64_t>(params.get_int("malicious", 1));
  const std::size_t threads =
      static_cast<std::size_t>(params.get_int("threads", 4));
  const std::size_t queue =
      static_cast<std::size_t>(params.get_int("queue", 16));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.get_int("seed", 1000));
  const std::string out = params.get_string("out", "BENCH_serve_load.json");
  params.assert_all_consumed();

  std::printf("== Serve load: %zu concurrent sessions x %llu rounds "
              "(%zu executor threads, queue capacity %zu) ==\n\n",
              sessions, static_cast<unsigned long long>(rounds), threads,
              queue);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ccd_serve_load_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string socket_path = (dir / "ccdd.sock").string();

  serve::EngineConfig engine_config;
  engine_config.worker_threads = threads;
  engine_config.queue_capacity = queue;
  engine_config.max_sessions = sessions;
  serve::Engine engine(engine_config);
  serve::ServerConfig server_config;
  server_config.unix_socket = socket_path;
  serve::Server server(server_config, engine);

  metrics::Histogram& latency =
      metrics::registry().histogram("ccd.bench.serve.request_us");

  std::vector<ClientTally> tallies(sessions);
  std::atomic<bool> failed{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> drivers;
  drivers.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    drivers.emplace_back([&, s] {
      try {
        serve::Client client = serve::Client::connect_unix(socket_path);
        ClientTally& tally = tallies[s];
        const std::string id = "load-" + std::to_string(s);
        std::uint64_t request_id = 1;

        // One raw round trip, retried until the admission queue takes it.
        // Every attempt is tallied: rejected frames are still request/
        // response pairs the ledger must account for.
        const auto call_admitted =
            [&](serve::Request request) -> serve::Response {
          while (true) {
            request.request_id = request_id++;
            const auto sent = std::chrono::steady_clock::now();
            ++tally.requests;
            serve::Response response = client.call(request);
            ++tally.responses;
            latency.record(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - sent)
                               .count());
            if (response.status == serve::Status::kBackpressure) {
              // Explicit overload: nothing happened server-side. Back off
              // briefly and retry — the closed loop self-paces.
              ++tally.backpressure;
              ::usleep(200);
              continue;
            }
            if (serve::is_error(response.status)) {
              serve::throw_status(response.status, response.message);
            }
            return response;
          }
        };

        serve::Request open;
        open.op = serve::Op::kOpen;
        open.session = id;
        open.open.rounds = rounds;
        open.open.workers = workers;
        open.open.malicious = malicious;
        open.open.seed = seed + s;
        call_admitted(open);

        serve::Request advance;
        advance.op = serve::Op::kAdvance;
        advance.session = id;
        advance.advance_rounds = 1;
        serve::SessionStatus status;
        do {
          status = call_admitted(advance).session;
          ++tally.rounds;
        } while (!status.finished);
        tally.final_utility = status.cumulative_requester_utility;

        serve::Request close;
        close.op = serve::Op::kClose;
        close.session = id;
        call_admitted(close);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "session %zu failed: %s\n", s, e.what());
        failed.store(true);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  server.stop();
  engine.stop();
  std::filesystem::remove_all(dir);

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.requests += t.requests;
    total.responses += t.responses;
    total.rounds += t.rounds;
    total.backpressure += t.backpressure;
  }
  // `rounds` advances per session actually advance; retries rejected with
  // backpressure completed no round, so the round ledger must balance.
  const std::uint64_t expected_rounds = sessions * rounds;

  const metrics::HistogramSnapshot lat = latency.snapshot();
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(total.responses) / wall_s : 0.0;

  std::printf("requests sent        : %llu\n",
              static_cast<unsigned long long>(total.requests));
  std::printf("responses received   : %llu\n",
              static_cast<unsigned long long>(total.responses));
  std::printf("rounds completed     : %llu (expected %llu)\n",
              static_cast<unsigned long long>(total.rounds),
              static_cast<unsigned long long>(expected_rounds));
  std::printf("backpressure rejects : %llu\n",
              static_cast<unsigned long long>(total.backpressure));
  std::printf("wall time            : %.3f s\n", wall_s);
  std::printf("throughput           : %.1f responses/s\n", throughput);
  std::printf("advance latency      : p50 %.0f us, p95 %.0f us, p99 %.0f us "
              "(max %.0f us, n=%llu)\n",
              lat.p50(), lat.p95(), lat.p99(), lat.max,
              static_cast<unsigned long long>(lat.count));

  // Strict accounting. Client side: one response per request. Server side:
  // the engine's own ledger must agree with what the clients observed.
  bool ok = !failed.load();
  if (total.responses != total.requests) {
    std::fprintf(stderr,
                 "FAIL: %llu requests sent but %llu responses received\n",
                 static_cast<unsigned long long>(total.requests),
                 static_cast<unsigned long long>(total.responses));
    ok = false;
  }
  if (total.rounds != expected_rounds) {
    std::fprintf(stderr, "FAIL: completed %llu rounds, expected %llu\n",
                 static_cast<unsigned long long>(total.rounds),
                 static_cast<unsigned long long>(expected_rounds));
    ok = false;
  }
#ifndef CCD_NO_METRICS
  const double submitted = counter_value("ccd.serve.submitted");
  const double answered = counter_value("ccd.serve.responses");
  if (submitted != static_cast<double>(total.requests) ||
      answered != static_cast<double>(total.requests)) {
    std::fprintf(stderr,
                 "FAIL: server ledger (submitted=%.0f responses=%.0f) does "
                 "not reconcile with client-observed %llu\n",
                 submitted, answered,
                 static_cast<unsigned long long>(total.requests));
    ok = false;
  }
  const double served_bp = counter_value("ccd.serve.backpressure");
  if (served_bp != static_cast<double>(total.backpressure)) {
    std::fprintf(stderr,
                 "FAIL: server counted %.0f backpressure rejects, clients "
                 "observed %llu\n",
                 served_bp,
                 static_cast<unsigned long long>(total.backpressure));
    ok = false;
  }
#endif

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serve_load\",\n"
                 "  \"sessions\": %zu,\n"
                 "  \"rounds_per_session\": %llu,\n"
                 "  \"executor_threads\": %zu,\n"
                 "  \"queue_capacity\": %zu,\n"
                 "  \"requests\": %llu,\n"
                 "  \"responses\": %llu,\n"
                 "  \"rounds_completed\": %llu,\n"
                 "  \"backpressure_rejects\": %llu,\n"
                 "  \"wall_seconds\": %.6f,\n"
                 "  \"throughput_rps\": %.3f,\n"
                 "  \"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, "
                 "\"p99\": %.1f, \"max\": %.1f, \"count\": %llu},\n"
                 "  \"ok\": %s\n"
                 "}\n",
                 sessions, static_cast<unsigned long long>(rounds), threads,
                 queue, static_cast<unsigned long long>(total.requests),
                 static_cast<unsigned long long>(total.responses),
                 static_cast<unsigned long long>(total.rounds),
                 static_cast<unsigned long long>(total.backpressure), wall_s,
                 throughput, lat.p50(), lat.p95(), lat.p99(), lat.max,
                 static_cast<unsigned long long>(lat.count),
                 ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out.c_str());
    ok = false;
  }

  std::printf(ok ? "serve load: OK — zero dropped-but-acknowledged "
                   "requests\n"
                 : "serve load: FAILED\n");
  return ok ? 0 : 1;
}
