// Regret harness for the ccd::policy contract-designer backends.
//
// Each backend — the paper's BiP (known worker model), the zooming bandit
// (Ho–Slivkins–Vaughan style adaptive discretization), and the posted-price
// learner (Liu–Chen style sequential price elicitation) — drives the same
// mixed fleet for `rounds` rounds against exact worker best responses. The
// per-round reference is the memoized fine-grid oracle
// (contract::OracleCache): the best utility any incentive-compatible
// payment rule could extract from each worker. Cumulative regret is the
// summed per-round gap to that oracle.
//
// Two invariants are asserted (exit 1 on violation):
//  * Sublinear learner regret — each learner's average per-round regret
//    over the last quarter of the horizon must fall below
//    `sublinear_factor` x its first-quarter average (a linear-regret
//    learner holds the ratio at 1).
//  * BiP dominance with a known model — BiP's cumulative regret must not
//    exceed either learner's: learning the model from scratch can never
//    beat solving it exactly.
//
// Like bench_throughput, this binary refuses to publish numbers from
// non-Release builds (exit 3); `force=1` overrides for local poking and
// the JSON still records the real build type.
//
// Exit codes: 0 gates passed, 1 gate failed, 2 bad usage, 3 non-release.
//
// Usage: bench_policy_regret [rounds=2400] [workers=12]
//                            [sublinear_factor=0.8]
//                            [out=BENCH_policy_regret.json] [force=0]
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "contract/baselines.hpp"
#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "contract/worker_response.hpp"
#include "policy/policy.hpp"
#include "util/rng.hpp"

#ifndef CCD_BUILD_TYPE
#define CCD_BUILD_TYPE "unknown"
#endif

namespace {

using namespace ccd;

/// The mixed fleet every backend faces: honest, NCM, and community-fit
/// effort curves cycled over `n` workers, all with unit weight (the regret
/// question is about the contract space, not the weighting scheme).
std::vector<contract::SubproblemSpec> fleet_specs(std::size_t n) {
  const struct {
    double r2, r1, r0, beta, omega;
  } classes[] = {
      {-1.0, 8.0, 2.0, 1.0, 0.0},   // honest
      {-0.8, 6.0, 1.5, 1.1, 0.3},   // non-collusive malicious
      {-1.2, 9.0, 2.5, 0.9, 0.5},   // collusive community fit
      {-0.9, 7.0, 1.0, 1.2, 0.2},   // a second community fit
  };
  std::vector<contract::SubproblemSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cls = classes[i % (sizeof(classes) / sizeof(classes[0]))];
    contract::SubproblemSpec spec;
    spec.psi = effort::QuadraticEffort(cls.r2, cls.r1, cls.r0);
    spec.incentives = {cls.beta, cls.omega};
    spec.weight = 1.0;
    spec.mu = 1.0;
    spec.intervals = 20;
    specs.push_back(spec);
  }
  return specs;
}

struct BackendRun {
  std::string name;
  double cumulative_regret = 0.0;
  double early_avg_regret = 0.0;  ///< mean per-round regret, first quarter
  double late_avg_regret = 0.0;   ///< mean per-round regret, last quarter
  /// Cumulative regret sampled every rounds/24 rounds (for the figure).
  std::vector<double> samples;
};

BackendRun run_backend(policy::Kind kind,
                       const std::vector<contract::SubproblemSpec>& specs,
                       std::size_t rounds, double oracle_per_round,
                       contract::DesignCache& cache) {
  const std::size_t n = specs.size();
  std::vector<policy::WorkerView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    views[i].psi = specs[i].psi;
    views[i].beta = specs[i].incentives.beta;
    views[i].omega = specs[i].incentives.omega;
    views[i].weight = specs[i].weight;
    views[i].mu = specs[i].mu;
    views[i].intervals = specs[i].intervals;
  }

  policy::PolicyConfig config;
  config.kind = kind;
  const std::unique_ptr<policy::Policy> backend = policy::make_policy(config);
  util::Rng rng(2024);

  BackendRun run;
  run.name = policy::to_string(kind);
  const std::size_t window = rounds / 4;
  const std::size_t sample_every =
      rounds >= 24 ? rounds / 24 : std::size_t{1};
  std::vector<contract::Contract> contracts(n);
  std::vector<policy::RoundOutcome> outcomes(n);
  for (std::size_t t = 0; t < rounds; ++t) {
    policy::PostEnv env;
    env.cache = &cache;
    backend->post(t, true, views, contracts, rng, env);
    double round_utility = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const contract::BestResponse response = contract::best_response(
          contracts[i], views[i].psi,
          {views[i].beta, views[i].omega});
      outcomes[i].active = true;
      outcomes[i].feedback = response.feedback;
      outcomes[i].reward = views[i].weight * response.feedback -
                           views[i].mu * response.compensation;
      round_utility += outcomes[i].reward;
    }
    backend->observe(t, outcomes, rng);
    const double regret = oracle_per_round - round_utility;
    run.cumulative_regret += regret;
    if (t < window) run.early_avg_regret += regret;
    if (t >= rounds - window) run.late_avg_regret += regret;
    if ((t + 1) % sample_every == 0 || t + 1 == rounds) {
      run.samples.push_back(run.cumulative_regret);
    }
  }
  run.early_avg_regret /= static_cast<double>(window);
  run.late_avg_regret /= static_cast<double>(window);
  return run;
}

void write_json(const std::string& path, std::size_t rounds,
                std::size_t workers, double oracle_per_round,
                double sublinear_factor,
                const std::vector<BackendRun>& runs) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_policy_regret: cannot write %s\n",
                 path.c_str());
    return;
  }
  char buf[64];
  out << "{\n  \"bench\": \"policy_regret\",\n";
  out << "  \"library_build_type\": \"" << CCD_BUILD_TYPE << "\",\n";
  out << "  \"rounds\": " << rounds << ",\n";
  out << "  \"workers\": " << workers << ",\n";
  std::snprintf(buf, sizeof(buf), "%.6f", oracle_per_round);
  out << "  \"oracle_per_round_utility\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", sublinear_factor);
  out << "  \"sublinear_factor\": " << buf << ",\n";
  out << "  \"backends\": [\n";
  for (std::size_t b = 0; b < runs.size(); ++b) {
    const BackendRun& run = runs[b];
    out << "    {\n      \"policy\": \"" << run.name << "\",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", run.cumulative_regret);
    out << "      \"cumulative_regret\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", run.early_avg_regret);
    out << "      \"early_avg_regret\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", run.late_avg_regret);
    out << "      \"late_avg_regret\": " << buf << ",\n";
    out << "      \"cumulative_regret_samples\": [";
    for (std::size_t s = 0; s < run.samples.size(); ++s) {
      std::snprintf(buf, sizeof(buf), "%.4f", run.samples[s]);
      out << (s > 0 ? ", " : "") << buf;
    }
    out << "]\n    }" << (b + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 2400;
  std::size_t workers = 12;
  double sublinear_factor = 0.8;
  std::string out = "BENCH_policy_regret.json";
  bool force = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bench_policy_regret: bad argument '%s'\n",
                   arg.c_str());
      return 2;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "rounds") rounds = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "workers") {
      workers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "sublinear_factor") {
      sublinear_factor = std::strtod(value.c_str(), nullptr);
    } else if (key == "out") out = value;
    else if (key == "force") force = value != "0";
    else {
      std::fprintf(stderr, "bench_policy_regret: unknown key '%s'\n",
                   key.c_str());
      return 2;
    }
  }
  if (rounds < 8 || workers < 1) {
    std::fprintf(stderr,
                 "bench_policy_regret: need rounds >= 8 and workers >= 1\n");
    return 2;
  }
  const std::string build_type = CCD_BUILD_TYPE;
  if (build_type != "release" && !force) {
    std::fprintf(stderr,
                 "bench_policy_regret: refusing to publish numbers from a "
                 "'%s' build (rebuild with -DCMAKE_BUILD_TYPE=Release, or "
                 "pass force=1 to override)\n",
                 build_type.c_str());
    return 3;
  }

  const std::vector<contract::SubproblemSpec> specs = fleet_specs(workers);

  // The per-round reference: the memoized fine-grid oracle. One grid sweep
  // per distinct worker class, however long the horizon.
  contract::OracleCache oracle;
  double oracle_per_round = 0.0;
  for (const contract::SubproblemSpec& spec : specs) {
    oracle_per_round += oracle.optimal(spec).requester_utility;
  }
  std::printf("fleet: %zu worker(s), oracle %.3f utility/round "
              "(%zu distinct oracle subproblem(s))\n",
              workers, oracle_per_round, oracle.size());

  contract::DesignCache cache;
  std::vector<BackendRun> runs;
  for (const policy::Kind kind :
       {policy::Kind::kBip, policy::Kind::kZoomingBandit,
        policy::Kind::kPostedPrice}) {
    runs.push_back(run_backend(kind, specs, rounds, oracle_per_round, cache));
    const BackendRun& run = runs.back();
    std::printf("%-8s cumulative regret %12.3f | per-round avg: first "
                "quarter %8.4f -> last quarter %8.4f\n",
                run.name.c_str(), run.cumulative_regret, run.early_avg_regret,
                run.late_avg_regret);
  }

  write_json(out, rounds, workers, oracle_per_round, sublinear_factor, runs);

  bool ok = true;
  const BackendRun& bip = runs[0];
  for (std::size_t b = 1; b < runs.size(); ++b) {
    const BackendRun& learner = runs[b];
    if (!(learner.late_avg_regret <=
          sublinear_factor * learner.early_avg_regret)) {
      std::fprintf(stderr,
                   "GATE FAILED: %s regret is not sublinear (last-quarter "
                   "avg %.4f > %.2f x first-quarter avg %.4f)\n",
                   learner.name.c_str(), learner.late_avg_regret,
                   sublinear_factor, learner.early_avg_regret);
      ok = false;
    }
    if (!(bip.cumulative_regret <= learner.cumulative_regret + 1e-9)) {
      std::fprintf(stderr,
                   "GATE FAILED: bip cumulative regret %.3f exceeds %s's "
                   "%.3f — the known-model baseline must dominate\n",
                   bip.cumulative_regret, learner.name.c_str(),
                   learner.cumulative_regret);
      ok = false;
    }
  }
  if (ok) {
    std::printf("gates passed: learner regret sublinear (factor %.2f), bip "
                "dominates both learners\n",
                sublinear_factor);
  }
  return ok ? 0 : 1;
}
