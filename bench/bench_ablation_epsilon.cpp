// Ablation — the Eq. 40 epsilon on coarse grids: the paper's raw value vs
// our window-capped value (DESIGN.md "Paper typos we correct" /
// EXPERIMENTS.md "Known deviations").
//
// Eq. 40's epsilon scales like delta^2 / psi'(m delta). On fine grids it is
// tiny and the two variants coincide; on coarse grids the raw value fills
// the whole Case-III window, pushing slopes to the expensive Case-II edge —
// the worker gets overpaid, Lemma 4.2's compensation cap breaks, and the
// requester's utility drops (below even the Theorem 4.1 *lower* bound's
// assumptions). The cap (5% of the remaining window) preserves the strict
// preference of Eq. 36 and restores the lemma at every m.
#include <cstdio>

#include "contract/bounds.hpp"
#include "contract/candidate.hpp"
#include "contract/worker_response.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  params.assert_all_consumed();

  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  const contract::WorkerIncentives honest{1.0, 0.0};
  const double w = 1.0;

  std::printf("== Ablation: raw Eq. 40 epsilon vs window-capped (k = m) ==\n");
  std::printf("single honest worker, %s, beta=1, mu=1\n\n",
              psi.to_string(2).c_str());

  util::TextTable table({"m", "pay (raw eq40)", "pay (capped)",
                         "Lemma 4.2 cap", "raw breaks cap?",
                         "utility (raw)", "utility (capped)"});
  for (const std::size_t m : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
    const double delta = psi.usable_domain() / static_cast<double>(m);
    const contract::Contract raw =
        contract::build_candidate(psi, delta, m, m, honest, nullptr, false);
    const contract::Contract capped =
        contract::build_candidate(psi, delta, m, m, honest, nullptr, true);
    const contract::BestResponse raw_br =
        contract::best_response(raw, psi, honest);
    const contract::BestResponse capped_br =
        contract::best_response(capped, psi, honest);
    const double cap =
        contract::lemma42_compensation_upper(psi, 1.0, delta, m);
    table.add_row(
        {std::to_string(m), util::format_double(raw_br.compensation, 4),
         util::format_double(capped_br.compensation, 4),
         util::format_double(cap, 4),
         raw_br.compensation > cap + 1e-9 ? "YES" : "no",
         util::format_double(w * raw_br.feedback - raw_br.compensation, 4),
         util::format_double(w * capped_br.feedback - capped_br.compensation,
                             4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: the raw Eq. 40 epsilon violates Lemma 4.2's pay "
              "cap on coarse grids (small m) and tanks the requester's "
              "utility there; the capped variant obeys the cap at every m, "
              "and the two coincide as m grows (epsilon -> 0).\n");
  return 0;
}
