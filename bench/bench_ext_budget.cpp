// Extension — budget-feasible contract allocation (the Singer line of work
// the paper cites in §VI, ported to the dynamic-contract model): sweep the
// payment budget and report the achievable requester utility, the shadow
// price of money, and who gets dropped first.
//
// Usage: bench_ext_budget [scale=medium|small]
#include <cstdio>

#include "contract/budget.hpp"
#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "medium");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::medium();
  if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Extension: budget-feasible allocation ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  const core::PipelineResult pipeline =
      core::run_pipeline(trace, core::PipelineConfig{});
  std::printf("unconstrained fleet: utility %.1f at spend %.1f\n\n",
              pipeline.total_requester_utility, pipeline.total_compensation);

  // Menus from the per-subproblem designs; track which workers are honest
  // to see who gets dropped as the budget tightens.
  std::vector<contract::BudgetMenu> menus;
  std::vector<bool> honest_menu;
  for (const core::SubproblemOutcome& sub : pipeline.subproblems) {
    menus.push_back(contract::menu_from_design(sub.design));
    honest_menu.push_back(
        sub.workers.size() == 1 &&
        trace.worker(sub.workers.front()).true_class ==
            data::WorkerClass::kHonest);
  }

  util::TextTable table({"budget (% of full)", "spend", "utility",
                         "% of full utility", "lambda", "honest kept %",
                         "others kept %"});
  const double full_spend = pipeline.total_compensation;
  for (const double fraction : {1.0, 0.75, 0.5, 0.25, 0.1, 0.05, 0.01}) {
    const double budget = fraction * full_spend;
    const contract::BudgetAllocation a =
        contract::allocate_budget(menus, budget);
    std::size_t honest_kept = 0, honest_total = 0;
    std::size_t other_kept = 0, other_total = 0;
    for (std::size_t i = 0; i < menus.size(); ++i) {
      if (menus[i].pay.empty()) continue;
      if (honest_menu[i]) {
        ++honest_total;
        if (a.choices[i].k != 0) ++honest_kept;
      } else {
        ++other_total;
        if (a.choices[i].k != 0) ++other_kept;
      }
    }
    table.add_row(
        {util::format_double(100.0 * fraction, 0),
         util::format_double(a.total_pay, 1),
         util::format_double(a.total_utility, 1),
         util::format_double(
             100.0 * a.total_utility / pipeline.total_requester_utility, 2),
         util::format_double(a.lambda, 3),
         util::format_double(
             honest_total == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(honest_kept) /
                       static_cast<double>(honest_total),
             1),
         util::format_double(
             other_total == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(other_kept) /
                       static_cast<double>(other_total),
             1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: utility degrades gracefully (concave in budget). "
              "The allocator prefers downgrading contracts (lower target "
              "intervals k) across the whole fleet over dropping workers — "
              "cheap low-k contracts still buy positive utility, so kept%% "
              "stays high even at 1%% budget while the shadow price lambda "
              "climbs.\n");
  return 0;
}
