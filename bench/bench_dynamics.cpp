// Dynamics — the multi-round Stackelberg game: contract adaptation to a
// heterogeneous fleet including a worker that turns malicious mid-run.
//
// Shows the "adaptive to changes in workers' behavior" property: after the
// switch the requester's maliciousness estimate climbs, the weight drops,
// and the turncoat's compensation is cut.
//
// Usage: bench_dynamics [rounds=60] [seed=3]
#include <cstdio>

#include "core/stackelberg.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::size_t rounds =
      static_cast<std::size_t>(params.get_int("rounds", 60));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.get_int("seed", 3));
  params.assert_all_consumed();

  std::printf("== Dynamics: multi-round Stackelberg with a turncoat ==\n\n");

  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  core::SimWorkerSpec honest;
  honest.name = "honest";
  honest.psi = psi;
  honest.accuracy_distance = 0.3;

  core::SimWorkerSpec malicious;
  malicious.name = "malicious";
  malicious.psi = psi;
  malicious.omega = 0.6;
  malicious.accuracy_distance = 1.7;

  core::SimWorkerSpec turncoat;
  turncoat.name = "turncoat";
  turncoat.psi = psi;
  turncoat.accuracy_distance = 0.3;
  turncoat.switch_round = rounds / 2;
  turncoat.switched_omega = 0.6;
  turncoat.switched_accuracy_distance = 2.0;

  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;
  config.feedback_noise = 0.3;
  config.accuracy_noise = 0.1;

  core::StackelbergSimulator sim({honest, malicious, turncoat}, config);
  const core::SimResult result = sim.run();

  util::TextTable table({"round", "req utility", "honest pay",
                         "malicious pay", "turncoat pay", "turncoat e_mal",
                         "turncoat weight"});
  for (std::size_t t = 0; t < rounds; t += rounds / 15 == 0 ? 1 : rounds / 15) {
    table.add_row(
        {std::to_string(t),
         util::format_double(result.rounds[t].requester_utility, 3),
         util::format_double(result.worker_history[0][t].compensation, 3),
         util::format_double(result.worker_history[1][t].compensation, 3),
         util::format_double(result.worker_history[2][t].compensation, 3),
         util::format_double(result.worker_history[2][t].estimated_malicious, 3),
         util::format_double(result.worker_history[2][t].weight, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cumulative requester utility over %zu rounds: %.3f\n",
              rounds, result.cumulative_requester_utility);
  std::printf("shape check: the turncoat's e_mal estimate jumps after round "
              "%zu and its pay is cut, while the honest worker's pay is "
              "stable.\n",
              rounds / 2);
  return 0;
}
