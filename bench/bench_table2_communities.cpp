// Table II — distribution of collusive-community sizes on the full-scale
// synthetic Amazon trace, via the paper's same-target clustering rule.
//
// Paper-reported row (47 communities, 212 collusive workers):
//   size:        2     3    4    5    6   >=10
//   percent:  51.2  22.0  7.3  2.4  9.8   4.9
//
// Usage: bench_table2_communities [scale=full|medium|small]
#include <cstdio>

#include "data/generator.hpp"
#include "detect/collusion.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "full");
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::amazon2015();
  if (scale == "medium") gen = data::GeneratorParams::medium();
  else if (scale == "small") gen = data::GeneratorParams::small();

  std::printf("== Table II: collusive community size distribution ==\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  std::printf("trace: %s\n\n", trace.stats().to_string().c_str());

  const detect::CollusionResult result =
      detect::cluster_ground_truth_malicious(trace);
  const detect::CommunityCensus c = detect::census(result);

  util::TextTable table(
      {"source", "communities", "workers", "2", "3", "4", "5", "6", ">=10"});
  if (scale == "full") {
    table.add_row({"paper (Table II)", "47", "212", "51.2", "22.0", "7.3",
                   "2.4", "9.8", "4.9"});
  }
  table.add_row({"measured", std::to_string(c.communities),
                 std::to_string(c.workers),
                 util::format_double(c.pct_size2, 1),
                 util::format_double(c.pct_size3, 1),
                 util::format_double(c.pct_size4, 1),
                 util::format_double(c.pct_size5, 1),
                 util::format_double(c.pct_size6, 1),
                 util::format_double(c.pct_size10plus, 1)});
  std::printf("%s", table.render().c_str());
  std::printf("(sizes 7-9, unreported by the paper: %.1f%%)\n\n",
              c.pct_size7to9);

  // Cross-check: the DFS auxiliary-graph backend must agree.
  const detect::CollusionResult dfs = detect::cluster_ground_truth_malicious(
      trace, detect::ClusterBackend::kDfsGraph);
  std::printf("DFS backend cross-check: %zu communities, %zu workers (%s)\n",
              dfs.communities.size(), detect::census(dfs).workers,
              dfs.communities.size() == result.communities.size()
                  ? "agrees"
                  : "MISMATCH");
  return 0;
}
