// Extension — masking adversaries (§VII's "more sophisticated malicious
// workers"): workers that alternate honest and malicious phases to defeat
// the requester's estimator. Sweeps the masking duty cycle and the
// estimator's EMA rate.
#include <cstdio>

#include "core/stackelberg.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

ccd::core::SimWorkerSpec masker(double duty) {
  ccd::core::SimWorkerSpec w;
  w.name = "masker";
  w.psi = ccd::effort::QuadraticEffort(-1.0, 8.0, 2.0);
  w.accuracy_distance = 0.3;
  w.switched_omega = 0.6;
  w.switched_accuracy_distance = 2.0;
  w.masking_period = 6;
  w.masking_duty = duty;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const auto rounds = static_cast<std::size_t>(params.get_int("rounds", 90));
  params.assert_all_consumed();

  std::printf("== Extension: masking adversaries vs the adaptive contract ==\n\n");

  util::TextTable table({"mask duty", "ema alpha", "mean e_mal estimate",
                         "masker pay/round", "requester utility/round"});
  for (const double duty : {0.0, 0.34, 0.5, 0.67, 0.84}) {
    for (const double alpha : {0.6, 0.3, 0.1}) {
      core::SimConfig config;
      config.rounds = rounds;
      config.seed = 77;
      config.ema_alpha = alpha;
      config.feedback_noise = 0.2;
      config.accuracy_noise = 0.05;
      const core::SimResult r =
          core::StackelbergSimulator({masker(duty)}, config).run();
      double est = 0.0;
      double pay = 0.0;
      double utility = 0.0;
      const std::size_t tail_start = rounds / 3;
      for (std::size_t t = tail_start; t < rounds; ++t) {
        est += r.worker_history[0][t].estimated_malicious;
        pay += r.worker_history[0][t].compensation;
        utility += r.rounds[t].requester_utility;
      }
      const double n = static_cast<double>(rounds - tail_start);
      table.add_row({util::format_double(duty, 2),
                     util::format_double(alpha, 2),
                     util::format_double(est / n, 3),
                     util::format_double(pay / n, 3),
                     util::format_double(utility / n, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape checks: higher mask duty lowers the adversary's "
              "estimated maliciousness and raises its pay — masking works. "
              "At moderate duty (0.5) a slower EMA (alpha=0.1) integrates "
              "across mask cycles and claws most of the pay back; at very "
              "high duty the worker genuinely behaves honestly most rounds, "
              "so paying it is the right call and requester utility stays "
              "high.\n");
  return 0;
}
