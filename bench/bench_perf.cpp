// Performance microbenchmarks (google-benchmark): subproblem solve cost vs
// partition density, pipeline throughput vs thread count (the paper's
// motivation for decomposing the bilevel program), and clustering cost.
#include <benchmark/benchmark.h>

#include "contract/designer.hpp"
#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "detect/collusion.hpp"

namespace {

const ccd::data::ReviewTrace& medium_trace() {
  static const ccd::data::ReviewTrace trace =
      ccd::data::generate_trace(ccd::data::GeneratorParams::medium());
  return trace;
}

void BM_DesignContract(benchmark::State& state) {
  ccd::contract::SubproblemSpec spec;
  spec.psi = ccd::effort::QuadraticEffort(-1.0, 8.0, 2.0);
  spec.incentives = {1.0, 0.3};
  spec.weight = 1.0;
  spec.mu = 1.0;
  spec.intervals = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::contract::design_contract(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DesignContract)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_BestResponse(benchmark::State& state) {
  const ccd::effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  const ccd::contract::WorkerIncentives inc{1.0, 0.2};
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const double delta = psi.usable_domain() / static_cast<double>(m);
  const ccd::contract::Contract c =
      ccd::contract::build_candidate(psi, delta, m, m / 2 + 1, inc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::contract::best_response(c, psi, inc));
  }
}
BENCHMARK(BM_BestResponse)->RangeMultiplier(4)->Range(4, 256);

void BM_PipelineThreads(benchmark::State& state) {
  const auto& trace = medium_trace();
  ccd::core::PipelineConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::core::run_pipeline(trace, config));
  }
}
BENCHMARK(BM_PipelineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CollusionClustering(benchmark::State& state) {
  const auto& trace = medium_trace();
  const auto backend = state.range(0) == 0
                           ? ccd::detect::ClusterBackend::kUnionFind
                           : ccd::detect::ClusterBackend::kDfsGraph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ccd::detect::cluster_ground_truth_malicious(trace, backend));
  }
  state.SetLabel(state.range(0) == 0 ? "union-find" : "dfs-graph");
}
BENCHMARK(BM_CollusionClustering)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  auto params = ccd::data::GeneratorParams::small();
  for (auto _ : state) {
    params.seed += 1;  // avoid trivially repeated streams
    benchmark::DoNotOptimize(ccd::data::generate_trace(params));
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
