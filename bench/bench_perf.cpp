// Performance microbenchmarks (google-benchmark): subproblem solve cost vs
// partition density, pipeline throughput vs thread count (the paper's
// motivation for decomposing the bilevel program), clustering cost, and the
// overhead of the util::metrics instrumentation (armed vs disarmed).
//
// Unless the caller passes its own --benchmark_out, results are written as
// machine-readable JSON to BENCH_perf.json in the working directory (CI
// uploads it as an artifact).
//
// Like bench_throughput, the binary refuses to publish numbers from
// non-Release builds (exit 3): microbenchmark deltas from -O0/-Og builds
// are noise that reads like regressions. Pass `force=1` to override; the
// benchmark context still records the real build type.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifndef CCD_BUILD_TYPE
#define CCD_BUILD_TYPE "unknown"
#endif

#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "detect/collusion.hpp"
#include "util/cancellation.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace {

const ccd::data::ReviewTrace& medium_trace() {
  static const ccd::data::ReviewTrace trace =
      ccd::data::generate_trace(ccd::data::GeneratorParams::medium());
  return trace;
}

void BM_DesignContract(benchmark::State& state) {
  ccd::contract::SubproblemSpec spec;
  spec.psi = ccd::effort::QuadraticEffort(-1.0, 8.0, 2.0);
  spec.incentives = {1.0, 0.3};
  spec.weight = 1.0;
  spec.mu = 1.0;
  spec.intervals = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::contract::design_contract(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DesignContract)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_BestResponse(benchmark::State& state) {
  const ccd::effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  const ccd::contract::WorkerIncentives inc{1.0, 0.2};
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const double delta = psi.usable_domain() / static_cast<double>(m);
  const ccd::contract::Contract c =
      ccd::contract::build_candidate(psi, delta, m, m / 2 + 1, inc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::contract::best_response(c, psi, inc));
  }
}
BENCHMARK(BM_BestResponse)->RangeMultiplier(4)->Range(4, 256);

// A fleet with the pipeline's solve-stage shape: every worker of a
// detected class shares one weight-independent spec, only the Eq. 5
// weight varies.
std::vector<ccd::contract::SubproblemSpec> fleet_specs(std::size_t n) {
  const struct {
    double r2, r1, r0, omega;
  } classes[] = {
      {-1.0, 8.0, 2.0, 0.0},  // honest
      {-0.8, 6.0, 1.5, 0.3},  // non-collusive malicious
      {-1.2, 9.0, 2.5, 0.5},  // collusive community fit
      {-0.9, 7.0, 1.0, 0.2},  // a second community fit
  };
  std::vector<ccd::contract::SubproblemSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cls = classes[i % (sizeof(classes) / sizeof(classes[0]))];
    ccd::contract::SubproblemSpec spec;
    spec.psi = ccd::effort::QuadraticEffort(cls.r2, cls.r1, cls.r0);
    spec.incentives = {1.0, cls.omega};
    spec.weight = 0.2 + 0.8 * static_cast<double>(i) / static_cast<double>(n);
    spec.mu = 1.0;
    spec.intervals = 20;
    specs.push_back(spec);
  }
  return specs;
}

// Solve-stage throughput, batched + cached: one k-sweep per distinct spec,
// cheap per-worker resolve. Args are {workers, threads}.
void BM_SolveStageBatched(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  const std::vector<ccd::contract::SubproblemSpec> specs = fleet_specs(n);
  ccd::util::ThreadPool pool(threads);
  ccd::contract::BatchOptions options;
  options.pool = &pool;
  ccd::contract::DesignCacheStats stats;
  for (auto _ : state) {
    std::vector<ccd::contract::DesignResult> results =
        ccd::contract::design_contracts_batch(specs, options, &stats);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  // Last iteration's counters: sweeps the uncached path would have run vs
  // what the cache actually computed.
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["ksweeps"] = static_cast<double>(stats.misses);
  state.counters["ksweeps_uncached"] = static_cast<double>(stats.lookups);
}
BENCHMARK(BM_SolveStageBatched)
    ->Args({1000, 1})->Args({1000, 8})
    ->Args({10000, 1})->Args({10000, 8})
    ->Args({100000, 1})->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

// Uncached per-worker baseline (the pre-batch pipeline behaviour): a full
// k-sweep for every worker. 1e5 omitted — it is exactly the cost this
// engine removes.
void BM_SolveStagePerWorker(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  const std::vector<ccd::contract::SubproblemSpec> specs = fleet_specs(n);
  ccd::util::ThreadPool pool(threads);
  for (auto _ : state) {
    std::vector<ccd::contract::DesignResult> results(n);
    pool.parallel_for(n, [&](std::size_t i) {
      results[i] = ccd::contract::design_contract(specs[i]);
    });
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SolveStagePerWorker)
    ->Args({1000, 1})->Args({1000, 8})
    ->Args({10000, 1})->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_PipelineThreads(benchmark::State& state) {
  const auto& trace = medium_trace();
  ccd::core::PipelineConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::core::run_pipeline(trace, config));
  }
}
BENCHMARK(BM_PipelineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CollusionClustering(benchmark::State& state) {
  const auto& trace = medium_trace();
  const auto backend = state.range(0) == 0
                           ? ccd::detect::ClusterBackend::kUnionFind
                           : ccd::detect::ClusterBackend::kDfsGraph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ccd::detect::cluster_ground_truth_malicious(trace, backend));
  }
  state.SetLabel(state.range(0) == 0 ? "union-find" : "dfs-graph");
}
BENCHMARK(BM_CollusionClustering)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  auto params = ccd::data::GeneratorParams::small();
  for (auto _ : state) {
    params.seed += 1;  // avoid trivially repeated streams
    benchmark::DoNotOptimize(ccd::data::generate_trace(params));
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// util::metrics overhead. Arg 0 = disarmed (set_enabled(false): every
// mutation should reduce to one relaxed load + branch), arg 1 = armed.
// Under -DCCD_NO_METRICS the loop bodies are inline no-ops, so the same
// scenarios double as proof the stubs vanish.

void BM_MetricsCounterAdd(benchmark::State& state) {
  namespace metrics = ccd::util::metrics;
  const bool was = metrics::enabled();
  metrics::set_enabled(state.range(0) != 0);
  metrics::Counter counter;
  for (auto _ : state) {
    counter.add(1);
    benchmark::ClobberMemory();
  }
  metrics::set_enabled(was);
  state.SetLabel(state.range(0) != 0 ? "armed" : "disarmed");
}
BENCHMARK(BM_MetricsCounterAdd)->Arg(0)->Arg(1);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  namespace metrics = ccd::util::metrics;
  const bool was = metrics::enabled();
  metrics::set_enabled(state.range(0) != 0);
  metrics::Histogram hist;
  double value = 1.0;
  for (auto _ : state) {
    hist.record(value);
    value = value < 1.0e6 ? value * 1.7 : 1.0;
    benchmark::ClobberMemory();
  }
  metrics::set_enabled(was);
  state.SetLabel(state.range(0) != 0 ? "armed" : "disarmed");
}
BENCHMARK(BM_MetricsHistogramRecord)->Arg(0)->Arg(1);

// End-to-end check that instrumentation does not tax the pipeline: the
// armed/disarmed pair should be indistinguishable within noise.
void BM_PipelineMetricsOverhead(benchmark::State& state) {
  namespace metrics = ccd::util::metrics;
  const auto& trace = medium_trace();
  ccd::core::PipelineConfig config;
  config.threads = 1;
  const bool was = metrics::enabled();
  metrics::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccd::core::run_pipeline(trace, config));
  }
  metrics::set_enabled(was);
  state.SetLabel(state.range(0) != 0 ? "armed" : "disarmed");
}
BENCHMARK(BM_PipelineMetricsOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Cost of the cooperative-cancellation checks sprinkled through hot loops
// (thread_pool chunks, the solve fan-out, simulation rounds). cancelled()
// is the per-index check and must stay in the low single-digit ns — the
// budget the durability design promises (<= ~2 ns/check); poll() adds a
// steady_clock read and is only called at coarse boundaries.
void BM_CancelCheck(benchmark::State& state) {
  const ccd::util::CancellationToken token;
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.cancelled());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CancelCheck);

void BM_CancelPoll(benchmark::State& state) {
  ccd::util::CancellationToken token;
  if (state.range(0) != 0) {
    token.set_deadline(ccd::util::Deadline::after(3600.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.poll());
    benchmark::ClobberMemory();
  }
  state.SetLabel(state.range(0) != 0 ? "armed-deadline" : "no-deadline");
}
BENCHMARK(BM_CancelPoll)->Arg(0)->Arg(1);

}  // namespace

// BENCHMARK_MAIN(), plus a default JSON sink: unless the caller supplied
// --benchmark_out, write results to BENCH_perf.json so CI always has a
// machine-readable artifact.
int main(int argc, char** argv) {
  // Peel our own force=1 flag off argv before google-benchmark sees it
  // (it would be reported as an unrecognized argument), then apply the
  // Release gate.
  bool force = false;
  bool have_out = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "force=1") == 0) {
      force = true;
      continue;
    }
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) have_out = true;
    args.push_back(argv[i]);
  }
  const std::string build_type = CCD_BUILD_TYPE;
  if (build_type != "release" && !force) {
    std::fprintf(stderr,
                 "bench_perf: refusing to publish numbers from a '%s' build "
                 "(rebuild with -DCMAKE_BUILD_TYPE=Release, or pass force=1 "
                 "to override)\n",
                 build_type.c_str());
    return 3;
  }
  benchmark::AddCustomContext("library_build_type", build_type);
  std::string out_flag = "--benchmark_out=BENCH_perf.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!have_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
