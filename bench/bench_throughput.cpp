// Fleet design throughput gate: workers-designed-per-second for the
// scalar reference batch (AoS), the vectorized batch (AoS out), and the
// SoA fleet path (SIMD and forced-portable), on a steady-state fleet
// whose class tables are already cached — the serve/stackelberg redesign
// hot path this PR optimizes.
//
// This binary *refuses to publish numbers from non-Release builds*: the
// library it links must have been compiled with CMAKE_BUILD_TYPE=Release
// (CCD_BUILD_TYPE is stamped in by CMake at compile time). Debug or
// RelWithDebInfo throughput is not comparable and has repeatedly polluted
// tracking history in other projects; exit code 3 makes CI fail loudly
// instead. `force=1` overrides for local poking; the JSON still records
// the real build type so a forced run can never masquerade as a gate.
//
// Exit codes: 0 gate passed, 1 gate failed (ratio/floor/bitwise check),
// 2 bad usage, 3 non-release build.
//
// Usage: bench_throughput [workers=20000] [classes=6] [intervals=20]
//                         [min_ratio=2.0] [min_scalar_wps=0]
//                         [out=BENCH_throughput.json] [force=0]
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "contract/fleet_soa.hpp"
#include "contract/ksweep.hpp"
#include "util/thread_pool.hpp"

#ifndef CCD_BUILD_TYPE
#define CCD_BUILD_TYPE "unknown"
#endif

namespace {

using namespace ccd;

std::vector<contract::SubproblemSpec> fleet_specs(std::size_t n,
                                                  std::size_t classes,
                                                  std::size_t intervals) {
  std::vector<contract::SubproblemSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % classes;
    const double t = static_cast<double>(c);
    contract::SubproblemSpec spec;
    spec.psi = effort::QuadraticEffort(-1.0 - 0.1 * t, 8.0 - 0.5 * t,
                                       2.0 + 0.25 * t);
    spec.incentives.beta = 1.0 + 0.05 * t;
    spec.incentives.omega = (c % 2 == 0) ? 0.0 : 0.1 * t;
    spec.weight =
        0.2 + 0.8 * static_cast<double>(i) / static_cast<double>(n);
    spec.mu = 1.0;
    spec.intervals = intervals;
    specs.push_back(spec);
  }
  return specs;
}

/// Best workers/second over repeated runs (>= 3 reps and >= 0.3 s total).
template <typename Fn>
double best_wps(std::size_t workers, Fn&& run) {
  double best = 0.0;
  double total_seconds = 0.0;
  for (int rep = 0; rep < 3 || total_seconds < 0.3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    total_seconds += elapsed.count();
    best = std::max(best,
                    static_cast<double>(workers) / elapsed.count());
    if (rep > 100) break;
  }
  return best;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 20000;
  std::size_t classes = 6;
  std::size_t intervals = 20;
  double min_ratio = 2.0;
  double min_scalar_wps = 0.0;
  std::string out_path = "BENCH_throughput.json";
  bool force = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad argument (want key=value): %s\n", argv[a]);
      return 2;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "workers") workers = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "classes") classes = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "intervals") intervals = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "min_ratio") min_ratio = std::strtod(value.c_str(), nullptr);
    else if (key == "min_scalar_wps") min_scalar_wps = std::strtod(value.c_str(), nullptr);
    else if (key == "out") out_path = value;
    else if (key == "force") force = value != "0";
    else { std::fprintf(stderr, "unknown key: %s\n", key.c_str()); return 2; }
  }

  const std::string build_type = CCD_BUILD_TYPE;
  if (build_type != "release" && !force) {
    std::fprintf(stderr,
                 "bench_throughput: library_build_type is \"%s\", not "
                 "\"release\"; refusing to publish throughput numbers "
                 "(rebuild with -DCMAKE_BUILD_TYPE=Release, or pass force=1 "
                 "for a local, non-gating run)\n",
                 build_type.c_str());
    return 3;
  }

  const std::vector<contract::SubproblemSpec> specs =
      fleet_specs(workers, classes, intervals);
  util::ThreadPool pool(1);  // single-thread numbers: gate kernel speed,
                             // not core count
  contract::DesignCache cache;

  // Steady state: all class tables cached before any timed run.
  for (std::size_t c = 0; c < classes && c < workers; ++c) {
    cache.table_for(specs[c]);
  }

  contract::BatchOptions scalar_opts;
  scalar_opts.pool = &pool;
  scalar_opts.cache = &cache;
  scalar_opts.kernel = contract::SweepKernel::kScalar;
  std::vector<contract::DesignResult> scalar_results;
  const double scalar_wps = best_wps(workers, [&] {
    scalar_results = contract::design_contracts_batch(specs, scalar_opts);
  });

  contract::BatchOptions simd_opts = scalar_opts;
  simd_opts.kernel = contract::SweepKernel::kSimd;
  std::vector<contract::DesignResult> simd_results;
  const double simd_batch_wps = best_wps(workers, [&] {
    simd_results = contract::design_contracts_batch(specs, simd_opts);
  });

  const contract::FleetSoA fleet = contract::FleetSoA::from_specs(specs);
  contract::FleetOptions fleet_opts;
  fleet_opts.pool = &pool;
  fleet_opts.cache = &cache;
  contract::FleetDesignResult fleet_result;
  const double fleet_simd_wps = best_wps(workers, [&] {
    fleet_result = contract::design_fleet(fleet, fleet_opts);
  });

  contract::FleetOptions portable_opts = fleet_opts;
  portable_opts.force_portable = true;
  contract::FleetDesignResult portable_result;
  const double fleet_portable_wps = best_wps(workers, [&] {
    portable_result = contract::design_fleet(fleet, portable_opts);
  });

  // Self-check on a subsample: the scalar batch must be bitwise-identical
  // to the uncached design_contract reference; the SIMD fleet result is
  // compared bitwise too and reported (expected identical on this
  // machine's no-contraction build; only the scalar flag gates).
  bool scalar_bitwise = true;
  bool simd_bitwise = true;
  const std::size_t stride = std::max<std::size_t>(1, workers / 64);
  for (std::size_t i = 0; i < workers; i += stride) {
    const contract::DesignResult reference =
        contract::design_contract(specs[i]);
    const contract::DesignResult& s = scalar_results[i];
    scalar_bitwise =
        scalar_bitwise && s.k_opt == reference.k_opt &&
        same_bits(s.requester_utility, reference.requester_utility) &&
        same_bits(s.upper_bound, reference.upper_bound) &&
        same_bits(s.lower_bound, reference.lower_bound) &&
        same_bits(s.response.effort, reference.response.effort) &&
        same_bits(s.response.compensation, reference.response.compensation);
    simd_bitwise =
        simd_bitwise && fleet_result.k_opt[i] == reference.k_opt &&
        same_bits(fleet_result.requester_utility[i],
                  reference.requester_utility) &&
        same_bits(fleet_result.upper_bound[i], reference.upper_bound) &&
        same_bits(fleet_result.lower_bound[i], reference.lower_bound) &&
        same_bits(fleet_result.effort[i], reference.response.effort) &&
        same_bits(fleet_result.compensation[i],
                  reference.response.compensation);
  }

  const double ratio = scalar_wps > 0.0 ? fleet_simd_wps / scalar_wps : 0.0;
  const bool ratio_ok = ratio >= min_ratio;
  const bool floor_ok = scalar_wps >= min_scalar_wps;
  const bool release = build_type == "release";
  const bool pass = release && ratio_ok && floor_ok && scalar_bitwise;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"library_build_type\": \"%s\",\n", build_type.c_str());
  std::fprintf(out, "  \"simd_kernel\": \"%s\",\n",
               contract::simd_kernel_name().c_str());
  std::fprintf(out, "  \"workers\": %zu,\n", workers);
  std::fprintf(out, "  \"classes\": %zu,\n", classes);
  std::fprintf(out, "  \"intervals\": %zu,\n", intervals);
  std::fprintf(out, "  \"scalar_batch_wps\": %.1f,\n", scalar_wps);
  std::fprintf(out, "  \"simd_batch_wps\": %.1f,\n", simd_batch_wps);
  std::fprintf(out, "  \"fleet_simd_wps\": %.1f,\n", fleet_simd_wps);
  std::fprintf(out, "  \"fleet_portable_wps\": %.1f,\n", fleet_portable_wps);
  std::fprintf(out, "  \"simd_over_scalar_ratio\": %.3f,\n", ratio);
  std::fprintf(out, "  \"min_ratio\": %.3f,\n", min_ratio);
  std::fprintf(out, "  \"min_scalar_wps\": %.1f,\n", min_scalar_wps);
  std::fprintf(out, "  \"scalar_bitwise_vs_reference\": %s,\n",
               scalar_bitwise ? "true" : "false");
  std::fprintf(out, "  \"simd_bitwise_vs_reference\": %s,\n",
               simd_bitwise ? "true" : "false");
  std::fprintf(out, "  \"pass\": %s\n", pass ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf(
      "bench_throughput (%s, simd=%s): scalar %.0f w/s, simd batch %.0f "
      "w/s, fleet simd %.0f w/s, fleet portable %.0f w/s, ratio %.2fx "
      "(need >= %.2fx), scalar bitwise %s, simd bitwise %s -> %s\n",
      build_type.c_str(), contract::simd_kernel_name().c_str(), scalar_wps,
      simd_batch_wps, fleet_simd_wps, fleet_portable_wps, ratio, min_ratio,
      scalar_bitwise ? "ok" : "FAIL", simd_bitwise ? "ok" : "differs",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
