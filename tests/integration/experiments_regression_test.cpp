// Golden-shape regression harness over the paper's evaluation shapes: the
// executable form of bench_fig6_bounds, bench_table2_communities, and
// bench_fig8c_vs_baseline. The benches print tables for humans; these tests
// pin the shapes those tables are expected to show, so a regression in the
// designer, the generator, or the clustering trips CI instead of silently
// bending a figure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "contract/baselines.hpp"
#include "contract/designer.hpp"
#include "contract/fleet_soa.hpp"
#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "detect/collusion.hpp"
#include "effort/effort_model.hpp"

namespace ccd {
namespace {

// Fig. 6 — designed requester utility vs the Theorem 4.1 bounds for a
// single honest worker as the effort partition densifies.
class Fig6Regression : public ::testing::Test {
 protected:
  static contract::SubproblemSpec spec() {
    contract::SubproblemSpec s;
    s.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
    s.incentives = {1.0, 0.0};
    s.weight = 1.0;
    s.mu = 1.0;
    return s;
  }
};

TEST_F(Fig6Regression, DesignedUtilityIsMonotoneInPartitionDensity) {
  contract::SubproblemSpec s = spec();
  double prev = -std::numeric_limits<double>::infinity();
  for (const std::size_t m : {2ul, 4ul, 8ul, 16ul, 32ul, 64ul, 128ul}) {
    s.intervals = m;
    const contract::DesignResult d = contract::design_contract(s);
    // Densifying the partition only adds candidate contracts, so the
    // designed utility must not decrease (the paper's Fig. 6 shape).
    EXPECT_GE(d.requester_utility, prev - 1e-12) << "m=" << m;
    EXPECT_LE(d.requester_utility, d.upper_bound + 1e-9) << "m=" << m;
    EXPECT_GE(d.requester_utility, d.lower_bound - 1e-9) << "m=" << m;
    prev = d.requester_utility;
  }
}

TEST_F(Fig6Regression, ConvergesToFineGridOracleAtM128) {
  contract::SubproblemSpec s = spec();
  s.intervals = 128;
  const contract::DesignResult d = contract::design_contract(s);
  const contract::OracleOutcome oracle = contract::oracle_optimal(s);
  ASSERT_GT(oracle.requester_utility, 0.0);
  // Theorem 4.1: the gap to the unrestricted optimum vanishes as m grows.
  // At m = 128 the designed utility is within 0.1% of the oracle.
  EXPECT_NEAR(d.requester_utility, oracle.requester_utility,
              1e-3 * oracle.requester_utility);
}

// Table II — the amazon2015 preset reproduces the paper's collusive
// community census exactly on the default seed.
TEST(Table2Regression, Amazon2015CensusIsExactOnDefaultSeed) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::amazon2015());
  const detect::CollusionResult truth =
      detect::cluster_ground_truth_malicious(trace);
  const detect::CommunityCensus c = detect::census(truth);
  EXPECT_EQ(c.communities, 47u);
  EXPECT_EQ(c.workers, 212u);

  // Both clustering backends must agree on the census.
  const detect::CollusionResult dfs = detect::cluster_ground_truth_malicious(
      trace, detect::ClusterBackend::kDfsGraph);
  const detect::CommunityCensus cd = detect::census(dfs);
  EXPECT_EQ(cd.communities, c.communities);
  EXPECT_EQ(cd.workers, c.workers);
  EXPECT_DOUBLE_EQ(cd.pct_size2, c.pct_size2);
  EXPECT_DOUBLE_EQ(cd.pct_size10plus, c.pct_size10plus);
}

// Fig. 8(c) — the designed (dynamic) contract beats the fixed-payment
// baseline on the same trace for every evaluated mu.
TEST(Fig8cRegression, DynamicBeatsFixedPaymentAcrossMu) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::medium());
  for (const double mu : {1.0, 0.9, 0.8}) {
    core::PipelineConfig dynamic;
    dynamic.requester.mu = mu;
    core::PipelineConfig fixed = dynamic;
    fixed.strategy = core::PricingStrategy::kFixedPayment;
    fixed.fixed_payment = 2.0;
    fixed.fixed_threshold_effort = 1.0;

    const double u_dynamic =
        core::run_pipeline(trace, dynamic).total_requester_utility;
    const double u_fixed =
        core::run_pipeline(trace, fixed).total_requester_utility;
    EXPECT_GT(u_dynamic, u_fixed) << "mu=" << mu;
  }
}

// The vectorized k-sweep must reproduce the golden shapes, not just match
// the scalar path on random fleets: Fig. 6's monotone m-sweep through
// design_fleet with the SIMD kernel...
TEST_F(Fig6Regression, SimdFleetPathReproducesMonotoneShape) {
  contract::SubproblemSpec s = spec();
  double prev = -std::numeric_limits<double>::infinity();
  for (const std::size_t m : {2ul, 4ul, 8ul, 16ul, 32ul, 64ul, 128ul}) {
    s.intervals = m;
    const contract::FleetSoA fleet = contract::FleetSoA::from_specs({s});
    contract::FleetOptions options;
    options.kernel = contract::SweepKernel::kSimd;
    const contract::FleetDesignResult d = contract::design_fleet(fleet, options);
    ASSERT_EQ(d.workers(), 1u);
    EXPECT_GE(d.requester_utility[0], prev - 1e-12) << "m=" << m;
    EXPECT_LE(d.requester_utility[0], d.upper_bound[0] + 1e-9) << "m=" << m;
    EXPECT_GE(d.requester_utility[0], d.lower_bound[0] - 1e-9) << "m=" << m;
    prev = d.requester_utility[0];
  }
}

// ...and Fig. 8(c)'s dynamic-beats-fixed shape with the whole pipeline
// running the vectorized solve stage (sweep_kernel = kAuto).
TEST(Fig8cRegression, DynamicBeatsFixedPaymentWithSimdSolveStage) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::medium());
  for (const double mu : {1.0, 0.9, 0.8}) {
    core::PipelineConfig dynamic;
    dynamic.requester.mu = mu;
    dynamic.sweep_kernel = contract::SweepKernel::kAuto;
    core::PipelineConfig fixed = dynamic;
    fixed.strategy = core::PricingStrategy::kFixedPayment;
    fixed.fixed_payment = 2.0;
    fixed.fixed_threshold_effort = 1.0;

    const double u_dynamic =
        core::run_pipeline(trace, dynamic).total_requester_utility;
    const double u_fixed =
        core::run_pipeline(trace, fixed).total_requester_utility;
    EXPECT_GT(u_dynamic, u_fixed) << "mu=" << mu;
  }
}

}  // namespace
}  // namespace ccd
