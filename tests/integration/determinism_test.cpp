// Determinism: the pipeline's observable outputs are a pure function of
// (trace, config) — the thread count and the observability layer never leak
// into results. Two runs over the same trace, one on a single-thread pool
// and one on a 4-thread pool, must agree bitwise on every payment, effort,
// feedback, and utility (timings and metrics excluded: they measure the
// run, not the answer).
// Scenario runs extend the same contract: a scenario cell is a pure
// function of its spec's seed — invariant across thread counts, and a
// kill + checkpoint-resume (with a freshly re-attached ScenarioHook,
// since hook pointers are never checkpointed) continues the adversarial
// campaign bitwise-identically.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "core/stackelberg.hpp"
#include "data/generator.hpp"
#include "scenario/scenario.hpp"
#include "util/metrics.hpp"

namespace ccd {
namespace {

void expect_bitwise_equal(const core::PipelineResult& a,
                          const core::PipelineResult& b) {
  // Totals first: a mismatch here gives the quickest signal.
  EXPECT_EQ(a.total_requester_utility, b.total_requester_utility);
  EXPECT_EQ(a.total_compensation, b.total_compensation);
  EXPECT_EQ(a.excluded_workers, b.excluded_workers);

  ASSERT_EQ(a.workers.size(), b.workers.size());
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    const core::WorkerOutcome& wa = a.workers[i];
    const core::WorkerOutcome& wb = b.workers[i];
    EXPECT_EQ(wa.id, wb.id) << "worker " << i;
    EXPECT_EQ(wa.excluded, wb.excluded) << "worker " << i;
    EXPECT_EQ(wa.subproblem, wb.subproblem) << "worker " << i;
    // operator== on doubles: bitwise-identical values required, not just
    // close ones. Any cross-thread reduction-order leak fails here.
    EXPECT_EQ(wa.compensation, wb.compensation) << "worker " << i;
    EXPECT_EQ(wa.requester_utility, wb.requester_utility) << "worker " << i;
    EXPECT_EQ(wa.effort, wb.effort) << "worker " << i;
    EXPECT_EQ(wa.feedback, wb.feedback) << "worker " << i;
    EXPECT_EQ(wa.weight, wb.weight) << "worker " << i;
    EXPECT_EQ(wa.malicious_probability, wb.malicious_probability)
        << "worker " << i;
  }

  ASSERT_EQ(a.subproblems.size(), b.subproblems.size());
  for (std::size_t i = 0; i < a.subproblems.size(); ++i) {
    const core::SubproblemOutcome& sa = a.subproblems[i];
    const core::SubproblemOutcome& sb = b.subproblems[i];
    EXPECT_EQ(sa.workers, sb.workers) << "subproblem " << i;
    EXPECT_EQ(sa.design.k_opt, sb.design.k_opt) << "subproblem " << i;
    EXPECT_EQ(sa.design.requester_utility, sb.design.requester_utility)
        << "subproblem " << i;
    EXPECT_EQ(sa.design.response.effort, sb.design.response.effort)
        << "subproblem " << i;
  }
}

TEST(DeterminismTest, ThreadCountDoesNotChangeResults) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::medium());
  core::PipelineConfig sequential;
  sequential.threads = 1;
  core::PipelineConfig parallel = sequential;
  parallel.threads = 4;

  const core::PipelineResult a = core::run_pipeline(trace, sequential);
  const core::PipelineResult b = core::run_pipeline(trace, parallel);
  expect_bitwise_equal(a, b);
}

TEST(DeterminismTest, RepeatedRunsAreBitwiseIdentical) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const core::PipelineConfig config;
  const core::PipelineResult a = core::run_pipeline(trace, config);
  const core::PipelineResult b = core::run_pipeline(trace, config);
  expect_bitwise_equal(a, b);
}

scenario::ScenarioSpec adversarial_spec() {
  // Every adversary class at once, small enough to run in milliseconds.
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::preset("mixed");
  util::ParamMap overrides;
  overrides.set("workers", "14");
  overrides.set("malicious", "5");
  overrides.set("communities", "2");
  overrides.set("sybil", "2");
  overrides.set("rounds", "18");
  overrides.set("seed", "21");
  spec.apply_params(overrides);
  return spec;
}

TEST(DeterminismTest, PolicyBackendsAreThreadCountInvariant) {
  // Every contract-designer backend — BiP and both online learners — must
  // produce the same simulation bitwise at any pool size: the learners'
  // per-round arm selection only reads checkpointed state, never thread
  // scheduling.
  for (const policy::Kind kind :
       {policy::Kind::kBip, policy::Kind::kZoomingBandit,
        policy::Kind::kPostedPrice}) {
    SCOPED_TRACE(policy::to_string(kind));
    core::SimConfig sequential;
    sequential.rounds = 24;
    sequential.seed = 5;
    sequential.policy.kind = kind;
    sequential.threads = 1;
    core::SimConfig parallel = sequential;
    parallel.threads = 4;
    const std::vector<core::SimWorkerSpec> workers = core::preset_fleet(10, 3);

    const core::SimResult a =
        core::StackelbergSimulator(workers, sequential).run();
    const core::SimResult b =
        core::StackelbergSimulator(workers, parallel).run();

    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t t = 0; t < a.rounds.size(); ++t) {
      EXPECT_EQ(a.rounds[t].requester_utility, b.rounds[t].requester_utility)
          << "round " << t;
      EXPECT_EQ(a.rounds[t].total_compensation, b.rounds[t].total_compensation)
          << "round " << t;
    }
    EXPECT_EQ(a.cumulative_requester_utility, b.cumulative_requester_utility);
  }
}

TEST(DeterminismTest, ScenarioCellIsThreadCountInvariant) {
  const scenario::ScenarioSpec spec = adversarial_spec();
  for (const scenario::Policy policy :
       {scenario::Policy::kDynamic, scenario::Policy::kFixed}) {
    scenario::RunOptions sequential;
    sequential.threads = 1;
    scenario::RunOptions parallel;
    parallel.threads = 4;
    const scenario::ScenarioCell a = run_cell(spec, policy, sequential);
    const scenario::ScenarioCell b = run_cell(spec, policy, parallel);
    EXPECT_EQ(a.score.requester_utility, b.score.requester_utility);
    EXPECT_EQ(a.score.total_compensation, b.score.total_compensation);
    EXPECT_EQ(a.score.detector_precision, b.score.detector_precision);
    EXPECT_EQ(a.score.detector_recall, b.score.detector_recall);
    EXPECT_EQ(a.score.community_recall, b.score.community_recall);
    EXPECT_EQ(a.score.quarantined, b.score.quarantined);
    EXPECT_EQ(a.score.excluded, b.score.excluded);
  }
}

TEST(DeterminismTest, ScenarioResumeWithFreshHookIsBitwiseIdentical) {
  const scenario::ScenarioSpec spec = adversarial_spec();
  const scenario::Fleet fleet = scenario::build_fleet(spec);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ccd_scenario_resume_" + std::to_string(::getpid()) + ".ckpt"))
          .string();

  // Uninterrupted reference campaign.
  scenario::ScenarioHook full_hook(spec, fleet, scenario::Policy::kDynamic);
  core::StackelbergSimulator full(
      fleet.workers, sim_config(spec, scenario::Policy::kDynamic));
  full.set_round_hook(&full_hook);
  const core::SimResult uninterrupted = full.run();

  // Phase 1: "killed" at the halfway checkpoint.
  scenario::RunOptions durable;
  durable.checkpoint_every = spec.rounds / 2;
  durable.checkpoint_path = path;
  core::SimConfig partial =
      sim_config(spec, scenario::Policy::kDynamic, durable);
  partial.rounds = spec.rounds / 2;
  scenario::ScenarioHook first_hook(spec, fleet, scenario::Policy::kDynamic);
  core::StackelbergSimulator half(fleet.workers, partial);
  half.set_round_hook(&first_hook);
  half.run();

  // Phase 2: restore, re-attach a FRESH hook (hook pointers are not part
  // of a checkpoint), extend to the full horizon.
  core::SimCheckpoint checkpoint = core::load_checkpoint(path);
  EXPECT_EQ(checkpoint.next_round, spec.rounds / 2);
  checkpoint.config.rounds = spec.rounds;
  scenario::ScenarioHook second_hook(spec, fleet, scenario::Policy::kDynamic);
  core::StackelbergSimulator resumed_sim(checkpoint);
  resumed_sim.set_round_hook(&second_hook);
  const core::SimResult resumed = resumed_sim.run();
  std::filesystem::remove(path);

  ASSERT_EQ(uninterrupted.rounds.size(), resumed.rounds.size());
  for (std::size_t t = 0; t < uninterrupted.rounds.size(); ++t) {
    EXPECT_EQ(uninterrupted.rounds[t].requester_utility,
              resumed.rounds[t].requester_utility)
        << "round " << t;
    EXPECT_EQ(uninterrupted.rounds[t].total_compensation,
              resumed.rounds[t].total_compensation)
        << "round " << t;
  }
  ASSERT_EQ(uninterrupted.worker_history.size(), resumed.worker_history.size());
  for (std::size_t w = 0; w < uninterrupted.worker_history.size(); ++w) {
    ASSERT_EQ(uninterrupted.worker_history[w].size(),
              resumed.worker_history[w].size());
    for (std::size_t t = 0; t < uninterrupted.worker_history[w].size(); ++t) {
      EXPECT_EQ(uninterrupted.worker_history[w][t].feedback,
                resumed.worker_history[w][t].feedback)
          << "worker " << w << " round " << t;
      EXPECT_EQ(uninterrupted.worker_history[w][t].compensation,
                resumed.worker_history[w][t].compensation)
          << "worker " << w << " round " << t;
      EXPECT_EQ(uninterrupted.worker_history[w][t].estimated_malicious,
                resumed.worker_history[w][t].estimated_malicious)
          << "worker " << w << " round " << t;
    }
  }
  EXPECT_EQ(uninterrupted.cumulative_requester_utility,
            resumed.cumulative_requester_utility);
}

TEST(DeterminismTest, MetricsArmingDoesNotChangeResults) {
  namespace metrics = util::metrics;
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const core::PipelineConfig config;
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  const core::PipelineResult armed = core::run_pipeline(trace, config);
  metrics::set_enabled(false);
  const core::PipelineResult disarmed = core::run_pipeline(trace, config);
  metrics::set_enabled(was);
  expect_bitwise_equal(armed, disarmed);
}

}  // namespace
}  // namespace ccd
