// Determinism: the pipeline's observable outputs are a pure function of
// (trace, config) — the thread count and the observability layer never leak
// into results. Two runs over the same trace, one on a single-thread pool
// and one on a 4-thread pool, must agree bitwise on every payment, effort,
// feedback, and utility (timings and metrics excluded: they measure the
// run, not the answer).
#include <gtest/gtest.h>

#include <cstddef>

#include "core/pipeline.hpp"
#include "data/generator.hpp"
#include "util/metrics.hpp"

namespace ccd {
namespace {

void expect_bitwise_equal(const core::PipelineResult& a,
                          const core::PipelineResult& b) {
  // Totals first: a mismatch here gives the quickest signal.
  EXPECT_EQ(a.total_requester_utility, b.total_requester_utility);
  EXPECT_EQ(a.total_compensation, b.total_compensation);
  EXPECT_EQ(a.excluded_workers, b.excluded_workers);

  ASSERT_EQ(a.workers.size(), b.workers.size());
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    const core::WorkerOutcome& wa = a.workers[i];
    const core::WorkerOutcome& wb = b.workers[i];
    EXPECT_EQ(wa.id, wb.id) << "worker " << i;
    EXPECT_EQ(wa.excluded, wb.excluded) << "worker " << i;
    EXPECT_EQ(wa.subproblem, wb.subproblem) << "worker " << i;
    // operator== on doubles: bitwise-identical values required, not just
    // close ones. Any cross-thread reduction-order leak fails here.
    EXPECT_EQ(wa.compensation, wb.compensation) << "worker " << i;
    EXPECT_EQ(wa.requester_utility, wb.requester_utility) << "worker " << i;
    EXPECT_EQ(wa.effort, wb.effort) << "worker " << i;
    EXPECT_EQ(wa.feedback, wb.feedback) << "worker " << i;
    EXPECT_EQ(wa.weight, wb.weight) << "worker " << i;
    EXPECT_EQ(wa.malicious_probability, wb.malicious_probability)
        << "worker " << i;
  }

  ASSERT_EQ(a.subproblems.size(), b.subproblems.size());
  for (std::size_t i = 0; i < a.subproblems.size(); ++i) {
    const core::SubproblemOutcome& sa = a.subproblems[i];
    const core::SubproblemOutcome& sb = b.subproblems[i];
    EXPECT_EQ(sa.workers, sb.workers) << "subproblem " << i;
    EXPECT_EQ(sa.design.k_opt, sb.design.k_opt) << "subproblem " << i;
    EXPECT_EQ(sa.design.requester_utility, sb.design.requester_utility)
        << "subproblem " << i;
    EXPECT_EQ(sa.design.response.effort, sb.design.response.effort)
        << "subproblem " << i;
  }
}

TEST(DeterminismTest, ThreadCountDoesNotChangeResults) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::medium());
  core::PipelineConfig sequential;
  sequential.threads = 1;
  core::PipelineConfig parallel = sequential;
  parallel.threads = 4;

  const core::PipelineResult a = core::run_pipeline(trace, sequential);
  const core::PipelineResult b = core::run_pipeline(trace, parallel);
  expect_bitwise_equal(a, b);
}

TEST(DeterminismTest, RepeatedRunsAreBitwiseIdentical) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const core::PipelineConfig config;
  const core::PipelineResult a = core::run_pipeline(trace, config);
  const core::PipelineResult b = core::run_pipeline(trace, config);
  expect_bitwise_equal(a, b);
}

TEST(DeterminismTest, MetricsArmingDoesNotChangeResults) {
  namespace metrics = util::metrics;
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const core::PipelineConfig config;
  const bool was = metrics::enabled();
  metrics::set_enabled(true);
  const core::PipelineResult armed = core::run_pipeline(trace, config);
  metrics::set_enabled(false);
  const core::PipelineResult disarmed = core::run_pipeline(trace, config);
  metrics::set_enabled(was);
  expect_bitwise_equal(armed, disarmed);
}

}  // namespace
}  // namespace ccd
