// Property-based sweeps (parameterized) over the contract machinery:
// the paper's analytic guarantees must hold across a grid of effort-function
// shapes, incentive parameters, and partition densities.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "contract/baselines.hpp"
#include "contract/bounds.hpp"
#include "contract/candidate.hpp"
#include "contract/designer.hpp"
#include "util/rng.hpp"

namespace ccd::contract {
namespace {

struct PsiShape {
  double r2;
  double r1;
  double r0;
};

// (psi shape, beta, omega, m)
using ContractParam = std::tuple<PsiShape, double, double, std::size_t>;

class ContractPropertyTest : public ::testing::TestWithParam<ContractParam> {
 protected:
  effort::QuadraticEffort psi() const {
    const PsiShape s = std::get<0>(GetParam());
    return effort::QuadraticEffort(s.r2, s.r1, s.r0);
  }
  WorkerIncentives incentives() const {
    return {std::get<1>(GetParam()), std::get<2>(GetParam())};
  }
  std::size_t m() const { return std::get<3>(GetParam()); }
  SubproblemSpec spec(double weight = 1.0, double mu = 1.0) const {
    SubproblemSpec s;
    s.psi = psi();
    s.incentives = incentives();
    s.weight = weight;
    s.mu = mu;
    s.intervals = m();
    return s;
  }
};

TEST_P(ContractPropertyTest, CandidateTargetsItsInterval) {
  const auto p = psi();
  const auto inc = incentives();
  const double delta = p.usable_domain() / static_cast<double>(m());
  // When omega * psi'(0) >= beta the feedback motive alone can carry the
  // worker past the flat region beyond k delta, so exact targeting is only
  // guaranteed in the no-overshoot regime; otherwise the worker must still
  // never fall short of the target interval.
  const bool no_overshoot = inc.omega * p.r1() < inc.beta;
  for (std::size_t k = 1; k <= m(); ++k) {
    const Contract c = build_candidate(p, delta, m(), k, inc);
    const BestResponse br = best_response(c, p, inc);
    if (no_overshoot) {
      EXPECT_EQ(br.interval, k) << "k=" << k;
    } else {
      EXPECT_GE(br.interval, k) << "k=" << k;
    }
  }
}

TEST_P(ContractPropertyTest, CandidatePaymentsAreMonotone) {
  const auto p = psi();
  const auto inc = incentives();
  const double delta = p.usable_domain() / static_cast<double>(m());
  for (std::size_t k = 1; k <= m(); ++k) {
    const Contract c = build_candidate(p, delta, m(), k, inc);
    for (std::size_t l = 1; l <= m(); ++l) {
      EXPECT_GE(c.payment(l), c.payment(l - 1) - 1e-12);
    }
  }
}

TEST_P(ContractPropertyTest, CompensationWithinLemmaBounds) {
  const auto p = psi();
  const auto inc = incentives();
  const double delta = p.usable_domain() / static_cast<double>(m());
  for (std::size_t k = 1; k <= m(); ++k) {
    const Contract c = build_candidate(p, delta, m(), k, inc);
    const BestResponse br = best_response(c, p, inc);
    // Lemma 4.2's cap applies to the targeted response; when the worker
    // overshoots past k (large omega), pay saturates at the same level, so
    // restrict the check to responses that landed in k.
    if (br.interval != k) continue;
    EXPECT_LE(br.compensation,
              lemma42_compensation_upper(p, inc.beta, delta, k) + 1e-9)
        << "k=" << k;
  }
}

TEST_P(ContractPropertyTest, DesignRespectsTheoremBounds) {
  const DesignResult d = design_contract(spec());
  EXPECT_LE(d.requester_utility, d.upper_bound + 1e-9);
  EXPECT_GE(d.requester_utility, d.lower_bound - 1e-9);
}

TEST_P(ContractPropertyTest, WorkerParticipationIsRational) {
  const auto s = spec();
  const DesignResult d = design_contract(s);
  const double outside = worker_utility(d.contract, s.psi, s.incentives, 0.0);
  EXPECT_GE(d.response.utility, outside - 1e-9);
}

TEST_P(ContractPropertyTest, OracleDominatesDesign) {
  const auto s = spec();
  const DesignResult d = design_contract(s);
  const OracleOutcome oracle = oracle_optimal(s);
  EXPECT_GE(oracle.requester_utility, d.requester_utility - 1e-6);
}

TEST_P(ContractPropertyTest, BestResponseBeatsDenseGridSearch) {
  const auto s = spec();
  const DesignResult d = design_contract(s);
  double grid_best = -1e300;
  for (int i = 0; i <= 2000; ++i) {
    const double y = s.psi.y_peak() * i / 2000.0;
    grid_best = std::max(grid_best,
                         worker_utility(d.contract, s.psi, s.incentives, y));
  }
  EXPECT_GE(d.response.utility, grid_best - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, ContractPropertyTest,
    ::testing::Combine(
        ::testing::Values(PsiShape{-1.0, 8.0, 2.0}, PsiShape{-0.5, 4.0, 0.5},
                          PsiShape{-2.5, 14.0, 4.0},
                          PsiShape{-0.08, 1.2, 0.1}),
        ::testing::Values(0.5, 1.0, 2.0),   // beta
        ::testing::Values(0.0, 0.1),        // omega (positive-slope regime)
        ::testing::Values(4u, 11u, 24u)));  // m

// --- Convergence sweep: utility gap shrinks as m grows --------------------

class ConvergenceTest : public ::testing::TestWithParam<PsiShape> {};

TEST_P(ConvergenceTest, UtilityGapShrinksMonotonically) {
  const PsiShape s = GetParam();
  const effort::QuadraticEffort psi(s.r2, s.r1, s.r0);
  double prev_gap = 1e300;
  for (const std::size_t m : {4ul, 8ul, 16ul, 32ul, 64ul}) {
    SubproblemSpec spec;
    spec.psi = psi;
    spec.incentives = {1.0, 0.0};
    spec.weight = 1.0;
    spec.mu = 1.0;
    spec.intervals = m;
    const DesignResult d = design_contract(spec);
    const double gap = d.upper_bound - d.requester_utility;
    EXPECT_GE(gap, -1e-9) << "m=" << m;
    EXPECT_LE(gap, prev_gap + 1e-9) << "m=" << m;
    prev_gap = gap;
  }
  // The final gap should be a small fraction of the utility scale.
  EXPECT_LT(prev_gap, 0.1 * std::abs(psi(psi.usable_domain())));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvergenceTest,
                         ::testing::Values(PsiShape{-1.0, 8.0, 2.0},
                                           PsiShape{-0.5, 4.0, 0.5},
                                           PsiShape{-2.0, 10.0, 1.0}));

// --- Randomized fuzz over feasible specs -----------------------------------

TEST(ContractFuzzTest, RandomSpecsNeverViolateInvariants) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 150; ++trial) {
    const double r2 = -rng.uniform(0.05, 3.0);
    const double r1 = rng.uniform(0.5, 15.0);
    const double r0 = rng.uniform(0.0, 5.0);
    SubproblemSpec spec;
    spec.psi = effort::QuadraticEffort(r2, r1, r0);
    spec.incentives.beta = rng.uniform(0.2, 3.0);
    spec.incentives.omega = rng.uniform(0.0, 1.0);
    spec.weight = rng.uniform(-0.5, 4.0);
    spec.mu = rng.uniform(0.5, 3.0);
    spec.intervals = static_cast<std::size_t>(rng.uniform_int(1, 40));

    const DesignResult d = design_contract(spec);
    if (spec.weight <= 0.0) {
      EXPECT_TRUE(d.excluded);
      continue;
    }
    // Invariants: monotone non-negative payments, bounds bracket utility,
    // response consistent with the contract.
    for (std::size_t l = 1; l <= d.contract.intervals(); ++l) {
      ASSERT_GE(d.contract.payment(l), d.contract.payment(l - 1) - 1e-12);
      ASSERT_GE(d.contract.payment(l - 1), 0.0);
    }
    ASSERT_LE(d.requester_utility, d.upper_bound + 1e-6) << "trial " << trial;
    ASSERT_GE(d.requester_utility, d.lower_bound - 1e-6) << "trial " << trial;
    ASSERT_NEAR(d.response.compensation, d.contract.pay(d.response.feedback),
                1e-9);
  }
}

}  // namespace
}  // namespace ccd::contract
