// Fleet-level property sweeps: pipeline invariants must hold across trace
// shapes (population mix, community structure, seeds) — parameterized over
// generator configurations.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/pipeline.hpp"
#include "data/generator.hpp"

namespace ccd::core {
namespace {

struct FleetShape {
  std::size_t honest;
  std::size_t ncm;
  std::vector<std::size_t> communities;
};

// (shape index resolved via table, seed)
using FleetParam = std::tuple<int, std::uint64_t>;

const FleetShape kShapes[] = {
    {200, 0, {}},                    // purely honest
    {200, 40, {}},                   // honest + lone spammers
    {150, 10, {2, 2, 3}},            // small rings
    {150, 10, {8, 12}},              // big rings
    {60, 30, {2, 2, 2, 2, 2, 2}},    // malicious-heavy
};

class FleetPropertyTest : public ::testing::TestWithParam<FleetParam> {
 protected:
  static const data::ReviewTrace& trace_for(const FleetParam& param) {
    static std::map<FleetParam, data::ReviewTrace> cache;
    const auto it = cache.find(param);
    if (it != cache.end()) return it->second;
    const FleetShape& shape = kShapes[std::get<0>(param)];
    data::GeneratorParams gen = data::GeneratorParams::small();
    gen.n_honest = shape.honest;
    gen.n_ncm = shape.ncm;
    gen.community_sizes = shape.communities;
    gen.seed = std::get<1>(param);
    return cache.emplace(param, data::generate_trace(gen)).first->second;
  }
};

TEST_P(FleetPropertyTest, SubproblemsPartitionAndTotalsAgree) {
  const data::ReviewTrace& trace = trace_for(GetParam());
  const PipelineResult r = run_pipeline(trace, PipelineConfig{});
  std::vector<int> covered(trace.workers().size(), 0);
  double utility = 0.0;
  double pay = 0.0;
  for (const SubproblemOutcome& sub : r.subproblems) {
    for (const data::WorkerId id : sub.workers) ++covered[id];
    utility += sub.design.requester_utility;
    pay += sub.design.response.compensation;
  }
  for (const int c : covered) ASSERT_EQ(c, 1);
  EXPECT_NEAR(r.total_requester_utility, utility, 1e-6);
  EXPECT_NEAR(r.total_compensation, pay, 1e-6);
}

TEST_P(FleetPropertyTest, NonExcludedDesignsRespectBounds) {
  const data::ReviewTrace& trace = trace_for(GetParam());
  const PipelineResult r = run_pipeline(trace, PipelineConfig{});
  for (const SubproblemOutcome& sub : r.subproblems) {
    if (sub.design.excluded) continue;
    EXPECT_LE(sub.design.requester_utility, sub.design.upper_bound + 1e-6);
    EXPECT_GE(sub.design.requester_utility, sub.design.lower_bound - 1e-6);
  }
}

TEST_P(FleetPropertyTest, DynamicAtLeastMatchesExclusion) {
  const data::ReviewTrace& trace = trace_for(GetParam());
  PipelineConfig exclusion;
  exclusion.strategy = PricingStrategy::kExcludeMalicious;
  const double ours =
      run_pipeline(trace, PipelineConfig{}).total_requester_utility;
  const double theirs =
      run_pipeline(trace, exclusion).total_requester_utility;
  EXPECT_GE(ours, theirs - 1e-6);
}

TEST_P(FleetPropertyTest, HonestMeanPayTopsMaliciousWhenMaliciousExist) {
  const data::ReviewTrace& trace = trace_for(GetParam());
  const FleetShape& shape = kShapes[std::get<0>(GetParam())];
  if (shape.ncm == 0 && shape.communities.empty()) {
    GTEST_SKIP() << "no malicious workers in this shape";
  }
  const PipelineResult r = run_pipeline(trace, PipelineConfig{});
  const auto mean_of = [&](data::WorkerClass cls) {
    const auto v = r.compensations_of_class(cls);
    double total = 0.0;
    for (const double x : v) total += x;
    return v.empty() ? 0.0 : total / static_cast<double>(v.size());
  };
  const double honest = mean_of(data::WorkerClass::kHonest);
  if (shape.ncm > 0) {
    EXPECT_GT(honest, mean_of(data::WorkerClass::kNonCollusiveMalicious));
  }
  if (!shape.communities.empty()) {
    EXPECT_GT(honest, mean_of(data::WorkerClass::kCollusiveMalicious));
  }
}

TEST_P(FleetPropertyTest, ThreadCountDoesNotChangeResults) {
  const data::ReviewTrace& trace = trace_for(GetParam());
  PipelineConfig serial;
  serial.threads = 1;
  PipelineConfig parallel;
  parallel.threads = 8;
  const PipelineResult a = run_pipeline(trace, serial);
  const PipelineResult b = run_pipeline(trace, parallel);
  EXPECT_DOUBLE_EQ(a.total_requester_utility, b.total_requester_utility);
  EXPECT_DOUBLE_EQ(a.total_compensation, b.total_compensation);
}

TEST_P(FleetPropertyTest, GroundTruthLabelsRecoverPlantedStructure) {
  const data::ReviewTrace& trace = trace_for(GetParam());
  const FleetShape& shape = kShapes[std::get<0>(GetParam())];
  PipelineConfig config;
  config.use_ground_truth_labels = true;
  const PipelineResult r = run_pipeline(trace, config);
  EXPECT_EQ(r.collusion.communities.size(), shape.communities.size());
  EXPECT_EQ(r.collusion.non_collusive.size(), shape.ncm);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FleetPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 1234u)));

}  // namespace
}  // namespace ccd::core
