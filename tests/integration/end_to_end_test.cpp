// End-to-end integration: generate -> persist -> reload -> full pipeline ->
// reports, and cross-strategy comparisons on the same medium-sized trace.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/stackelberg.hpp"
#include "data/generator.hpp"
#include "data/loader.hpp"
#include "detect/collusion.hpp"
#include "effort/fitting.hpp"

namespace ccd {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new data::ReviewTrace(
        data::generate_trace(data::GeneratorParams::medium()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static data::ReviewTrace* trace_;
};

data::ReviewTrace* EndToEndTest::trace_ = nullptr;

TEST_F(EndToEndTest, PersistReloadPipelineEquivalence) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ccd_e2e_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string prefix = (dir / "trace").string();
  data::save_trace(*trace_, prefix);
  const data::ReviewTrace reloaded = data::load_trace(prefix);
  std::filesystem::remove_all(dir);

  const core::PipelineResult a = run_pipeline(*trace_, core::PipelineConfig{});
  const core::PipelineResult b =
      run_pipeline(reloaded, core::PipelineConfig{});
  // Scores round-trip at 4 decimals; aggregate results should agree closely.
  EXPECT_NEAR(a.total_requester_utility, b.total_requester_utility,
              1e-3 * std::abs(a.total_requester_utility) + 1e-6);
  EXPECT_EQ(a.collusion.communities.size(), b.collusion.communities.size());
}

TEST_F(EndToEndTest, StrategyOrderingHoldsOnMediumTrace) {
  core::PipelineConfig dynamic;
  core::PipelineConfig exclusion;
  exclusion.strategy = core::PricingStrategy::kExcludeMalicious;
  core::PipelineConfig fixed;
  fixed.strategy = core::PricingStrategy::kFixedPayment;
  fixed.fixed_payment = 2.0;
  fixed.fixed_threshold_effort = 1.0;

  const double u_dynamic =
      run_pipeline(*trace_, dynamic).total_requester_utility;
  const double u_exclusion =
      run_pipeline(*trace_, exclusion).total_requester_utility;
  const double u_fixed = run_pipeline(*trace_, fixed).total_requester_utility;

  EXPECT_GT(u_dynamic, u_exclusion);  // Fig. 8(c)
  EXPECT_GT(u_dynamic, u_fixed);      // motivation in §I
}

TEST_F(EndToEndTest, DesignedUtilitiesRespectTheoremBounds) {
  const core::PipelineResult r =
      run_pipeline(*trace_, core::PipelineConfig{});
  std::size_t checked = 0;
  for (const core::SubproblemOutcome& sub : r.subproblems) {
    if (sub.design.excluded) continue;
    EXPECT_LE(sub.design.requester_utility, sub.design.upper_bound + 1e-6);
    EXPECT_GE(sub.design.requester_utility, sub.design.lower_bound - 1e-6);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(EndToEndTest, GroundTruthClusteringMatchesDetectorOnPlanted) {
  // With ground-truth labels, clustering equals the planted structure; the
  // detector-driven clustering should recover most of it.
  core::PipelineConfig truth;
  truth.use_ground_truth_labels = true;
  core::PipelineConfig detected;
  const core::PipelineResult a = run_pipeline(*trace_, truth);
  const core::PipelineResult b = run_pipeline(*trace_, detected);
  EXPECT_EQ(a.collusion.communities.size(),
            data::GeneratorParams::medium().community_sizes.size());
  EXPECT_GE(b.collusion.communities.size(),
            a.collusion.communities.size() / 2);
}

TEST_F(EndToEndTest, ClassFitsFeedCommunityDesigns) {
  const core::PipelineResult r =
      run_pipeline(*trace_, core::PipelineConfig{});
  for (const core::SubproblemOutcome& sub : r.subproblems) {
    if (sub.workers.size() > 1) {
      // Community spec must carry the malicious omega.
      EXPECT_GT(sub.spec.incentives.omega, 0.0);
    }
  }
}

TEST_F(EndToEndTest, SimulatorConsistentWithOneShotDesign) {
  // A noise-free simulation of a static honest worker should converge to
  // the same per-round utility the one-shot designer predicts.
  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  core::SimWorkerSpec w;
  w.psi = psi;
  w.beta = 1.0;
  w.omega = 0.0;
  w.accuracy_distance = 0.5;

  core::SimConfig config;
  config.rounds = 30;
  config.feedback_noise = 0.0;
  config.accuracy_noise = 0.0;
  config.seed = 1;
  const core::SimResult sim =
      core::StackelbergSimulator({w}, config).run();

  contract::SubproblemSpec spec;
  spec.psi = psi;
  spec.incentives = {1.0, 0.0};
  spec.weight = core::feedback_weight(config.requester, 0.5,
                                      /*e_mal=*/0.0, 0);
  spec.mu = config.requester.mu;
  spec.intervals = config.requester.intervals;
  const contract::DesignResult d = contract::design_contract(spec);

  // Steady state (estimates converged, payment lag settled): last round's
  // requester utility should be near the designed per-round utility.
  const double last = sim.rounds.back().requester_utility;
  EXPECT_NEAR(last, d.requester_utility,
              0.15 * std::abs(d.requester_utility) + 0.1);
}

}  // namespace
}  // namespace ccd
