// The scenario matrix as a regression gate: every designer policy runs
// against every adversarial preset (sybil swarms, adaptive colluders,
// strategic misreporters, Poisson churn, and all of them at once), and
// every cell must satisfy the robustness invariants — finite scores,
// detector recall on the planted adversaries above the floor, and the
// paper's dynamic designer beating the flat fixed-payment baseline under
// every adversary (the online-learner columns inherit the same bar except
// for explicitly waived cells — see MatrixResult::violations). The whole
// 36-cell matrix runs in well under a second, so it earns its place in the
// default test tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace ccd::scenario {
namespace {

TEST(ScenarioMatrixTest, PresetCatalogSatisfiesAllInvariants) {
  const std::vector<ScenarioSpec> specs = ScenarioSpec::matrix();
  ASSERT_EQ(specs.size(), 6u);
  ASSERT_EQ(all_policies().size(), 6u);

  const MatrixResult result = run_matrix(specs);
  ASSERT_EQ(result.cells.size(), 36u);
  const std::vector<std::string> violations = result.violations(0.5);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ScenarioMatrixTest, DynamicBeatsFixedUnderEveryAdversary) {
  const MatrixResult result = run_matrix(ScenarioSpec::matrix());
  for (const ScenarioSpec& spec : ScenarioSpec::matrix()) {
    double dynamic_utility = 0.0;
    double fixed_utility = 0.0;
    for (const ScenarioCell& cell : result.cells) {
      if (cell.scenario != spec.name) continue;
      if (cell.policy == Policy::kDynamic) {
        dynamic_utility = cell.score.requester_utility;
      } else if (cell.policy == Policy::kFixed) {
        fixed_utility = cell.score.requester_utility;
      }
    }
    EXPECT_GE(dynamic_utility, fixed_utility) << "scenario " << spec.name;
  }
}

TEST(ScenarioMatrixTest, ExclusionRemovesPlantedAdversariesFromTheTrace) {
  // Under kExclude the offline pipeline must actually drop workers — the
  // quarantine story of §V — and never more than the planted adversaries
  // when the detector's precision is perfect in that cell.
  const ScenarioSpec spec = ScenarioSpec::preset("sybil");
  const ScenarioCell cell = run_cell(spec, Policy::kExclude);
  EXPECT_GT(cell.score.excluded, 0u);
  if (cell.score.detector_precision == 1.0) {
    EXPECT_LE(cell.score.excluded, spec.planted_malicious());
  }
}

TEST(ScenarioMatrixTest, MatrixIsBitwiseReproducible) {
  // Two full matrix runs — including their JSON dumps — must agree
  // bitwise: the matrix is a pure function of the spec seeds.
  const std::vector<ScenarioSpec> specs = ScenarioSpec::matrix();
  const MatrixResult a = run_matrix(specs);
  const MatrixResult b = run_matrix(specs);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].scenario, b.cells[i].scenario);
    EXPECT_EQ(a.cells[i].policy, b.cells[i].policy);
    EXPECT_EQ(a.cells[i].score.requester_utility,
              b.cells[i].score.requester_utility);
    EXPECT_EQ(a.cells[i].score.total_compensation,
              b.cells[i].score.total_compensation);
    EXPECT_EQ(a.cells[i].score.detector_precision,
              b.cells[i].score.detector_precision);
    EXPECT_EQ(a.cells[i].score.detector_recall,
              b.cells[i].score.detector_recall);
    EXPECT_EQ(a.cells[i].score.community_recall,
              b.cells[i].score.community_recall);
    EXPECT_EQ(a.cells[i].score.quarantined, b.cells[i].score.quarantined);
    EXPECT_EQ(a.cells[i].score.excluded, b.cells[i].score.excluded);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ScenarioMatrixTest, ViolationsFlagImpossibleFloors) {
  // Sanity on the gate itself: an unreachable recall floor must trip it.
  const MatrixResult result =
      run_matrix({ScenarioSpec::preset("paper")});
  EXPECT_FALSE(result.violations(1.1).empty());
}

TEST(ScenarioMatrixTest, JsonDumpCarriesEveryCell) {
  const MatrixResult result = run_matrix({ScenarioSpec::preset("churn")});
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"bench\": \"scenarios\""), std::string::npos);
  std::size_t rows = 0;
  for (std::size_t pos = json.find("\"scenario\""); pos != std::string::npos;
       pos = json.find("\"scenario\"", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, result.cells.size());
  for (const char* policy :
       {"dynamic", "static", "fixed", "exclude", "bandit", "posted"}) {
    EXPECT_NE(json.find(std::string("\"policy\": \"") + policy + "\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ccd::scenario
