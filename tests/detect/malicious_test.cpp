#include "detect/malicious.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "data/generator.hpp"
#include "data/metrics.hpp"
#include "util/error.hpp"

namespace ccd::detect {
namespace {

class MaliciousDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = data::generate_trace(data::GeneratorParams::small());
    metrics_ = std::make_unique<data::WorkerMetrics>(trace_);
    experts_ = std::make_unique<ExpertPanel>(trace_, *metrics_);
    detector_ = std::make_unique<MaliciousDetector>(trace_, *experts_);
  }
  data::ReviewTrace trace_;
  std::unique_ptr<data::WorkerMetrics> metrics_;
  std::unique_ptr<ExpertPanel> experts_;
  std::unique_ptr<MaliciousDetector> detector_;
};

TEST_F(MaliciousDetectorTest, ProbabilitiesAreInUnitInterval) {
  for (const data::Worker& w : trace_.workers()) {
    const double p = detector_->probability(w.id);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(MaliciousDetectorTest, MaliciousScoreHigherThanHonest) {
  double honest = 0.0, malicious = 0.0;
  std::size_t hn = 0, mn = 0;
  for (const data::Worker& w : trace_.workers()) {
    if (w.true_class == data::WorkerClass::kHonest) {
      honest += detector_->probability(w.id);
      ++hn;
    } else {
      malicious += detector_->probability(w.id);
      ++mn;
    }
  }
  EXPECT_GT(malicious / static_cast<double>(mn),
            honest / static_cast<double>(hn) + 0.3);
}

TEST_F(MaliciousDetectorTest, ReasonableDetectionQuality) {
  const auto q = detector_->evaluate(trace_, 0.5);
  EXPECT_GT(q.recall(), 0.5);
  EXPECT_GT(q.precision(), 0.7);
  EXPECT_GT(q.f1(), 0.6);
}

TEST_F(MaliciousDetectorTest, FlaggedMatchesThreshold) {
  const auto flagged = detector_->flagged(0.5);
  for (const data::WorkerId id : flagged) {
    EXPECT_GE(detector_->probability(id), 0.5);
  }
  // Complement check on a few workers.
  std::size_t checked = 0;
  for (const data::Worker& w : trace_.workers()) {
    if (detector_->probability(w.id) < 0.5) {
      EXPECT_EQ(std::find(flagged.begin(), flagged.end(), w.id), flagged.end());
      if (++checked > 20) break;
    }
  }
}

TEST_F(MaliciousDetectorTest, ThresholdOneFlagsAlmostNobody) {
  EXPECT_LT(detector_->flagged(1.0).size(), trace_.workers().size() / 20);
}

TEST_F(MaliciousDetectorTest, QualityCountsPartitionWorkers) {
  const auto q = detector_->evaluate(trace_, 0.5);
  EXPECT_EQ(q.true_positives + q.false_positives + q.true_negatives +
                q.false_negatives,
            trace_.workers().size());
}

TEST(MaliciousDetectorQualityTest, DegenerateRatios) {
  MaliciousDetector::Quality q;
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
  EXPECT_DOUBLE_EQ(q.f1(), 0.0);
  q.true_positives = 3;
  q.false_positives = 1;
  q.false_negatives = 1;
  EXPECT_DOUBLE_EQ(q.precision(), 0.75);
  EXPECT_DOUBLE_EQ(q.recall(), 0.75);
  EXPECT_DOUBLE_EQ(q.f1(), 0.75);
}

TEST_F(MaliciousDetectorTest, OutOfRangeThrows) {
  EXPECT_THROW(detector_->probability(static_cast<data::WorkerId>(
                   trace_.workers().size())),
               Error);
}

}  // namespace
}  // namespace ccd::detect
