#include "detect/collusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::detect {
namespace {

TEST(CollusionTest, RecoversPlantedCommunitiesExactly) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const CollusionResult result = cluster_ground_truth_malicious(trace);

  // Expected: exactly the generator's planted communities.
  std::map<std::int32_t, std::set<data::WorkerId>> planted;
  for (const data::Worker& w : trace.workers()) {
    if (w.true_class == data::WorkerClass::kCollusiveMalicious) {
      planted[w.true_community].insert(w.id);
    }
  }
  ASSERT_EQ(result.communities.size(), planted.size());

  std::set<std::set<data::WorkerId>> found;
  for (const Community& c : result.communities) {
    found.insert({c.members.begin(), c.members.end()});
  }
  for (const auto& [id, members] : planted) {
    EXPECT_TRUE(found.count(members)) << "planted community " << id
                                      << " not recovered";
  }
}

TEST(CollusionTest, NcmWorkersAreSingletons) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const CollusionResult result = cluster_ground_truth_malicious(trace);
  std::set<data::WorkerId> ncm_truth;
  for (const data::Worker& w : trace.workers()) {
    if (w.true_class == data::WorkerClass::kNonCollusiveMalicious) {
      ncm_truth.insert(w.id);
    }
  }
  const std::set<data::WorkerId> ncm_found(result.non_collusive.begin(),
                                           result.non_collusive.end());
  EXPECT_EQ(ncm_found, ncm_truth);
}

TEST(CollusionTest, BackendsAgree) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const CollusionResult uf =
      cluster_ground_truth_malicious(trace, ClusterBackend::kUnionFind);
  const CollusionResult dfs =
      cluster_ground_truth_malicious(trace, ClusterBackend::kDfsGraph);
  ASSERT_EQ(uf.communities.size(), dfs.communities.size());
  for (std::size_t i = 0; i < uf.communities.size(); ++i) {
    std::set<data::WorkerId> a(uf.communities[i].members.begin(),
                               uf.communities[i].members.end());
    std::set<data::WorkerId> b(dfs.communities[i].members.begin(),
                               dfs.communities[i].members.end());
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(uf.non_collusive, dfs.non_collusive);
}

TEST(CollusionTest, CommunityOfMapsMembersOnly) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const CollusionResult result = cluster_ground_truth_malicious(trace);
  for (const data::Worker& w : trace.workers()) {
    const std::int32_t c = result.community_of[w.id];
    if (w.true_class == data::WorkerClass::kCollusiveMalicious) {
      ASSERT_GE(c, 0);
      const auto& members =
          result.communities[static_cast<std::size_t>(c)].members;
      EXPECT_NE(std::find(members.begin(), members.end(), w.id),
                members.end());
    } else {
      EXPECT_EQ(c, -1);
    }
  }
}

TEST(CollusionTest, CommunitiesSortedByDescendingSize) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::medium());
  const CollusionResult result = cluster_ground_truth_malicious(trace);
  for (std::size_t i = 1; i < result.communities.size(); ++i) {
    EXPECT_GE(result.communities[i - 1].members.size(),
              result.communities[i].members.size());
  }
}

TEST(CollusionTest, TargetsListCommunityProducts) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const CollusionResult result = cluster_ground_truth_malicious(trace);
  for (const Community& c : result.communities) {
    EXPECT_FALSE(c.targets.empty());
    // Every member reviews only community targets.
    const std::set<data::ProductId> targets(c.targets.begin(),
                                            c.targets.end());
    for (const data::WorkerId wid : c.members) {
      for (const data::ProductId pid : trace.products_of_worker(wid)) {
        EXPECT_TRUE(targets.count(pid));
      }
    }
  }
}

TEST(CollusionTest, EmptyMaliciousSetYieldsNothing) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const CollusionResult result = cluster_collusive_workers(trace, {});
  EXPECT_TRUE(result.communities.empty());
  EXPECT_TRUE(result.non_collusive.empty());
}

// Property: planted communities survive mid-campaign churn. Churn
// truncates review histories to each worker's activity window, but every
// community member keeps its anchor-product review (review 0), so the
// paper's same-target rule must still recover every planted community —
// across seeds, not just one lucky draw.
TEST(CollusionTest, RecoversPlantedCommunitiesUnderChurn) {
  for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{17},
                                   std::uint64_t{2026}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    data::GeneratorParams params =
        data::GeneratorParams::from_population(60, 15, {3, 4}, seed);
    params.campaign_rounds = 20;
    params.churn_arrival_mean = 5.0;
    params.churn_lifetime_mean = 8.0;
    const data::ReviewTrace trace = data::generate_trace(params);

    std::map<std::int32_t, std::set<data::WorkerId>> planted;
    for (const data::Worker& w : trace.workers()) {
      if (w.true_class == data::WorkerClass::kCollusiveMalicious) {
        planted[w.true_community].insert(w.id);
      }
    }
    ASSERT_EQ(planted.size(), 2u);

    const CollusionResult result = cluster_ground_truth_malicious(trace);
    std::set<std::set<data::WorkerId>> found;
    for (const Community& c : result.communities) {
      found.insert({c.members.begin(), c.members.end()});
    }
    for (const auto& [id, members] : planted) {
      EXPECT_TRUE(found.count(members))
          << "community " << id << " lost under churn";
    }
  }
}

TEST(CensusTest, MatchesKnownDistribution) {
  CollusionResult r;
  r.communities.resize(4);
  r.communities[0].members = {0, 1};
  r.communities[1].members = {2, 3};
  r.communities[2].members = {4, 5, 6};
  r.communities[3].members = {7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const CommunityCensus c = census(r);
  EXPECT_EQ(c.communities, 4u);
  EXPECT_EQ(c.workers, 17u);
  EXPECT_DOUBLE_EQ(c.pct_size2, 50.0);
  EXPECT_DOUBLE_EQ(c.pct_size3, 25.0);
  EXPECT_DOUBLE_EQ(c.pct_size10plus, 25.0);
  EXPECT_DOUBLE_EQ(c.pct_size4, 0.0);
}

TEST(CensusTest, EmptyResult) {
  const CommunityCensus c = census(CollusionResult{});
  EXPECT_EQ(c.communities, 0u);
  EXPECT_EQ(c.workers, 0u);
}

TEST(CensusTest, ToStringContainsCounts) {
  CollusionResult r;
  r.communities.resize(1);
  r.communities[0].members = {0, 1};
  const std::string s = census(r).to_string();
  EXPECT_NE(s.find("1 communities"), std::string::npos);
  EXPECT_NE(s.find("2 workers"), std::string::npos);
}

TEST(CollusionTest, Amazon2015CensusMatchesTableII) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::amazon2015());
  const CollusionResult result = cluster_ground_truth_malicious(trace);
  const CommunityCensus c = census(result);
  EXPECT_EQ(c.communities, 47u);
  EXPECT_EQ(c.workers, 212u);
  // Paper Table II: 51.2 / 22.0 / 7.3 / 2.4 / 9.8 / >=10: 4.9.
  EXPECT_NEAR(c.pct_size2, 51.2, 1.5);
  EXPECT_NEAR(c.pct_size3, 22.0, 1.5);
  EXPECT_NEAR(c.pct_size4, 7.3, 1.5);
  EXPECT_NEAR(c.pct_size5, 2.4, 1.5);
  EXPECT_NEAR(c.pct_size6, 9.8, 1.5);
  EXPECT_NEAR(c.pct_size10plus, 4.9, 1.5);
}

}  // namespace
}  // namespace ccd::detect
