#include "detect/expert.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/generator.hpp"
#include "data/metrics.hpp"
#include "util/error.hpp"

namespace ccd::detect {
namespace {

class ExpertPanelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = data::generate_trace(data::GeneratorParams::small());
    metrics_ = std::make_unique<data::WorkerMetrics>(trace_);
  }
  data::ReviewTrace trace_;
  std::unique_ptr<data::WorkerMetrics> metrics_;
};

TEST_F(ExpertPanelTest, FindsSomeExperts) {
  const ExpertPanel panel(trace_, *metrics_);
  EXPECT_GT(panel.experts().size(), 0u);
  EXPECT_LT(panel.experts().size(), trace_.workers().size() / 2);
}

TEST_F(ExpertPanelTest, BadgedWorkersQualifyWhenTrusted) {
  const ExpertPanel panel(trace_, *metrics_);
  for (const data::Worker& w : trace_.workers()) {
    if (w.expert_badge) {
      EXPECT_TRUE(panel.is_expert(w.id));
    }
  }
}

TEST_F(ExpertPanelTest, BadgesIgnoredWhenUntrusted) {
  ExpertConfig config;
  config.trust_badges = false;
  config.min_reviews = 1000000;      // impossible
  config.max_score_deviation = 0.0;  // impossible
  const ExpertPanel panel(trace_, *metrics_, config);
  EXPECT_TRUE(panel.experts().empty());
}

TEST_F(ExpertPanelTest, ExpertsAreMostlyHonest) {
  const ExpertPanel panel(trace_, *metrics_);
  std::size_t malicious = 0;
  for (const data::WorkerId id : panel.experts()) {
    if (trace_.worker(id).true_class != data::WorkerClass::kHonest) {
      ++malicious;
    }
  }
  // Malicious workers are inaccurate by construction; the accuracy gate
  // should keep nearly all of them out.
  EXPECT_LE(malicious, panel.experts().size() / 10);
}

TEST_F(ExpertPanelTest, ConsensusTracksTrueQuality) {
  const ExpertPanel panel(trace_, *metrics_);
  double err = 0.0;
  std::size_t n = 0;
  for (const data::Product& p : trace_.products()) {
    const auto score = panel.expert_score(p.id);
    if (!score) continue;
    err += std::abs(*score - p.true_quality);
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(err / static_cast<double>(n), 0.75);
}

TEST_F(ExpertPanelTest, ConsensusFallsBackToGlobalMean) {
  const ExpertPanel panel(trace_, *metrics_);
  // Find an uncovered product (there will be many).
  for (const data::Product& p : trace_.products()) {
    if (!panel.expert_score(p.id)) {
      const double c = panel.consensus(p.id);
      EXPECT_GE(c, 1.0);
      EXPECT_LE(c, 5.0);
      return;
    }
  }
  FAIL() << "expected at least one uncovered product";
}

TEST_F(ExpertPanelTest, CoverageIsAFraction) {
  const ExpertPanel panel(trace_, *metrics_);
  EXPECT_GE(panel.coverage(), 0.0);
  EXPECT_LE(panel.coverage(), 1.0);
}

TEST_F(ExpertPanelTest, OutOfRangeQueriesThrow) {
  const ExpertPanel panel(trace_, *metrics_);
  EXPECT_THROW(panel.is_expert(static_cast<data::WorkerId>(
                   trace_.workers().size())),
               Error);
  EXPECT_THROW(panel.expert_score(static_cast<data::ProductId>(
                   trace_.products().size())),
               Error);
}

}  // namespace
}  // namespace ccd::detect
