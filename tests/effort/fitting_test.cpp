#include "effort/fitting.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::effort {
namespace {

std::vector<data::EffortSample> samples_from_curve(double r2, double r1,
                                                   double r0, double noise,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<data::EffortSample> out;
  const double peak = -r1 / (2.0 * r2);
  for (std::size_t i = 0; i < n; ++i) {
    data::EffortSample s;
    s.effort = rng.uniform(0.05, 0.9 * peak);
    s.feedback = r2 * s.effort * s.effort + r1 * s.effort + r0 +
                 rng.normal(0.0, noise);
    out.push_back(s);
  }
  return out;
}

TEST(FitEffortFunctionTest, RecoversCleanQuadratic) {
  const auto samples = samples_from_curve(-1.0, 8.0, 2.0, 0.0, 200, 3);
  const EffortFit fit = fit_effort_function(samples);
  EXPECT_FALSE(fit.projected);
  EXPECT_NEAR(fit.model.r2(), -1.0, 1e-6);
  EXPECT_NEAR(fit.model.r1(), 8.0, 1e-6);
  EXPECT_NEAR(fit.model.r0(), 2.0, 1e-6);
  EXPECT_NEAR(fit.norm_of_residuals, 0.0, 1e-6);
  EXPECT_EQ(fit.sample_count, 200u);
}

TEST(FitEffortFunctionTest, NoisyFitStaysClose) {
  const auto samples = samples_from_curve(-1.5, 10.0, 1.0, 0.5, 2000, 5);
  const EffortFit fit = fit_effort_function(samples);
  EXPECT_FALSE(fit.projected);
  EXPECT_NEAR(fit.model.r2(), -1.5, 0.2);
  EXPECT_NEAR(fit.model.r1(), 10.0, 0.5);
}

TEST(FitEffortFunctionTest, ProjectsConvexData) {
  // Convex (increasing returns) data: unconstrained fit has r2 > 0 and must
  // be projected onto the concave feasible set.
  util::Rng rng(7);
  std::vector<data::EffortSample> samples;
  for (int i = 0; i < 200; ++i) {
    data::EffortSample s;
    s.effort = rng.uniform(0.1, 3.0);
    s.feedback = 1.0 + 0.5 * s.effort + 2.0 * s.effort * s.effort;
    samples.push_back(s);
  }
  const EffortFit fit = fit_effort_function(samples);
  EXPECT_TRUE(fit.projected);
  EXPECT_LT(fit.model.r2(), 0.0);
  EXPECT_GT(fit.model.r1(), 0.0);
}

TEST(FitEffortFunctionTest, ProjectsDecreasingData) {
  // Decreasing feedback in effort: r1 would come out negative.
  util::Rng rng(9);
  std::vector<data::EffortSample> samples;
  for (int i = 0; i < 200; ++i) {
    data::EffortSample s;
    s.effort = rng.uniform(0.1, 3.0);
    s.feedback = 10.0 - 2.0 * s.effort + rng.normal(0.0, 0.1);
    samples.push_back(s);
  }
  const EffortFit fit = fit_effort_function(samples);
  EXPECT_TRUE(fit.projected);
  EXPECT_GT(fit.model.r1(), 0.0);
  EXPECT_LT(fit.model.r2(), 0.0);
}

TEST(FitEffortFunctionTest, RequiresThreeSamples) {
  std::vector<data::EffortSample> two(2);
  two[0].effort = 1.0;
  two[1].effort = 2.0;
  EXPECT_THROW(fit_effort_function(two), Error);
}

TEST(NorComparisonTest, ReturnsOneValuePerDegree) {
  const auto samples = samples_from_curve(-1.0, 8.0, 2.0, 0.5, 300, 11);
  const std::vector<double> nors = nor_comparison(samples);
  ASSERT_EQ(nors.size(), 6u);  // degrees 1..6
  // Quadratic and above fit a quadratic law about equally well; degree 1
  // should be visibly worse (Table III's observed pattern, inverted here
  // because our synthetic truth is strongly curved).
  for (std::size_t i = 2; i < nors.size(); ++i) {
    EXPECT_LE(nors[i], nors[1] + 1e-9);
  }
}

TEST(NorComparisonTest, PaperObservationNearEqualNoRs) {
  // With weak curvature relative to noise, all degrees produce nearly equal
  // NoR — the observation that led the paper to pick quadratic (Table III).
  util::Rng rng(13);
  std::vector<data::EffortSample> samples;
  for (int i = 0; i < 4000; ++i) {
    data::EffortSample s;
    s.effort = rng.uniform(0.05, 3.0);
    s.feedback = -0.05 * s.effort * s.effort + 6.0 * s.effort + 3.0 +
                 rng.normal(0.0, 2.0);
    samples.push_back(s);
  }
  const std::vector<double> nors = nor_comparison(samples);
  const double spread = (nors.front() - nors.back()) / nors.back();
  EXPECT_LT(spread, 0.05);
}

TEST(FitAllClassesTest, FitsThreeClassesFromTrace) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::medium());
  const data::WorkerMetrics metrics(trace);
  const ClassFits fits = fit_all_classes(metrics);
  // All fits feasible by construction.
  EXPECT_LT(fits.honest.model.r2(), 0.0);
  EXPECT_LT(fits.ncm.model.r2(), 0.0);
  EXPECT_LT(fits.cm.model.r2(), 0.0);
  EXPECT_GT(fits.honest.model.r1(), 0.0);
  // CM curve sits above the honest curve at moderate effort (their feedback
  // is inflated by intra-community upvotes) — Fig. 7's second claim.
  const double y = 1.0;
  EXPECT_GT(fits.cm.model(y), fits.honest.model(y));
}

TEST(CommunitySumSamplesTest, SumsPerRound) {
  data::ReviewTrace t;
  t.add_worker({0, data::WorkerClass::kCollusiveMalicious, 0, 1.0, false});
  t.add_worker({1, data::WorkerClass::kCollusiveMalicious, 0, 1.0, false});
  t.add_product({0, 3.0});
  // Worker 0: rounds 0, 1. Worker 1: round 0 only.
  t.add_review({0, 0, 0, 0, 5.0, 100, 4, true});
  t.add_review({1, 0, 0, 1, 5.0, 100, 6, true});
  t.add_review({2, 1, 0, 0, 5.0, 100, 10, true});
  t.build_indexes();
  const data::WorkerMetrics m(t);
  const auto sums = community_sum_samples(t, m, {0, 1});
  ASSERT_EQ(sums.size(), 2u);  // rounds 0 and 1
  EXPECT_DOUBLE_EQ(sums[0].feedback, 14.0);  // 4 + 10
  EXPECT_DOUBLE_EQ(sums[1].feedback, 6.0);
  EXPECT_GT(sums[0].effort, sums[1].effort);  // two members vs one
}

TEST(FitAllClassesTest, FallsBackWhenClassesAreEmpty) {
  // A trace with no malicious workers at all: NCM/CM fits must fall back to
  // the honest curve instead of crashing the pipeline.
  data::GeneratorParams params = data::GeneratorParams::small();
  params.n_ncm = 0;
  params.community_sizes.clear();
  const data::ReviewTrace trace = data::generate_trace(params);
  const data::WorkerMetrics metrics(trace);
  const ClassFits fits = fit_all_classes(metrics);
  EXPECT_FALSE(fits.honest.fallback);
  EXPECT_TRUE(fits.ncm.fallback);
  EXPECT_TRUE(fits.cm.fallback);
  EXPECT_DOUBLE_EQ(fits.ncm.model.r1(), fits.honest.model.r1());
  EXPECT_DOUBLE_EQ(fits.cm.model.r2(), fits.honest.model.r2());
}

TEST(FitEffortFunctionTest, ConvexDataProjectsToValidConcaveModel) {
  // Nearly linear feedback with a whisper of convexity: the raw quadratic
  // fit lands at r2 > 0, violating the r2 < 0 concavity requirement, so the
  // projection branch must pin curvature and still return a usable model.
  std::vector<data::EffortSample> samples;
  for (std::size_t i = 1; i <= 12; ++i) {
    data::EffortSample s;
    s.effort = 0.5 * static_cast<double>(i);
    s.feedback = 2.0 * s.effort + 1.0 + 0.01 * s.effort * s.effort;
    samples.push_back(s);
  }
  const EffortFit fit = fit_effort_function(samples);
  EXPECT_TRUE(fit.projected);
  EXPECT_LT(fit.model.r2(), 0.0);
  EXPECT_GT(fit.model.r1(), 0.0);
  // The projected model still tracks the data direction: increasing on the
  // sampled range.
  EXPECT_GT(fit.model(samples.back().effort), fit.model(samples.front().effort));
}

TEST(FitEffortFunctionTest, ConvexCurvatureProjectsToo) {
  // Strictly convex data (r2 > 0): same projection branch, harder input.
  std::vector<data::EffortSample> samples;
  for (std::size_t i = 1; i <= 12; ++i) {
    data::EffortSample s;
    s.effort = 0.4 * static_cast<double>(i);
    s.feedback = 0.8 * s.effort * s.effort + 0.3 * s.effort + 0.5;
    samples.push_back(s);
  }
  const EffortFit fit = fit_effort_function(samples);
  EXPECT_TRUE(fit.projected);
  EXPECT_LT(fit.model.r2(), 0.0);
  EXPECT_GT(fit.model.r1(), 0.0);
}

TEST(CommunitySumSamplesTest, RejectsEmptyCommunity) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const data::WorkerMetrics metrics(trace);
  EXPECT_THROW(community_sum_samples(trace, metrics, {}), Error);
}

}  // namespace
}  // namespace ccd::effort
