#include "effort/effort_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::effort {
namespace {

TEST(QuadraticEffortTest, EvaluatesPolynomial) {
  const QuadraticEffort psi(-1.0, 8.0, 2.0);
  EXPECT_DOUBLE_EQ(psi(0.0), 2.0);
  EXPECT_DOUBLE_EQ(psi(1.0), 9.0);
  EXPECT_DOUBLE_EQ(psi(2.0), 14.0);
}

TEST(QuadraticEffortTest, AccessorsMatchConstruction) {
  const QuadraticEffort psi(-0.5, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(psi.r2(), -0.5);
  EXPECT_DOUBLE_EQ(psi.r1(), 3.0);
  EXPECT_DOUBLE_EQ(psi.r0(), 1.0);
}

TEST(QuadraticEffortTest, DerivativeAndInverseAgree) {
  const QuadraticEffort psi(-1.5, 6.0, 0.0);
  for (const double y : {0.0, 0.5, 1.0, 1.9}) {
    const double slope = psi.derivative(y);
    EXPECT_NEAR(psi.derivative_inverse(slope), y, 1e-12);
  }
}

TEST(QuadraticEffortTest, PeakIsWhereDerivativeVanishes) {
  const QuadraticEffort psi(-1.0, 8.0, 2.0);
  EXPECT_DOUBLE_EQ(psi.y_peak(), 4.0);
  EXPECT_NEAR(psi.derivative(psi.y_peak()), 0.0, 1e-12);
}

TEST(QuadraticEffortTest, IncreasingOnDomainChecks) {
  const QuadraticEffort psi(-1.0, 8.0, 2.0);
  EXPECT_TRUE(psi.increasing_on(3.9));
  EXPECT_FALSE(psi.increasing_on(4.0));
  EXPECT_FALSE(psi.increasing_on(5.0));
}

TEST(QuadraticEffortTest, UsableDomainStaysIncreasing) {
  const QuadraticEffort psi(-2.0, 10.0, 1.0);
  const double domain = psi.usable_domain();
  EXPECT_LT(domain, psi.y_peak());
  EXPECT_TRUE(psi.increasing_on(domain));
  EXPECT_DOUBLE_EQ(psi.usable_domain(0.5), 0.5 * psi.y_peak());
}

TEST(QuadraticEffortTest, MonotoneOnUsableDomain) {
  const QuadraticEffort psi(-1.0, 8.0, 2.0);
  double prev = psi(0.0);
  for (int i = 1; i <= 100; ++i) {
    const double y = psi.usable_domain() * i / 100.0;
    const double v = psi(y);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(QuadraticEffortTest, RejectsNonConcave) {
  EXPECT_THROW(QuadraticEffort(0.0, 1.0, 0.0), ContractError);
  EXPECT_THROW(QuadraticEffort(1.0, 1.0, 0.0), ContractError);
}

TEST(QuadraticEffortTest, RejectsNonIncreasingAtZero) {
  EXPECT_THROW(QuadraticEffort(-1.0, 0.0, 0.0), ContractError);
  EXPECT_THROW(QuadraticEffort(-1.0, -2.0, 0.0), ContractError);
}

TEST(QuadraticEffortTest, AsPolynomialMatches) {
  const QuadraticEffort psi(-1.0, 8.0, 2.0);
  const auto p = psi.as_polynomial();
  for (const double y : {0.0, 0.7, 2.2}) {
    EXPECT_DOUBLE_EQ(p(y), psi(y));
  }
}

TEST(QuadraticEffortTest, ToStringShowsCoefficients) {
  const QuadraticEffort psi(-1.25, 8.5, 2.0);
  const std::string s = psi.to_string(2);
  EXPECT_NE(s.find("-1.25"), std::string::npos);
  EXPECT_NE(s.find("8.50"), std::string::npos);
}

}  // namespace
}  // namespace ccd::effort
