// Cancellation / deadline tests for run_pipeline: a cancelled run must
// return a well-formed partial result — the quarantined/excluded/solved
// partition still covers the fleet, HealthReport records the reason, and a
// token that never fires leaves the result bitwise-identical to a run
// without one.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "data/generator.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"

namespace ccd::core {
namespace {

data::ReviewTrace small_trace() {
  return data::generate_trace(data::GeneratorParams::small());
}

/// Partition + finiteness invariants every completed run must satisfy.
void expect_invariants(const PipelineResult& r, std::size_t n) {
  ASSERT_EQ(r.workers.size(), n);
  std::size_t quarantined = 0;
  std::size_t excluded = 0;
  for (const WorkerOutcome& w : r.workers) {
    EXPECT_TRUE(std::isfinite(w.requester_utility)) << "worker " << w.id;
    EXPECT_TRUE(std::isfinite(w.compensation)) << "worker " << w.id;
    EXPECT_FALSE(w.quarantined && w.excluded) << "worker " << w.id;
    if (w.quarantined) ++quarantined;
    if (w.excluded) ++excluded;
  }
  EXPECT_EQ(r.health.quarantined_workers, quarantined);
  EXPECT_EQ(r.excluded_workers, excluded);
  EXPECT_LE(quarantined + excluded, n);
}

TEST(PipelineCancelTest, PreCancelledTokenYieldsWellFormedPartialResult) {
  const data::ReviewTrace trace = small_trace();
  util::CancellationToken token;
  token.request_cancel();

  PipelineConfig config;
  config.cancel = &token;
  const PipelineResult r = run_pipeline(trace, config);

  EXPECT_TRUE(r.health.cancelled);
  EXPECT_EQ(r.health.cancel_reason, util::CancelReason::kCancelled);
  // Every stage was skipped; all workers end up quarantined, none solved.
  expect_invariants(r, trace.workers().size());
  EXPECT_EQ(r.health.quarantined_workers + r.excluded_workers,
            trace.workers().size());
  // Exactly one degradation event describes the cancellation.
  ASSERT_EQ(r.health.events.size(), 1u);
  EXPECT_EQ(r.health.events[0].code, ErrorCode::kDeadline);
  EXPECT_NE(r.health.to_string().find("cancelled"), std::string::npos);
}

TEST(PipelineCancelTest, ExpiredDeadlineIsRecordedAsDeadline) {
  const data::ReviewTrace trace = small_trace();
  util::CancellationToken token;
  token.set_deadline(util::Deadline::after(0.0));

  PipelineConfig config;
  config.cancel = &token;
  const PipelineResult r = run_pipeline(trace, config);

  EXPECT_TRUE(r.health.cancelled);
  EXPECT_EQ(r.health.cancel_reason, util::CancelReason::kDeadline);
  expect_invariants(r, trace.workers().size());
}

TEST(PipelineCancelTest, GenerousDeadlineMatchesUncancelledRunExactly) {
  const data::ReviewTrace trace = small_trace();
  const PipelineResult plain = run_pipeline(trace, PipelineConfig{});

  util::CancellationToken token;
  token.set_deadline(util::Deadline::after(3600.0));
  PipelineConfig config;
  config.cancel = &token;
  const PipelineResult timed = run_pipeline(trace, config);

  EXPECT_FALSE(timed.health.cancelled);
  EXPECT_TRUE(timed.health.events.empty());
  ASSERT_EQ(timed.workers.size(), plain.workers.size());
  for (std::size_t i = 0; i < plain.workers.size(); ++i) {
    EXPECT_EQ(timed.workers[i].requester_utility,
              plain.workers[i].requester_utility);
    EXPECT_EQ(timed.workers[i].compensation, plain.workers[i].compensation);
    EXPECT_EQ(timed.workers[i].effort, plain.workers[i].effort);
    EXPECT_EQ(timed.workers[i].excluded, plain.workers[i].excluded);
  }
  EXPECT_EQ(timed.total_requester_utility, plain.total_requester_utility);
  EXPECT_EQ(timed.total_compensation, plain.total_compensation);
}

TEST(PipelineCancelTest, NullTokenMeansRunToCompletion) {
  const data::ReviewTrace trace = small_trace();
  PipelineConfig config;  // config.cancel stays null
  const PipelineResult r = run_pipeline(trace, config);
  EXPECT_FALSE(r.health.cancelled);
  EXPECT_EQ(r.health.unsolved_subproblems, 0u);
}

TEST(PipelineCancelTest, CancelledLenientRunKeepsPartitionInvariant) {
  // Cancellation composes with the lenient policies: the partition must
  // still cover the fleet when boundaries and cancellation both fire.
  const data::ReviewTrace trace = small_trace();
  util::CancellationToken token;
  token.request_cancel();

  PipelineConfig config;
  config.cancel = &token;
  config.faults = FaultPolicy::fallback();
  const PipelineResult r = run_pipeline(trace, config);
  EXPECT_TRUE(r.health.cancelled);
  expect_invariants(r, trace.workers().size());
}

TEST(PipelineCancelTest, HealthReportMentionsCancellationReason) {
  HealthReport health;
  health.cancelled = true;
  health.cancel_reason = util::CancelReason::kDeadline;
  health.unsolved_subproblems = 3;
  const std::string s = health.to_string();
  EXPECT_NE(s.find("deadline"), std::string::npos);
  EXPECT_NE(s.find("unsolved_subproblems=3"), std::string::npos);
}

}  // namespace
}  // namespace ccd::core
