#include "core/equilibrium.hpp"

#include <gtest/gtest.h>

#include "contract/candidate.hpp"
#include "contract/designer.hpp"
#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::core {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);

TEST(AuditIncentivesTest, DesignedContractPassesAudit) {
  for (const double omega : {0.0, 0.3}) {
    contract::SubproblemSpec spec;
    spec.psi = kPsi;
    spec.incentives = {1.0, omega};
    spec.weight = 1.0;
    spec.mu = 1.0;
    spec.intervals = 20;
    const contract::DesignResult d = contract::design_contract(spec);
    const IncentiveAudit audit =
        audit_incentives(d.contract, kPsi, spec.incentives, d.response);
    EXPECT_TRUE(audit.incentive_compatible) << "omega=" << omega;
    EXPECT_TRUE(audit.individually_rational) << "omega=" << omega;
    EXPECT_LT(audit.worker_regret, 1e-6);
    EXPECT_GE(audit.participation_margin, -1e-9);
  }
}

TEST(AuditIncentivesTest, DetectsFabricatedResponse) {
  // Claim the worker would exert peak effort under a near-flat contract:
  // the audit must flag a large profitable deviation (doing nothing).
  const contract::Contract flat =
      contract::Contract::on_effort_grid(kPsi, 1.0, {1.0, 1.0, 1.01});
  const contract::WorkerIncentives honest{1.0, 0.0};
  contract::BestResponse fabricated;
  fabricated.effort = 2.0;
  fabricated.feedback = kPsi(2.0);
  fabricated.compensation = flat.pay(fabricated.feedback);
  fabricated.utility = fabricated.compensation - 2.0;  // = ~ -0.99
  const IncentiveAudit audit =
      audit_incentives(flat, kPsi, honest, fabricated);
  EXPECT_FALSE(audit.incentive_compatible);
  EXPECT_GT(audit.worker_regret, 1.5);
  EXPECT_NEAR(audit.best_alternative_effort, 0.0, 1e-6);
}

TEST(AuditIncentivesTest, DetectsIrViolation) {
  // A claimed response below the opt-out utility is individually
  // irrational; construct one by over-reporting effort at zero pay.
  const contract::Contract zero;
  const contract::WorkerIncentives honest{1.0, 0.0};
  contract::BestResponse claimed;
  claimed.effort = 1.0;
  claimed.feedback = kPsi(1.0);
  claimed.compensation = 0.0;
  claimed.utility = -1.0;  // pays 0, costs beta * 1
  const IncentiveAudit audit = audit_incentives(zero, kPsi, honest, claimed);
  EXPECT_FALSE(audit.individually_rational);
  EXPECT_LT(audit.participation_margin, 0.0);
}

TEST(AuditIncentivesTest, MisalignedOmegaIsCaught) {
  // Design for an honest worker, audit as if the worker were strongly
  // malicious: the self-motivated deviation past the target interval should
  // show up as regret.
  contract::SubproblemSpec spec;
  spec.psi = kPsi;
  spec.incentives = {1.0, 0.0};
  spec.weight = 1.0;
  spec.mu = 1.0;
  spec.intervals = 10;
  const contract::DesignResult d = contract::design_contract(spec);
  const contract::WorkerIncentives actually_malicious{1.0, 1.5};
  const IncentiveAudit audit = audit_incentives(
      d.contract, kPsi, actually_malicious, d.response);
  EXPECT_GT(audit.worker_regret, 0.01);
}

TEST(AuditIncentivesTest, Validation) {
  const contract::WorkerIncentives honest{1.0, 0.0};
  EXPECT_THROW(
      audit_incentives(contract::Contract(), kPsi, honest, {}, 1),
      Error);
  EXPECT_THROW(
      audit_incentives(contract::Contract(), kPsi, honest, {}, 100, -1.0),
      Error);
}

TEST(AuditPipelineTest, FullPipelineIsClean) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  const PipelineResult result = run_pipeline(trace, PipelineConfig{});
  const FleetAudit fleet = audit_pipeline(result);
  EXPECT_TRUE(fleet.clean())
      << "IC violations: " << fleet.ic_violations
      << ", IR violations: " << fleet.ir_violations
      << ", max regret: " << fleet.max_worker_regret;
  EXPECT_GT(fleet.audited, 0u);
  EXPECT_EQ(fleet.subproblems, result.subproblems.size());
  EXPECT_GE(fleet.min_participation_margin, -1e-9);
}

TEST(AuditPipelineTest, ExclusionStrategyAuditsOnlyDesigned) {
  const data::ReviewTrace trace =
      data::generate_trace(data::GeneratorParams::small());
  PipelineConfig config;
  config.strategy = PricingStrategy::kExcludeMalicious;
  const PipelineResult result = run_pipeline(trace, config);
  const FleetAudit fleet = audit_pipeline(result);
  EXPECT_TRUE(fleet.clean());
  EXPECT_LT(fleet.audited, fleet.subproblems);  // excluded ones skipped
}

}  // namespace
}  // namespace ccd::core
