// Masking-adversary behaviour (the §VII "more sophisticated malicious
// workers" extension) and its interaction with the adaptive contract.
#include <gtest/gtest.h>

#include "core/stackelberg.hpp"

namespace ccd::core {
namespace {

SimWorkerSpec masker(std::size_t period, double duty) {
  SimWorkerSpec w;
  w.name = "masker";
  w.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  w.accuracy_distance = 0.3;       // the mask persona
  w.switched_omega = 0.6;          // the attack persona
  w.switched_accuracy_distance = 2.0;
  w.masking_period = period;
  w.masking_duty = duty;
  return w;
}

TEST(BehaviourAtTest, PureSwitchSemantics) {
  SimWorkerSpec w;
  w.omega = 0.0;
  w.accuracy_distance = 0.3;
  w.switch_round = 5;
  w.switched_omega = 0.7;
  w.switched_accuracy_distance = 1.5;
  EXPECT_FALSE(w.behaviour_at(4).malicious_now);
  EXPECT_DOUBLE_EQ(w.behaviour_at(4).omega, 0.0);
  EXPECT_TRUE(w.behaviour_at(5).malicious_now);
  EXPECT_DOUBLE_EQ(w.behaviour_at(5).omega, 0.7);
  EXPECT_DOUBLE_EQ(w.behaviour_at(100).accuracy_distance, 1.5);
}

TEST(BehaviourAtTest, NoSwitchNoMaskIsAlwaysBase) {
  SimWorkerSpec w;
  w.omega = 0.2;
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_FALSE(w.behaviour_at(t).malicious_now);
    EXPECT_DOUBLE_EQ(w.behaviour_at(t).omega, 0.2);
  }
}

TEST(BehaviourAtTest, MaskingAlternatesPersonas) {
  const SimWorkerSpec w = masker(/*period=*/4, /*duty=*/0.5);
  // duty 0.5 of period 4: rounds 0,1 masked; 2,3 attack; repeat.
  EXPECT_FALSE(w.behaviour_at(0).malicious_now);
  EXPECT_FALSE(w.behaviour_at(1).malicious_now);
  EXPECT_TRUE(w.behaviour_at(2).malicious_now);
  EXPECT_TRUE(w.behaviour_at(3).malicious_now);
  EXPECT_FALSE(w.behaviour_at(4).malicious_now);
  EXPECT_TRUE(w.behaviour_at(6).malicious_now);
  EXPECT_DOUBLE_EQ(w.behaviour_at(2).omega, 0.6);
  EXPECT_DOUBLE_EQ(w.behaviour_at(2).accuracy_distance, 2.0);
  EXPECT_DOUBLE_EQ(w.behaviour_at(0).accuracy_distance, 0.3);
}

TEST(BehaviourAtTest, FullDutyNeverAttacks) {
  const SimWorkerSpec w = masker(5, 1.0);
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_FALSE(w.behaviour_at(t).malicious_now) << "t=" << t;
  }
}

TEST(BehaviourAtTest, ZeroDutyAlwaysAttacks) {
  const SimWorkerSpec w = masker(5, 0.0);
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_TRUE(w.behaviour_at(t).malicious_now) << "t=" << t;
  }
}

TEST(BehaviourAtTest, MaskingStartsAtSwitchRound) {
  SimWorkerSpec w = masker(4, 0.5);
  w.switch_round = 10;
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_FALSE(w.behaviour_at(t).malicious_now) << "t=" << t;
  }
  EXPECT_FALSE(w.behaviour_at(10).malicious_now);  // phase 0: masked
  EXPECT_TRUE(w.behaviour_at(12).malicious_now);   // phase 2: attack
}

TEST(MaskingSimulationTest, EstimateSitsBetweenHonestAndMalicious) {
  // A masking adversary should look "greyer" to the EMA estimator than a
  // full-time malicious worker, but clearly worse than an honest one.
  SimWorkerSpec honest;
  honest.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  honest.accuracy_distance = 0.3;

  SimWorkerSpec full_time = masker(4, 0.0);
  SimWorkerSpec half_time = masker(4, 0.5);

  SimConfig config;
  config.rounds = 60;
  config.seed = 21;
  config.feedback_noise = 0.2;
  config.accuracy_noise = 0.05;

  const SimResult r =
      StackelbergSimulator({honest, full_time, half_time}, config).run();
  const double honest_est =
      r.worker_history[0].back().estimated_malicious;
  const double full_est = r.worker_history[1].back().estimated_malicious;
  // Average the masker's estimate over the last two cycles to smooth phase.
  double half_est = 0.0;
  for (std::size_t t = 52; t < 60; ++t) {
    half_est += r.worker_history[2][t].estimated_malicious;
  }
  half_est /= 8.0;

  EXPECT_LT(honest_est, 0.25);
  EXPECT_GT(full_est, 0.8);
  EXPECT_GT(half_est, honest_est + 0.15);
  EXPECT_LT(half_est, full_est);
}

TEST(MaskingSimulationTest, MaskingEarnsMoreThanFullTimeAttack) {
  // The point of masking from the adversary's side: it keeps some of the
  // pay an overt attacker loses.
  SimWorkerSpec full_time = masker(4, 0.0);
  SimWorkerSpec half_time = masker(4, 0.5);
  SimConfig config;
  config.rounds = 60;
  config.seed = 33;
  const SimResult r =
      StackelbergSimulator({full_time, half_time}, config).run();
  double full_pay = 0.0;
  double half_pay = 0.0;
  for (std::size_t t = 20; t < 60; ++t) {
    full_pay += r.worker_history[0][t].compensation;
    half_pay += r.worker_history[1][t].compensation;
  }
  EXPECT_GT(half_pay, full_pay);
}

TEST(MaskingSimulationTest, SlowEmaSmoothsOutMasking) {
  // A slower estimator (smaller alpha) is the defence: it integrates over
  // mask cycles, keeping the masker's estimate high through its honest
  // phases.
  SimWorkerSpec half_time = masker(4, 0.5);
  SimConfig fast;
  fast.rounds = 80;
  fast.seed = 5;
  fast.ema_alpha = 0.8;
  SimConfig slow = fast;
  slow.ema_alpha = 0.1;

  const SimResult fast_r =
      StackelbergSimulator({half_time}, fast).run();
  const SimResult slow_r =
      StackelbergSimulator({half_time}, slow).run();
  // Minimum estimate over the steady-state masked rounds: the fast tracker
  // forgets between attacks, the slow one doesn't.
  double fast_min = 1.0;
  double slow_min = 1.0;
  for (std::size_t t = 40; t < 80; ++t) {
    fast_min = std::min(fast_min,
                        fast_r.worker_history[0][t].estimated_malicious);
    slow_min = std::min(slow_min,
                        slow_r.worker_history[0][t].estimated_malicious);
  }
  EXPECT_GT(slow_min, fast_min);
}

}  // namespace
}  // namespace ccd::core
