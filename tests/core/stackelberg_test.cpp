#include "core/stackelberg.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::core {
namespace {

SimWorkerSpec honest_worker() {
  SimWorkerSpec w;
  w.name = "honest";
  w.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  w.beta = 1.0;
  w.omega = 0.0;
  w.accuracy_distance = 0.3;
  return w;
}

SimWorkerSpec malicious_worker() {
  SimWorkerSpec w;
  w.name = "malicious";
  w.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  w.beta = 1.0;
  w.omega = 0.6;
  w.accuracy_distance = 1.6;
  return w;
}

SimConfig fast_config() {
  SimConfig c;
  c.rounds = 20;
  c.feedback_noise = 0.2;
  c.accuracy_noise = 0.05;
  c.seed = 5;
  return c;
}

TEST(SimConfigTest, Validation) {
  SimConfig c = fast_config();
  c.rounds = 0;
  EXPECT_THROW(c.validate(), Error);
  c = fast_config();
  c.ema_alpha = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c = fast_config();
  c.redesign_every = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(StackelbergTest, RequiresWorkers) {
  EXPECT_THROW(StackelbergSimulator({}, fast_config()), Error);
}

TEST(StackelbergTest, ProducesOneRecordPerRound) {
  StackelbergSimulator sim({honest_worker()}, fast_config());
  const SimResult r = sim.run();
  EXPECT_EQ(r.rounds.size(), 20u);
  ASSERT_EQ(r.worker_history.size(), 1u);
  EXPECT_EQ(r.worker_history[0].size(), 20u);
}

TEST(StackelbergTest, DeterministicForSeed) {
  const SimResult a =
      StackelbergSimulator({honest_worker(), malicious_worker()},
                           fast_config())
          .run();
  const SimResult b =
      StackelbergSimulator({honest_worker(), malicious_worker()},
                           fast_config())
          .run();
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t t = 0; t < a.rounds.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.rounds[t].requester_utility,
                     b.rounds[t].requester_utility);
  }
}

TEST(StackelbergTest, HonestWorkerExertsEffortOnceContractArrives) {
  StackelbergSimulator sim({honest_worker()}, fast_config());
  const SimResult r = sim.run();
  // After the first redesign the honest worker should be working.
  double total_effort = 0.0;
  for (const WorkerRound& wr : r.worker_history[0]) {
    total_effort += wr.effort;
  }
  EXPECT_GT(total_effort, 0.0);
}

TEST(StackelbergTest, CumulativeUtilityMatchesSum) {
  StackelbergSimulator sim({honest_worker(), malicious_worker()},
                           fast_config());
  const SimResult r = sim.run();
  double total = 0.0;
  for (const RoundRecord& rec : r.rounds) total += rec.requester_utility;
  EXPECT_NEAR(r.cumulative_requester_utility, total, 1e-9);
}

TEST(StackelbergTest, EstimatesConvergeToTruth) {
  // Requester's maliciousness estimate should separate the two workers.
  SimConfig c = fast_config();
  c.rounds = 40;
  StackelbergSimulator sim({honest_worker(), malicious_worker()}, c);
  const SimResult r = sim.run();
  const double honest_est = r.worker_history[0].back().estimated_malicious;
  const double malicious_est = r.worker_history[1].back().estimated_malicious;
  EXPECT_LT(honest_est, 0.3);
  EXPECT_GT(malicious_est, 0.7);
}

TEST(StackelbergTest, BehaviourSwitchIsDetected) {
  // A worker that turns malicious mid-run: the estimate should climb after
  // the switch round.
  SimWorkerSpec turncoat = honest_worker();
  turncoat.switch_round = 20;
  turncoat.switched_omega = 0.6;
  turncoat.switched_accuracy_distance = 1.8;

  SimConfig c = fast_config();
  c.rounds = 50;
  StackelbergSimulator sim({turncoat}, c);
  const SimResult r = sim.run();
  const double before = r.worker_history[0][18].estimated_malicious;
  const double after = r.worker_history[0][49].estimated_malicious;
  EXPECT_LT(before, 0.3);
  EXPECT_GT(after, 0.6);
}

TEST(StackelbergTest, AdaptationCutsTurncoatPay) {
  // The dynamic contract should reduce the turncoat's compensation after
  // the behaviour switch is detected (the paper's adaptivity claim).
  SimWorkerSpec turncoat = honest_worker();
  turncoat.switch_round = 25;
  turncoat.switched_omega = 0.4;
  turncoat.switched_accuracy_distance = 2.2;

  SimConfig c = fast_config();
  c.rounds = 60;
  StackelbergSimulator sim({turncoat}, c);
  const SimResult r = sim.run();
  // Compare steady-state pay before the switch with pay well after it.
  double before = 0.0;
  for (std::size_t t = 15; t < 25; ++t) {
    before += r.worker_history[0][t].compensation;
  }
  double after = 0.0;
  for (std::size_t t = 50; t < 60; ++t) {
    after += r.worker_history[0][t].compensation;
  }
  EXPECT_LT(after, 0.5 * before);
}

TEST(StackelbergTest, RedesignEverySupportsSlowSchedules) {
  SimConfig c = fast_config();
  c.redesign_every = 5;
  StackelbergSimulator sim({honest_worker()}, c);
  EXPECT_NO_THROW(sim.run());
}

TEST(StackelbergTest, PaymentLagsFeedbackByOneRound) {
  // c^t = f(q^{t-1}): with zero noise the compensation at round t must equal
  // the contract evaluated at round t-1's feedback.
  SimConfig c = fast_config();
  c.feedback_noise = 0.0;
  c.accuracy_noise = 0.0;
  c.redesign_every = 1000;  // design once, then hold fixed
  c.rounds = 5;
  StackelbergSimulator sim({honest_worker()}, c);
  const SimResult r = sim.run();
  const auto& h = r.worker_history[0];
  // With a fixed contract and no noise the worker repeats the same effort;
  // from round 1 on compensation is constant and positive.
  for (std::size_t t = 2; t < h.size(); ++t) {
    EXPECT_NEAR(h[t].compensation, h[1].compensation, 1e-9);
  }
}

}  // namespace
}  // namespace ccd::core
