#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ccd::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new data::ReviewTrace(
        data::generate_trace(data::GeneratorParams::small()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static data::ReviewTrace* trace_;
};

data::ReviewTrace* PipelineTest::trace_ = nullptr;

TEST_F(PipelineTest, ProducesOutcomeForEveryWorker) {
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  ASSERT_EQ(r.workers.size(), trace_->workers().size());
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    EXPECT_EQ(r.workers[i].id, i);
    EXPECT_EQ(r.workers[i].true_class, trace_->worker(i).true_class);
  }
}

TEST_F(PipelineTest, SubproblemsPartitionWorkers) {
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  std::vector<int> covered(trace_->workers().size(), 0);
  for (const SubproblemOutcome& sub : r.subproblems) {
    for (const data::WorkerId id : sub.workers) ++covered[id];
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_EQ(covered[i], 1) << "worker " << i;
  }
}

TEST_F(PipelineTest, TotalsMatchSubproblemSums) {
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  double utility = 0.0;
  double compensation = 0.0;
  for (const SubproblemOutcome& sub : r.subproblems) {
    utility += sub.design.requester_utility;
    compensation += sub.design.response.compensation;
  }
  EXPECT_NEAR(r.total_requester_utility, utility, 1e-6);
  EXPECT_NEAR(r.total_compensation, compensation, 1e-6);
}

TEST_F(PipelineTest, PerWorkerSharesSumToSubproblemTotals) {
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  for (const SubproblemOutcome& sub : r.subproblems) {
    double share_sum = 0.0;
    for (const data::WorkerId id : sub.workers) {
      share_sum += r.workers[id].compensation;
    }
    EXPECT_NEAR(share_sum, sub.design.response.compensation, 1e-9);
  }
}

TEST_F(PipelineTest, CommunitiesShareOneContract) {
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  for (std::size_t c = 0; c < r.collusion.communities.size(); ++c) {
    const auto& members = r.collusion.communities[c].members;
    const std::size_t sub = r.workers[members.front()].subproblem;
    for (const data::WorkerId id : members) {
      EXPECT_EQ(r.workers[id].subproblem, sub);
    }
    EXPECT_EQ(r.subproblems[sub].workers.size(), members.size());
  }
}

TEST_F(PipelineTest, DetectedClassesAreConsistentWithCollusion) {
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  for (const WorkerOutcome& w : r.workers) {
    if (w.detected_class == DetectedClass::kCollusiveMalicious) {
      EXPECT_GE(r.collusion.community_of[w.id], 0);
      EXPECT_GE(w.partners, 1u);
    } else {
      EXPECT_EQ(r.collusion.community_of[w.id], -1);
      EXPECT_EQ(w.partners, 0u);
    }
  }
}

TEST_F(PipelineTest, HonestWorkersEarnMoreThanMalicious) {
  // Fig. 8(b)'s ordering on means: honest above both malicious classes.
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  const auto mean_comp = [&](data::WorkerClass cls) {
    const auto v = r.compensations_of_class(cls);
    double total = 0.0;
    for (const double x : v) total += x;
    return v.empty() ? 0.0 : total / static_cast<double>(v.size());
  };
  const double honest = mean_comp(data::WorkerClass::kHonest);
  EXPECT_GT(honest, mean_comp(data::WorkerClass::kNonCollusiveMalicious));
  EXPECT_GT(honest, mean_comp(data::WorkerClass::kCollusiveMalicious));
}

TEST_F(PipelineTest, DynamicBeatsExclusionBaseline) {
  // Fig. 8(c): the dynamic contract extracts extra value from usable
  // malicious workers that blanket exclusion throws away.
  PipelineConfig dynamic;
  PipelineConfig exclusion;
  exclusion.strategy = PricingStrategy::kExcludeMalicious;
  const double ours = run_pipeline(*trace_, dynamic).total_requester_utility;
  const double theirs =
      run_pipeline(*trace_, exclusion).total_requester_utility;
  EXPECT_GT(ours, theirs);
}

TEST_F(PipelineTest, ExclusionZeroesSuspectedMalicious) {
  PipelineConfig config;
  config.strategy = PricingStrategy::kExcludeMalicious;
  const PipelineResult r = run_pipeline(*trace_, config);
  for (const WorkerOutcome& w : r.workers) {
    if (w.detected_class != DetectedClass::kHonest) {
      EXPECT_TRUE(w.excluded);
      EXPECT_DOUBLE_EQ(w.compensation, 0.0);
      EXPECT_DOUBLE_EQ(w.requester_utility, 0.0);
    }
  }
  EXPECT_GT(r.excluded_workers, 0u);
}

TEST_F(PipelineTest, FixedPaymentStrategyRuns) {
  PipelineConfig config;
  config.strategy = PricingStrategy::kFixedPayment;
  config.fixed_payment = 2.0;
  config.fixed_threshold_effort = 1.0;
  const PipelineResult r = run_pipeline(*trace_, config);
  // Accepting workers earn exactly the fixed payment (individuals).
  for (const SubproblemOutcome& sub : r.subproblems) {
    if (sub.workers.size() == 1 && sub.design.response.compensation > 0.0) {
      EXPECT_DOUBLE_EQ(sub.design.response.compensation, 2.0);
    }
  }
}

TEST_F(PipelineTest, FixedPaymentUnderperformsDynamic) {
  PipelineConfig dynamic;
  PipelineConfig fixed;
  fixed.strategy = PricingStrategy::kFixedPayment;
  fixed.fixed_payment = 2.0;
  fixed.fixed_threshold_effort = 1.0;
  EXPECT_GT(run_pipeline(*trace_, dynamic).total_requester_utility,
            run_pipeline(*trace_, fixed).total_requester_utility);
}

TEST_F(PipelineTest, GroundTruthLabelsImproveClustering) {
  PipelineConfig config;
  config.use_ground_truth_labels = true;
  const PipelineResult r = run_pipeline(*trace_, config);
  // With ground-truth labels the clustering must recover the generator's
  // planted communities exactly.
  EXPECT_EQ(r.collusion.communities.size(),
            data::GeneratorParams::small().community_sizes.size());
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  const PipelineResult a = run_pipeline(*trace_, PipelineConfig{});
  const PipelineResult b = run_pipeline(*trace_, PipelineConfig{});
  EXPECT_DOUBLE_EQ(a.total_requester_utility, b.total_requester_utility);
  EXPECT_DOUBLE_EQ(a.total_compensation, b.total_compensation);
}

TEST_F(PipelineTest, SingleThreadMatchesParallel) {
  PipelineConfig serial;
  serial.threads = 1;
  PipelineConfig parallel;
  parallel.threads = 4;
  const PipelineResult a = run_pipeline(*trace_, serial);
  const PipelineResult b = run_pipeline(*trace_, parallel);
  EXPECT_DOUBLE_EQ(a.total_requester_utility, b.total_requester_utility);
  EXPECT_DOUBLE_EQ(a.total_compensation, b.total_compensation);
}

TEST_F(PipelineTest, LowerMuRaisesCompensation) {
  // Fig. 8(b) observation (1): a generous requester (lower mu) pays more.
  PipelineConfig generous;
  generous.requester.mu = 0.8;
  PipelineConfig stingy;
  stingy.requester.mu = 1.0;
  EXPECT_GE(run_pipeline(*trace_, generous).total_compensation,
            run_pipeline(*trace_, stingy).total_compensation - 1e-9);
}

TEST_F(PipelineTest, DesignCacheCollapsesSweeps) {
  // Workers of one detected class share a weight-independent spec, so the
  // solve stage needs far fewer k-sweeps than subproblems.
  const PipelineResult r = run_pipeline(*trace_, PipelineConfig{});
  EXPECT_EQ(r.design_cache.lookups,
            r.design_cache.hits + r.design_cache.misses);
  EXPECT_LE(r.design_cache.lookups, r.subproblems.size());
  EXPECT_GT(r.design_cache.hits, 0u);
  EXPECT_LT(r.design_cache.misses, r.design_cache.lookups);
  EXPECT_GT(r.design_cache.sweep_steps_avoided, 0u);
}

TEST_F(PipelineTest, RunsNestedInsideAPoolTask) {
  // The solve stage reuses the shared pool; invoking the pipeline from
  // inside a shared-pool task must complete (reentrant parallel_for) and
  // produce identical results.
  auto future = util::shared_pool().submit(
      [] { return run_pipeline(*trace_, PipelineConfig{}); });
  const PipelineResult nested = future.get();
  const PipelineResult direct = run_pipeline(*trace_, PipelineConfig{});
  EXPECT_DOUBLE_EQ(nested.total_requester_utility,
                   direct.total_requester_utility);
  EXPECT_DOUBLE_EQ(nested.total_compensation, direct.total_compensation);
}

TEST(PipelineValidationTest, RequiresIndexes) {
  data::ReviewTrace t;
  t.add_worker({0, data::WorkerClass::kHonest, data::kNoCommunity, 1.0, false});
  EXPECT_THROW(run_pipeline(t, PipelineConfig{}), Error);
}

}  // namespace
}  // namespace ccd::core
