// Fault-policy and chaos tests for the pipeline's recovery boundaries.
//
// The chaos tests arm the deterministic fault injector at 1-20% across all
// injection sites and assert exact invariants: lenient runs never throw,
// no non-finite value reaches an outcome, totals equal the sum of
// per-worker values, the quarantined/excluded/solved partition covers the
// fleet exactly, and the health counters reconcile with per-worker flags.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "data/generator.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// RAII guard: every test leaves the process-wide injector disarmed.
struct InjectorGuard {
  ~InjectorGuard() { util::FaultInjector::instance().disable(); }
};

void arm_injector(double rate, std::uint64_t seed) {
  util::FaultInjectorConfig config;
  config.enabled = true;
  config.seed = seed;
  config.rate = rate;
  util::FaultInjector::instance().configure(config);
}

/// The invariants every completed run must satisfy, clean or degraded.
void expect_invariants(const PipelineResult& r, std::size_t n) {
  ASSERT_EQ(r.workers.size(), n);
  std::size_t quarantined = 0;
  std::size_t excluded = 0;
  std::size_t fallback = 0;
  double utility = 0.0;
  double compensation = 0.0;
  for (const WorkerOutcome& w : r.workers) {
    EXPECT_TRUE(std::isfinite(w.requester_utility)) << "worker " << w.id;
    EXPECT_TRUE(std::isfinite(w.compensation)) << "worker " << w.id;
    EXPECT_TRUE(std::isfinite(w.effort)) << "worker " << w.id;
    EXPECT_TRUE(std::isfinite(w.feedback)) << "worker " << w.id;
    EXPECT_TRUE(std::isfinite(w.weight)) << "worker " << w.id;
    // The partition is disjoint: a worker is quarantined (stage failure),
    // excluded (designer's choice), or solved — never two at once.
    EXPECT_FALSE(w.quarantined && w.excluded) << "worker " << w.id;
    if (w.quarantined) {
      ++quarantined;
      EXPECT_EQ(w.compensation, 0.0) << "worker " << w.id;
      EXPECT_EQ(w.requester_utility, 0.0) << "worker " << w.id;
    }
    if (w.excluded) ++excluded;
    if (w.fallback) ++fallback;
    utility += w.requester_utility;
    compensation += w.compensation;
  }
  // Counters reconcile exactly with per-worker flags.
  EXPECT_EQ(r.health.quarantined_workers, quarantined);
  EXPECT_EQ(r.health.fallback_workers, fallback);
  EXPECT_EQ(r.excluded_workers, excluded);
  // quarantined + excluded + solved == N by disjointness; spell it out.
  const std::size_t solved = n - quarantined - excluded;
  EXPECT_EQ(quarantined + excluded + solved, n);
  // Totals are the sum of the per-worker shares.
  EXPECT_TRUE(std::isfinite(r.total_requester_utility));
  EXPECT_TRUE(std::isfinite(r.total_compensation));
  const double tol = 1e-6 * (1.0 + std::abs(r.total_requester_utility));
  EXPECT_NEAR(r.total_requester_utility, utility, tol);
  EXPECT_NEAR(r.total_compensation, compensation,
              1e-6 * (1.0 + r.total_compensation));
}

void expect_identical(const PipelineResult& a, const PipelineResult& b) {
  ASSERT_EQ(a.workers.size(), b.workers.size());
  EXPECT_EQ(a.total_requester_utility, b.total_requester_utility);
  EXPECT_EQ(a.total_compensation, b.total_compensation);
  EXPECT_EQ(a.excluded_workers, b.excluded_workers);
  EXPECT_EQ(a.health.quarantined_workers, b.health.quarantined_workers);
  EXPECT_EQ(a.health.fallback_workers, b.health.fallback_workers);
  EXPECT_EQ(a.health.events.size(), b.health.events.size());
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    EXPECT_EQ(a.workers[i].compensation, b.workers[i].compensation)
        << "worker " << i;
    EXPECT_EQ(a.workers[i].requester_utility, b.workers[i].requester_utility)
        << "worker " << i;
    EXPECT_EQ(a.workers[i].quarantined, b.workers[i].quarantined)
        << "worker " << i;
    EXPECT_EQ(a.workers[i].excluded, b.workers[i].excluded) << "worker " << i;
  }
}

class PipelineFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new data::ReviewTrace(
        data::generate_trace(data::GeneratorParams::small()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static data::ReviewTrace* trace_;
};

data::ReviewTrace* PipelineFaultTest::trace_ = nullptr;

TEST_F(PipelineFaultTest, PoliciesAgreeBitwiseOnCleanTrace) {
  PipelineConfig config;
  config.faults = FaultPolicy::fail_fast();
  const PipelineResult strict = run_pipeline(*trace_, config);
  EXPECT_FALSE(strict.health.degraded());

  config.faults = FaultPolicy::quarantine();
  const PipelineResult lenient = run_pipeline(*trace_, config);
  EXPECT_FALSE(lenient.health.degraded());
  EXPECT_TRUE(lenient.health.sanitized);
  EXPECT_TRUE(lenient.health.sanitize.clean());
  expect_identical(strict, lenient);

  config.faults = FaultPolicy::fallback();
  const PipelineResult fb = run_pipeline(*trace_, config);
  EXPECT_FALSE(fb.health.degraded());
  expect_identical(strict, fb);
}

TEST_F(PipelineFaultTest, HealthReportOnCleanRunSaysClean) {
  PipelineConfig config;
  const PipelineResult r = run_pipeline(*trace_, config);
  EXPECT_FALSE(r.health.degraded());
  EXPECT_EQ(r.health.to_string(), "health: clean");
  expect_invariants(r, trace_->workers().size());
}

/// Copy of the shared trace with one review score corrupted to NaN (bypasses
/// validate(), as an in-memory producer bug would).
data::ReviewTrace corrupt_copy(const data::ReviewTrace& src,
                               data::ReviewId victim) {
  data::ReviewTrace out;
  for (const data::Worker& w : src.workers()) out.add_worker(w);
  for (const data::Product& p : src.products()) out.add_product(p);
  for (const data::Review& r : src.reviews()) {
    data::Review copy = r;
    if (copy.id == victim) copy.score = kNaN;
    out.add_review(copy);
  }
  out.build_indexes();
  return out;
}

TEST_F(PipelineFaultTest, FailFastThrowsOnNaNScoreWithContext) {
  const data::ReviewTrace corrupt = corrupt_copy(*trace_, 5);
  PipelineConfig config;  // default: all stages fail-fast
  try {
    run_pipeline(corrupt, config);
    FAIL() << "should have thrown";
  } catch (const DataError& e) {
    EXPECT_EQ(e.context().stage, "sanitize");
    EXPECT_EQ(e.context().worker,
              static_cast<std::int64_t>(corrupt.review(5).worker));
    EXPECT_NE(std::string(e.what()).find("non-finite score"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(PipelineFaultTest, QuarantinePolicyAbsorbsNaNScore) {
  const data::ReviewTrace corrupt = corrupt_copy(*trace_, 5);
  PipelineConfig config;
  config.faults = FaultPolicy::quarantine();
  const PipelineResult r = run_pipeline(corrupt, config);
  EXPECT_TRUE(r.health.sanitized);
  EXPECT_EQ(r.health.sanitize.non_finite_score, 1u);
  EXPECT_TRUE(r.health.degraded());
  expect_invariants(r, corrupt.workers().size());
}

// ---- Chaos: N = 1000 workers, faults injected at 1%-20% -------------------

data::GeneratorParams chaos_params() {
  data::GeneratorParams params;
  params.seed = 2026;
  params.n_honest = 940;
  params.n_ncm = 40;
  params.community_sizes = {2, 3, 4, 5, 6};  // 20 CM workers -> N = 1000
  params.n_products = 1500;
  return params;
}

class PipelineChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new data::ReviewTrace(data::generate_trace(chaos_params()));
    ASSERT_EQ(trace_->workers().size(), 1000u);
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static data::ReviewTrace* trace_;
};

data::ReviewTrace* PipelineChaosTest::trace_ = nullptr;

TEST_F(PipelineChaosTest, QuarantinePolicySurvivesFaultSweep) {
  InjectorGuard guard;
  PipelineConfig config;
  config.faults = FaultPolicy::quarantine();
  for (const double rate : {0.01, 0.05, 0.2}) {
    arm_injector(rate, /*seed=*/7);
    PipelineResult r;
    ASSERT_NO_THROW(r = run_pipeline(*trace_, config)) << "rate " << rate;
    expect_invariants(r, 1000);
    if (util::FaultInjector::instance().total_injected() > 0) {
      EXPECT_TRUE(r.health.degraded()) << "rate " << rate;
    }
    // Quarantine policy never reroutes to the baseline.
    EXPECT_EQ(r.health.fallback_workers, 0u);
  }
  // At 20% the injector must actually have been exercising the sites.
  EXPECT_GT(util::FaultInjector::instance().total_injected(), 0u);
}

TEST_F(PipelineChaosTest, FallbackPolicySurvivesFaultSweep) {
  InjectorGuard guard;
  PipelineConfig config;
  config.faults = FaultPolicy::fallback();
  for (const double rate : {0.01, 0.05, 0.2}) {
    arm_injector(rate, /*seed=*/11);
    PipelineResult r;
    ASSERT_NO_THROW(r = run_pipeline(*trace_, config)) << "rate " << rate;
    expect_invariants(r, 1000);
    if (r.health.degraded()) {
      // Every solve-stage failure was absorbed as a fallback (the baseline
      // itself has no injection site, so double faults cannot occur).
      for (const DegradationEvent& e : r.health.events) {
        if (e.stage == PipelineStage::kSolve) {
          EXPECT_EQ(e.action, StageMode::kFallback);
        }
      }
    }
  }
}

TEST_F(PipelineChaosTest, SameSeedSameFaultsSameResult) {
  InjectorGuard guard;
  PipelineConfig config;
  config.faults = FaultPolicy::quarantine();
  arm_injector(0.05, /*seed=*/13);
  const PipelineResult a = run_pipeline(*trace_, config);
  const std::size_t fired_a = util::FaultInjector::instance().total_injected();
  arm_injector(0.05, /*seed=*/13);  // reconfigure: counters reset
  const PipelineResult b = run_pipeline(*trace_, config);
  const std::size_t fired_b = util::FaultInjector::instance().total_injected();
  EXPECT_EQ(fired_a, fired_b);
  expect_identical(a, b);
}

TEST_F(PipelineChaosTest, RateZeroIsBitwiseIdenticalToDisabled) {
  InjectorGuard guard;
  PipelineConfig config;
  config.faults = FaultPolicy::quarantine();
  util::FaultInjector::instance().disable();
  const PipelineResult off = run_pipeline(*trace_, config);
  arm_injector(0.0, /*seed=*/99);
  const PipelineResult armed = run_pipeline(*trace_, config);
  EXPECT_EQ(util::FaultInjector::instance().total_injected(), 0u);
  EXPECT_FALSE(armed.health.degraded());
  expect_identical(off, armed);
}

}  // namespace
}  // namespace ccd::core
