#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/stackelberg.hpp"
#include "util/atomic_file.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::core {
namespace {

SimWorkerSpec worker(bool malicious, const std::string& name) {
  SimWorkerSpec w;
  w.name = name;
  w.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  w.omega = malicious ? 0.6 : 0.0;
  w.accuracy_distance = malicious ? 1.7 : 0.3;
  return w;
}

std::vector<SimWorkerSpec> fleet() {
  return {worker(false, "h0"), worker(false, "h1"), worker(true, "m0")};
}

SimConfig base_config(std::size_t rounds) {
  SimConfig c;
  c.rounds = rounds;
  c.feedback_noise = 0.2;
  c.accuracy_noise = 0.05;
  c.seed = 7;
  return c;
}

/// Bitwise equality of two simulation results — EXPECT_EQ on doubles is
/// exact, which is the resume contract.
void expect_bitwise_equal(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t t = 0; t < a.rounds.size(); ++t) {
    EXPECT_EQ(a.rounds[t].round, b.rounds[t].round);
    EXPECT_EQ(a.rounds[t].requester_utility, b.rounds[t].requester_utility);
    EXPECT_EQ(a.rounds[t].total_compensation, b.rounds[t].total_compensation);
    EXPECT_EQ(a.rounds[t].weighted_feedback, b.rounds[t].weighted_feedback);
  }
  ASSERT_EQ(a.worker_history.size(), b.worker_history.size());
  for (std::size_t w = 0; w < a.worker_history.size(); ++w) {
    ASSERT_EQ(a.worker_history[w].size(), b.worker_history[w].size());
    for (std::size_t t = 0; t < a.worker_history[w].size(); ++t) {
      const WorkerRound& x = a.worker_history[w][t];
      const WorkerRound& y = b.worker_history[w][t];
      EXPECT_EQ(x.effort, y.effort);
      EXPECT_EQ(x.feedback, y.feedback);
      EXPECT_EQ(x.compensation, y.compensation);
      EXPECT_EQ(x.worker_utility, y.worker_utility);
      EXPECT_EQ(x.estimated_malicious, y.estimated_malicious);
      EXPECT_EQ(x.weight, y.weight);
    }
  }
  EXPECT_EQ(a.cumulative_requester_utility, b.cumulative_requester_utility);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_checkpoint_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "sim.ckpt").string();
  }
  void TearDown() override {
    util::FaultInjector::instance().disable();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(CheckpointTest, SavedFileRoundTripsThroughLoad) {
  SimConfig config = base_config(8);
  config.checkpoint_every = 4;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();

  const SimCheckpoint loaded = load_checkpoint(path_);
  EXPECT_EQ(loaded.next_round, 8u);
  EXPECT_EQ(loaded.config.rounds, 8u);
  EXPECT_EQ(loaded.config.seed, 7u);
  ASSERT_EQ(loaded.workers.size(), 3u);
  EXPECT_EQ(loaded.workers[2].name, "m0");
  ASSERT_EQ(loaded.est_accuracy.size(), 3u);
  ASSERT_EQ(loaded.contracts.size(), 3u);
  EXPECT_EQ(loaded.history.rounds.size(), 8u);
}

// The headline chaos test: run K rounds with periodic checkpoints ("the
// process is killed" after the write), resume from disk with a larger
// round budget, and require the stitched result to be bitwise-identical
// to an uninterrupted run — at one thread and at four.
TEST_F(CheckpointTest, KillAndResumeIsBitwiseIdentical) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));

    SimConfig full = base_config(20);
    full.threads = threads;
    const SimResult uninterrupted =
        StackelbergSimulator(fleet(), full).run();

    // Phase 1: die after 8 rounds (checkpoint_every == rounds, so the last
    // thing the "killed" process did was persist its state).
    SimConfig partial = base_config(8);
    partial.threads = threads;
    partial.checkpoint_every = 8;
    partial.checkpoint_path = path_;
    StackelbergSimulator(fleet(), partial).run();

    // Phase 2: resume from disk and extend the budget to the full 20.
    SimCheckpoint checkpoint = load_checkpoint(path_);
    EXPECT_EQ(checkpoint.next_round, 8u);
    checkpoint.config.rounds = 20;
    const SimResult resumed = StackelbergSimulator(checkpoint).run();

    EXPECT_FALSE(resumed.cancelled);
    expect_bitwise_equal(uninterrupted, resumed);
  }
}

// Same chaos drill for the learning backends: their arm statistics are
// dynamic state (SCKP v3 policy_state), so a kill + resume must continue
// the exploration schedule bitwise — at one thread and at four.
TEST_F(CheckpointTest, LearnerBackendKillAndResumeIsBitwiseIdentical) {
  for (const policy::Kind kind :
       {policy::Kind::kZoomingBandit, policy::Kind::kPostedPrice}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(std::string(policy::to_string(kind)) +
                   " threads=" + std::to_string(threads));

      SimConfig full = base_config(20);
      full.policy.kind = kind;
      full.threads = threads;
      const SimResult uninterrupted =
          StackelbergSimulator(fleet(), full).run();

      SimConfig partial = base_config(8);
      partial.policy.kind = kind;
      partial.threads = threads;
      partial.checkpoint_every = 8;
      partial.checkpoint_path = path_;
      StackelbergSimulator(fleet(), partial).run();

      SimCheckpoint checkpoint = load_checkpoint(path_);
      EXPECT_EQ(checkpoint.next_round, 8u);
      EXPECT_EQ(checkpoint.config.policy.kind, kind);
      EXPECT_FALSE(checkpoint.policy_state.empty());
      checkpoint.config.rounds = 20;
      const SimResult resumed = StackelbergSimulator(checkpoint).run();

      EXPECT_FALSE(resumed.cancelled);
      expect_bitwise_equal(uninterrupted, resumed);
    }
  }
}

TEST_F(CheckpointTest, PolicyStateSurvivesEncodeDecode) {
  SimConfig config = base_config(10);
  config.policy.kind = policy::Kind::kZoomingBandit;
  config.policy.payment_cap = 9.5;
  config.checkpoint_every = 10;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();

  const SimCheckpoint a = load_checkpoint(path_);
  EXPECT_EQ(a.config.policy.kind, policy::Kind::kZoomingBandit);
  EXPECT_EQ(a.config.policy.payment_cap, 9.5);
  ASSERT_FALSE(a.policy_state.empty());

  const SimCheckpoint b = decode_checkpoint(encode_checkpoint(a));
  EXPECT_EQ(b.config.policy.kind, a.config.policy.kind);
  EXPECT_EQ(b.config.policy.payment_cap, a.config.policy.payment_cap);
  EXPECT_EQ(b.policy_state, a.policy_state);
}

TEST_F(CheckpointTest, V2PayloadRestoresWithDefaultBipBackend) {
  // A pre-policy (v2) checkpoint must still load: default BiP backend,
  // empty learner state, everything else intact.
  SimConfig config = base_config(6);
  config.checkpoint_every = 6;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();
  const SimCheckpoint a = load_checkpoint(path_);

  const std::string v2 = encode_checkpoint(a, 2);
  const SimCheckpoint b = decode_checkpoint(v2, 2);
  EXPECT_EQ(b.config.policy.kind, policy::Kind::kBip);
  EXPECT_TRUE(b.policy_state.empty());
  EXPECT_EQ(b.next_round, a.next_round);
  EXPECT_EQ(b.rng.words, a.rng.words);
  expect_bitwise_equal(a.history, b.history);

  // And resuming from it runs to completion like the v3 original.
  SimCheckpoint resumed_from_v2 = b;
  resumed_from_v2.config.rounds = 12;
  SimCheckpoint resumed_from_v3 = a;
  resumed_from_v3.config.rounds = 12;
  expect_bitwise_equal(StackelbergSimulator(resumed_from_v2).run(),
                       StackelbergSimulator(resumed_from_v3).run());
}

TEST_F(CheckpointTest, V2EncodingRefusesToDropLearnerState) {
  // Downgrading a learner checkpoint to v2 would silently lose the arm
  // statistics; the encoder must refuse.
  SimConfig config = base_config(4);
  config.policy.kind = policy::Kind::kPostedPrice;
  config.checkpoint_every = 4;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();
  const SimCheckpoint learner = load_checkpoint(path_);
  EXPECT_THROW(encode_checkpoint(learner, 2), Error);
}

TEST_F(CheckpointTest, ResumeAcrossThreadCountsIsBitwiseIdentical) {
  const SimResult uninterrupted =
      StackelbergSimulator(fleet(), base_config(16)).run();

  SimConfig partial = base_config(6);
  partial.threads = 1;
  partial.checkpoint_every = 6;
  partial.checkpoint_path = path_;
  StackelbergSimulator(fleet(), partial).run();

  SimCheckpoint checkpoint = load_checkpoint(path_);
  checkpoint.config.rounds = 16;
  checkpoint.config.threads = 4;  // resume on a different pool size
  const SimResult resumed = StackelbergSimulator(checkpoint).run();
  expect_bitwise_equal(uninterrupted, resumed);
}

TEST_F(CheckpointTest, CancelledRunWritesResumableCheckpoint) {
  SimConfig config = base_config(12);
  config.checkpoint_path = path_;  // final checkpoint on cancellation only

  util::CancellationToken token;
  token.set_deadline(util::Deadline::after(0.0));  // expires immediately
  const SimResult cancelled =
      StackelbergSimulator(fleet(), config).run(&token);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_EQ(cancelled.cancel_reason, util::CancelReason::kDeadline);
  EXPECT_TRUE(cancelled.rounds.empty());

  SimCheckpoint checkpoint = load_checkpoint(path_);
  const SimResult resumed = StackelbergSimulator(checkpoint).run();
  EXPECT_FALSE(resumed.cancelled);
  expect_bitwise_equal(StackelbergSimulator(fleet(), base_config(12)).run(),
                       resumed);
}

TEST_F(CheckpointTest, EncodeDecodeRoundTrips) {
  SimConfig config = base_config(5);
  config.checkpoint_every = 5;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();
  const SimCheckpoint a = load_checkpoint(path_);

  const SimCheckpoint b = decode_checkpoint(encode_checkpoint(a));
  EXPECT_EQ(b.next_round, a.next_round);
  EXPECT_EQ(b.rng.words, a.rng.words);
  EXPECT_EQ(b.est_accuracy, a.est_accuracy);
  EXPECT_EQ(b.est_malicious, a.est_malicious);
  EXPECT_EQ(b.last_feedback, a.last_feedback);
  expect_bitwise_equal(a.history, b.history);
}

TEST_F(CheckpointTest, CorruptedCheckpointIsCleanDataError) {
  SimConfig config = base_config(4);
  config.checkpoint_every = 4;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();

  // Flip one payload byte: the frame checksum must catch it.
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << bytes;

  util::RetryPolicy fast;
  fast.max_attempts = 1;
  try {
    load_checkpoint(path_, fast);
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kData);
  }
}

TEST_F(CheckpointTest, TruncatedCheckpointIsCleanDataError) {
  SimConfig config = base_config(4);
  config.checkpoint_every = 4;
  config.checkpoint_path = path_;
  StackelbergSimulator(fleet(), config).run();

  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  util::RetryPolicy fast;
  fast.max_attempts = 1;
  // Chop the file at several depths, including inside the header.
  for (const std::size_t keep : {bytes.size() - 7, bytes.size() / 2,
                                 std::size_t{28}, std::size_t{10}}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    std::ofstream(path_, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, keep);
    EXPECT_THROW(load_checkpoint(path_, fast), DataError);
  }
}

TEST_F(CheckpointTest, GarbagePayloadInsideValidFrameIsCleanDataError) {
  // A well-framed file whose payload is not a checkpoint must be rejected
  // by the payload decoder, not crash it.
  util::write_framed_file(path_, "SCKP", SimCheckpoint::kVersion,
                          "not a checkpoint");
  util::RetryPolicy fast;
  fast.max_attempts = 1;
  EXPECT_THROW(load_checkpoint(path_, fast), DataError);
}

TEST_F(CheckpointTest, MissingFileIsDataError) {
  util::RetryPolicy fast;
  fast.max_attempts = 1;
  fast.sleep = false;
  EXPECT_THROW(load_checkpoint((dir_ / "absent.ckpt").string(), fast),
               DataError);
}

TEST_F(CheckpointTest, InjectedWriteFaultsExhaustRetriesAndThrow) {
  SimConfig config = base_config(4);
  StackelbergSimulator(fleet(), config).run();  // state to snapshot

  util::FaultInjectorConfig chaos;
  chaos.enabled = true;
  chaos.seed = 1;
  chaos.site_rates["io.checkpoint_write"] = 1.0;  // every attempt fails
  util::FaultInjector::instance().configure(chaos);

  SimCheckpoint checkpoint;
  checkpoint.config = config;
  checkpoint.workers = fleet();
  checkpoint.next_round = 0;
  checkpoint.rng.words = {1, 2, 3, 4};
  checkpoint.est_accuracy.assign(3, 0.5);
  checkpoint.est_malicious.assign(3, 0.5);
  checkpoint.contracts.assign(3, contract::Contract{});
  checkpoint.last_feedback.assign(3, 0.0);

  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep = false;
  EXPECT_THROW(save_checkpoint(path_, checkpoint, policy), DataError);
  EXPECT_EQ(util::FaultInjector::instance().injected("io.checkpoint_write"),
            3u);
  EXPECT_FALSE(std::filesystem::exists(path_));  // nothing half-written
}

}  // namespace
}  // namespace ccd::core
