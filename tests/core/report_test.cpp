#include "core/report.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"

namespace ccd::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const data::ReviewTrace trace =
        data::generate_trace(data::GeneratorParams::small());
    result_ = new PipelineResult(run_pipeline(trace, PipelineConfig{}));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static PipelineResult* result_;
};

PipelineResult* ReportTest::result_ = nullptr;

TEST_F(ReportTest, CompensationRowsCoverThreeClasses) {
  const auto rows = compensation_by_class(*result_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].label, "honest");
  EXPECT_EQ(rows[1].label, "ncm");
  EXPECT_EQ(rows[2].label, "cm");
  EXPECT_EQ(rows[0].summary.count,
            data::GeneratorParams::small().n_honest);
}

TEST_F(ReportTest, EffortAndFeedbackRowsHaveCounts) {
  for (const auto& rows :
       {effort_by_class(*result_), feedback_by_class(*result_)}) {
    ASSERT_EQ(rows.size(), 3u);
    for (const auto& row : rows) {
      EXPECT_GT(row.summary.count, 0u);
    }
  }
}

TEST_F(ReportTest, RenderedTableContainsClassesAndHeader) {
  const std::string table =
      render_class_table(compensation_by_class(*result_), "comp");
  EXPECT_NE(table.find("honest"), std::string::npos);
  EXPECT_NE(table.find("ncm"), std::string::npos);
  EXPECT_NE(table.find("cm"), std::string::npos);
  EXPECT_NE(table.find("mean comp"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

TEST_F(ReportTest, DescribeMentionsKeyNumbers) {
  const std::string text = describe_pipeline_result(*result_);
  EXPECT_NE(text.find("requester utility"), std::string::npos);
  EXPECT_NE(text.find("subproblems"), std::string::npos);
  EXPECT_NE(text.find("precision"), std::string::npos);
}

}  // namespace
}  // namespace ccd::core
