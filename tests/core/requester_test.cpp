#include "core/requester.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::core {
namespace {

TEST(RequesterConfigTest, DefaultsValidate) {
  EXPECT_NO_THROW(RequesterConfig{}.validate());
}

TEST(RequesterConfigTest, CatchesBadFields) {
  RequesterConfig c;
  c.rho = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  c.mu = -1.0;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  c.beta = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  c.intervals = 0;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  c.accuracy_floor = 0.0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(FeedbackWeightTest, MatchesEq5) {
  RequesterConfig c;
  c.rho = 1.0;
  c.kappa = 0.1;
  c.gamma = 0.1;
  c.weight_cap = 100.0;
  // w = 1/0.5 - 0.1*0.4 - 0.1*3 = 2 - 0.04 - 0.3.
  EXPECT_NEAR(feedback_weight(c, 0.5, 0.4, 3), 1.66, 1e-12);
}

TEST(FeedbackWeightTest, FloorsAccuracyDistance) {
  RequesterConfig c;
  c.accuracy_floor = 0.25;
  c.weight_cap = 100.0;
  EXPECT_DOUBLE_EQ(feedback_weight(c, 0.0, 0.0, 0),
                   feedback_weight(c, 0.25, 0.0, 0));
}

TEST(FeedbackWeightTest, CapsWeight) {
  RequesterConfig c;
  c.weight_cap = 4.0;
  EXPECT_DOUBLE_EQ(feedback_weight(c, 0.25, 0.0, 0), 4.0);
}

TEST(FeedbackWeightTest, PenaltiesReduceWeight) {
  RequesterConfig c;
  const double base = feedback_weight(c, 1.0, 0.0, 0);
  EXPECT_LT(feedback_weight(c, 1.0, 1.0, 0), base);
  EXPECT_LT(feedback_weight(c, 1.0, 0.0, 5), base);
  EXPECT_LT(feedback_weight(c, 1.0, 1.0, 5),
            feedback_weight(c, 1.0, 1.0, 1));
}

TEST(FeedbackWeightTest, CanGoNegativeForBadWorkers) {
  RequesterConfig c;
  c.gamma = 0.2;
  // Very inaccurate with many partners: weight below zero => exclusion.
  EXPECT_LT(feedback_weight(c, 4.0, 1.0, 10), 0.0);
}

TEST(FeedbackWeightTest, ValidatesArguments) {
  const RequesterConfig c;
  EXPECT_THROW(feedback_weight(c, -1.0, 0.0, 0), Error);
  EXPECT_THROW(feedback_weight(c, 1.0, -0.1, 0), Error);
  EXPECT_THROW(feedback_weight(c, 1.0, 1.1, 0), Error);
}

}  // namespace
}  // namespace ccd::core
