#include "tasks/labeling.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::tasks {
namespace {

std::vector<LabelingTask> batch_of(std::size_t n, bool label = true,
                                   double difficulty = 1.0) {
  std::vector<LabelingTask> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].id = static_cast<TaskId>(i);
    out[i].true_label = label;
    out[i].difficulty = difficulty;
  }
  return out;
}

TEST(AccuracyModelTest, ChanceAtZeroEffortAndSaturation) {
  AccuracyModel m;
  m.cap = 0.9;
  m.rate = 1.0;
  EXPECT_DOUBLE_EQ(m.accuracy(0.0), 0.5);
  EXPECT_NEAR(m.accuracy(50.0), 0.9, 1e-9);
}

TEST(AccuracyModelTest, MonotoneInEffortAndEasiness) {
  AccuracyModel m;
  double prev = 0.0;
  for (const double y : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double acc = m.accuracy(y);
    EXPECT_GT(acc, prev - 1e-12);
    prev = acc;
  }
  EXPECT_GT(m.accuracy(1.0, 1.0), m.accuracy(1.0, 0.5));
}

TEST(AccuracyModelTest, Validation) {
  AccuracyModel m;
  m.cap = 0.5;
  EXPECT_THROW(m.validate(), Error);
  m = {};
  m.rate = 0.0;
  EXPECT_THROW(m.validate(), Error);
  m = {};
  EXPECT_THROW(m.accuracy(-1.0), Error);
  EXPECT_THROW(m.accuracy(1.0, 0.0), Error);
  EXPECT_THROW(m.accuracy(1.0, 1.5), Error);
}

TEST(LabelerTypeTest, Names) {
  EXPECT_STREQ(to_string(LabelerType::kDiligent), "diligent");
  EXPECT_STREQ(to_string(LabelerType::kAdversarial), "adversarial");
  EXPECT_STREQ(to_string(LabelerType::kSpammer), "spammer");
}

TEST(LabelBatchTest, DiligentAccuracyTracksEffort) {
  LabelerSpec spec;
  spec.accuracy.cap = 0.95;
  spec.accuracy.rate = 1.2;
  util::Rng rng(3);
  const auto batch = batch_of(4000);
  const BatchOutcome lazy = label_batch(spec, 0.0, batch, {}, rng);
  const BatchOutcome hard = label_batch(spec, 3.0, batch, {}, rng);
  EXPECT_NEAR(static_cast<double>(lazy.correct) / 4000.0, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(hard.correct) / 4000.0,
              spec.accuracy.accuracy(3.0), 0.03);
}

TEST(LabelBatchTest, AdversaryPushesTargetWithEffort) {
  LabelerSpec spec;
  spec.type = LabelerType::kAdversarial;
  spec.target_label = false;  // pushes "false" on all-true tasks
  util::Rng rng(7);
  const auto batch = batch_of(4000, /*label=*/true);
  const BatchOutcome out = label_batch(spec, 3.0, batch, {}, rng);
  // Mostly wrong on purpose: correctness well below chance.
  EXPECT_LT(static_cast<double>(out.correct) / 4000.0, 0.25);
  EXPECT_GT(static_cast<double>(out.target_hits) / 4000.0, 0.75);
}

TEST(LabelBatchTest, SpammerIgnoresEffort) {
  LabelerSpec spec;
  spec.type = LabelerType::kSpammer;
  util::Rng rng(9);
  const auto batch = batch_of(4000);
  const BatchOutcome out = label_batch(spec, 10.0, batch, {}, rng);
  EXPECT_NEAR(static_cast<double>(out.correct) / 4000.0, 0.5, 0.03);
}

TEST(LabelBatchTest, AgreementCountedAgainstPlurality) {
  LabelerSpec spec;
  util::Rng rng(11);
  const auto batch = batch_of(100);
  const std::vector<bool> plurality(100, true);
  const BatchOutcome out = label_batch(spec, 2.0, batch, plurality, rng);
  // On all-true tasks with an all-true plurality, agreement == correct.
  EXPECT_EQ(out.agreement, out.correct);
}

TEST(LabelBatchTest, PluralitySizeMismatchThrows) {
  LabelerSpec spec;
  util::Rng rng(13);
  const auto batch = batch_of(10);
  const std::vector<bool> wrong(5, true);
  EXPECT_THROW(label_batch(spec, 1.0, batch, wrong, rng), Error);
}

TEST(MajorityVoteTest, BasicAndTies) {
  const std::vector<std::vector<bool>> votes = {
      {true, false, true},
      {true, false, false},
      {false, true, true},
  };
  const std::vector<bool> out = majority_vote(votes);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_TRUE(out[2]);
  // Even panel with a tie.
  const std::vector<std::vector<bool>> even = {{true}, {false}};
  EXPECT_FALSE(majority_vote(even, false)[0]);
  EXPECT_TRUE(majority_vote(even, true)[0]);
}

TEST(MajorityVoteTest, Validation) {
  EXPECT_THROW(majority_vote({}), Error);
  EXPECT_THROW(majority_vote({{true}, {true, false}}), Error);
}

TEST(WeightedVoteTest, WeightsDominate) {
  const std::vector<std::vector<bool>> votes = {
      {true},
      {false},
      {false},
  };
  // One heavyweight truthful voter outvotes two lightweights.
  const std::vector<bool> out = weighted_vote(votes, {5.0, 1.0, 1.0});
  EXPECT_TRUE(out[0]);
}

TEST(WeightedVoteTest, ZeroWeightIgnored) {
  const std::vector<std::vector<bool>> votes = {{true}, {false}};
  EXPECT_TRUE(weighted_vote(votes, {1.0, 0.0})[0]);
  EXPECT_FALSE(weighted_vote(votes, {0.0, 1.0})[0]);
}

TEST(WeightedVoteTest, Validation) {
  EXPECT_THROW(weighted_vote({{true}}, {1.0, 2.0}), Error);
}

TEST(AggregateAccuracyTest, CountsMatches) {
  const auto batch = batch_of(4, true);
  EXPECT_DOUBLE_EQ(aggregate_accuracy({true, true, false, true}, batch),
                   0.75);
  EXPECT_THROW(aggregate_accuracy({true}, batch), Error);
}

TEST(LabelerSpecTest, Validation) {
  LabelerSpec spec;
  spec.beta = 0.0;
  EXPECT_THROW(spec.validate(), Error);
  spec = {};
  spec.omega = -1.0;
  EXPECT_THROW(spec.validate(), Error);
}

}  // namespace
}  // namespace ccd::tasks
