#include "tasks/campaign.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::tasks {
namespace {

std::vector<LabelerSpec> mixed_pool() {
  std::vector<LabelerSpec> pool;
  for (int i = 0; i < 8; ++i) {
    LabelerSpec s;
    s.name = "diligent" + std::to_string(i);
    s.accuracy.cap = 0.93;
    s.accuracy.rate = 1.1;
    pool.push_back(s);
  }
  for (int i = 0; i < 2; ++i) {
    LabelerSpec s;
    s.name = "adv" + std::to_string(i);
    s.type = LabelerType::kAdversarial;
    s.omega = 0.5;
    s.target_label = true;
    pool.push_back(s);
  }
  LabelerSpec spammer;
  spammer.name = "spam";
  spammer.type = LabelerType::kSpammer;
  pool.push_back(spammer);
  return pool;
}

class CampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new CampaignResult(run_campaign(mixed_pool(), CampaignConfig{}));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static CampaignResult* result_;
};

CampaignResult* CampaignTest::result_ = nullptr;

TEST_F(CampaignTest, OneOutcomePerLabeler) {
  EXPECT_EQ(result_->labelers.size(), mixed_pool().size());
}

TEST_F(CampaignTest, ContractBeatsFlatPayOnQuality) {
  EXPECT_GT(result_->accuracy_majority,
            result_->baseline_accuracy_majority + 0.03);
}

TEST_F(CampaignTest, WeightedVoteBeatsMajority) {
  EXPECT_GE(result_->accuracy_weighted, result_->accuracy_majority - 1e-9);
}

TEST_F(CampaignTest, ContractBeatsFlatPayOnUtility) {
  EXPECT_GT(result_->requester_utility,
            result_->baseline_requester_utility);
}

TEST_F(CampaignTest, AdversariesAreSuspectedAndDiligentAreNot) {
  for (const LabelerOutcome& out : result_->labelers) {
    if (out.spec.type == LabelerType::kAdversarial) {
      EXPECT_TRUE(out.suspected_adversarial) << out.spec.name;
    }
    if (out.spec.type == LabelerType::kDiligent) {
      EXPECT_FALSE(out.suspected_adversarial) << out.spec.name;
    }
  }
}

TEST_F(CampaignTest, DiligentWorkersEarnMost) {
  double diligent_pay = 0.0;
  std::size_t diligent_n = 0;
  double other_pay = 0.0;
  std::size_t other_n = 0;
  for (const LabelerOutcome& out : result_->labelers) {
    if (out.spec.type == LabelerType::kDiligent) {
      diligent_pay += out.mean_pay;
      ++diligent_n;
    } else {
      other_pay += out.mean_pay;
      ++other_n;
    }
  }
  EXPECT_GT(diligent_pay / static_cast<double>(diligent_n),
            2.0 * other_pay / static_cast<double>(other_n));
}

TEST_F(CampaignTest, DiligentCorrectnessAboveChance) {
  for (const LabelerOutcome& out : result_->labelers) {
    if (out.spec.type == LabelerType::kDiligent) {
      EXPECT_GT(out.mean_correct_rate, 0.65) << out.spec.name;
    }
    if (out.spec.type == LabelerType::kSpammer) {
      EXPECT_NEAR(out.mean_correct_rate, 0.5, 0.1) << out.spec.name;
    }
  }
}

TEST_F(CampaignTest, WeightsRewardAccuracy) {
  double best_diligent = 0.0;
  double best_other = 0.0;
  for (const LabelerOutcome& out : result_->labelers) {
    if (out.spec.type == LabelerType::kDiligent) {
      best_diligent = std::max(best_diligent, out.weight);
    } else {
      best_other = std::max(best_other, out.weight);
    }
  }
  EXPECT_GT(best_diligent, best_other);
}

TEST_F(CampaignTest, FittedCurvesAreFeasible) {
  for (const LabelerOutcome& out : result_->labelers) {
    EXPECT_LT(out.fit.model.r2(), 0.0);
    EXPECT_GT(out.fit.model.r1(), 0.0);
  }
}

TEST(CampaignDeterminismTest, SameSeedSameResult) {
  const CampaignResult a = run_campaign(mixed_pool(), CampaignConfig{});
  const CampaignResult b = run_campaign(mixed_pool(), CampaignConfig{});
  EXPECT_DOUBLE_EQ(a.accuracy_majority, b.accuracy_majority);
  EXPECT_DOUBLE_EQ(a.requester_utility, b.requester_utility);
}

TEST(CampaignConfigTest, Validation) {
  CampaignConfig c;
  c.calibration_rounds = 1;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  c.mu = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  c.difficulty_lo = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c = {};
  EXPECT_THROW(run_campaign({}, c), Error);
}

TEST(CampaignAllDiligentTest, HighQualityAndEveryonePaid) {
  std::vector<LabelerSpec> pool;
  for (int i = 0; i < 7; ++i) {
    LabelerSpec s;
    s.name = "d" + std::to_string(i);
    pool.push_back(s);
  }
  CampaignConfig config;
  config.seed = 99;
  const CampaignResult r = run_campaign(pool, config);
  EXPECT_GT(r.accuracy_majority, 0.9);
  for (const LabelerOutcome& out : r.labelers) {
    EXPECT_GT(out.mean_pay, 0.0) << out.spec.name;
  }
}

}  // namespace
}  // namespace ccd::tasks
