// ccd::scenario unit coverage: spec parsing/validation (ConfigError must
// name the offending values), preset catalog, deterministic fleet
// construction, and the ScenarioHook's per-policy / per-adversary
// behaviours in isolation (the matrix and determinism integration tests
// cover whole runs).
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "contract/contract.hpp"
#include "effort/effort_model.hpp"
#include "util/error.hpp"

namespace ccd::scenario {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.workers = 10;
  spec.malicious = 3;
  spec.community_sizes = {2};
  spec.rounds = 6;
  spec.seed = 5;
  return spec;
}

contract::Contract paying_contract(double payment) {
  return contract::Contract::on_effort_grid(
      effort::QuadraticEffort(-1.0, 8.0, 2.0), 1.0, {0.0, payment});
}

TEST(PolicyTest, RoundTripsThroughStrings) {
  for (const Policy policy : all_policies()) {
    EXPECT_EQ(policy_from_string(to_string(policy)), policy);
  }
  EXPECT_EQ(all_policies().size(), 6u);
  EXPECT_THROW(policy_from_string("greedy"), ConfigError);
}

TEST(ScenarioSpecTest, PresetCatalogCoversAllAdversaries) {
  const std::vector<ScenarioSpec> specs = ScenarioSpec::matrix();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "paper");
  EXPECT_GT(specs[1].sybil, 0u);         // sybil
  EXPECT_TRUE(specs[2].adaptive);        // adaptive
  EXPECT_TRUE(specs[3].misreport);       // misreport
  EXPECT_GT(specs[4].churn_lifetime_mean, 0.0);  // churn
  EXPECT_TRUE(specs[5].adaptive && specs[5].misreport &&
              specs[5].sybil > 0 && specs[5].churn_lifetime_mean > 0.0);
  EXPECT_THROW(ScenarioSpec::preset("zerg"), ConfigError);
}

TEST(ScenarioSpecTest, ValidateNamesOversizedCommunities) {
  ScenarioSpec spec = small_spec();
  spec.community_sizes = {4, 4};
  spec.malicious = 6;
  try {
    spec.validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4,4"), std::string::npos) << what;
    EXPECT_NE(what.find("8"), std::string::npos) << what;
    EXPECT_NE(what.find("6"), std::string::npos) << what;
  }
}

TEST(ScenarioSpecTest, ValidateNamesMaliciousOverrunningPopulation) {
  ScenarioSpec spec = small_spec();
  spec.workers = 5;
  spec.malicious = 5;
  spec.community_sizes.clear();
  try {
    spec.validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5"), std::string::npos) << what;
  }
}

TEST(ScenarioSpecTest, ApplyParamsParsesOverrides) {
  ScenarioSpec spec = ScenarioSpec::preset("sybil");
  util::ParamMap params;
  params.set("workers", "18");
  params.set("malicious", "6");
  params.set("communities", "2,4");
  params.set("sybil", "3");
  params.set("rounds", "10");
  params.set("adaptive", "1");
  spec.apply_params(params);
  EXPECT_EQ(spec.workers, 18u);
  EXPECT_EQ(spec.malicious, 6u);
  EXPECT_EQ(spec.community_sizes, (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(spec.sybil, 3u);
  EXPECT_EQ(spec.rounds, 10u);
  EXPECT_TRUE(spec.adaptive);
  EXPECT_EQ(spec.planted_malicious(), 9u);
  EXPECT_EQ(spec.planted_communities(), 3u);  // {2,4} + the swarm
}

TEST(ScenarioSpecTest, ApplyParamsRejectsBadCommunityCsv) {
  ScenarioSpec spec = small_spec();
  util::ParamMap params;
  params.set("communities", "2,x");
  try {
    spec.apply_params(params);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("x"), std::string::npos);
  }
  util::ParamMap tiny;
  tiny.set("communities", "1");
  EXPECT_THROW(small_spec().apply_params(tiny), ConfigError);
}

TEST(FleetTest, LayoutMatchesSpec) {
  ScenarioSpec spec = small_spec();
  spec.sybil = 3;
  spec.misreport = true;
  const Fleet fleet = build_fleet(spec);

  ASSERT_EQ(fleet.workers.size(), spec.workers + spec.sybil);
  // Layout: 1 NCM, one 2-member community, 3 sybils, 7 honest.
  ASSERT_EQ(fleet.communities.size(), 2u);
  EXPECT_EQ(fleet.communities[0].size(), 2u);
  EXPECT_EQ(fleet.communities[1].size(), 3u);  // the swarm comes last
  EXPECT_EQ(fleet.sybils, fleet.communities[1]);
  EXPECT_EQ(fleet.misreporters.size(), 1u);  // the NCM block misreports

  std::size_t malicious = 0;
  for (const std::uint8_t flag : fleet.is_malicious) malicious += flag;
  EXPECT_EQ(malicious, spec.planted_malicious());
  for (const std::size_t idx : fleet.sybils) {
    EXPECT_EQ(fleet.workers[idx].beta, spec.sybil_beta);
    EXPECT_EQ(fleet.workers[idx].partners, spec.sybil - 1);
  }
}

TEST(FleetTest, ChurnWindowsAreDeterministicInSeed) {
  ScenarioSpec spec = small_spec();
  spec.churn_arrival_mean = 2.0;
  spec.churn_lifetime_mean = 3.0;
  const Fleet a = build_fleet(spec);
  const Fleet b = build_fleet(spec);
  ASSERT_EQ(a.workers.size(), b.workers.size());
  bool any_window = false;
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    EXPECT_EQ(a.workers[i].arrive_round, b.workers[i].arrive_round);
    EXPECT_EQ(a.workers[i].depart_round, b.workers[i].depart_round);
    if (a.workers[i].arrive_round > 0 || a.workers[i].depart_round) {
      any_window = true;
    }
  }
  EXPECT_TRUE(any_window);  // the means above make a static fleet wildly unlikely
}

TEST(ScenarioHookTest, FixedPolicyOverridesEveryContract) {
  const ScenarioSpec spec = small_spec();
  const Fleet fleet = build_fleet(spec);
  ScenarioHook hook(spec, fleet, Policy::kFixed);
  std::vector<contract::Contract> contracts(fleet.workers.size(),
                                            paying_contract(9.0));
  const std::vector<double> est(fleet.workers.size(), 0.0);
  util::Rng rng(1);
  hook.on_contracts_posted(0, true, contracts, est, rng);
  for (const contract::Contract& c : contracts) {
    EXPECT_EQ(c.max_payment(), spec.fixed_payment);
  }
}

TEST(ScenarioHookTest, ExcludePolicyZeroesSuspectedWorkers) {
  const ScenarioSpec spec = small_spec();
  const Fleet fleet = build_fleet(spec);
  ScenarioHook hook(spec, fleet, Policy::kExclude);
  std::vector<contract::Contract> contracts(fleet.workers.size(),
                                            paying_contract(4.0));
  std::vector<double> est(fleet.workers.size(), 0.1);
  est[0] = 0.9;
  util::Rng rng(1);
  hook.on_contracts_posted(0, true, contracts, est, rng);
  EXPECT_TRUE(contracts[0].is_zero());
  for (std::size_t i = 1; i < contracts.size(); ++i) {
    EXPECT_FALSE(contracts[i].is_zero()) << "worker " << i;
  }
}

TEST(ScenarioHookTest, SybilBoostTouchesOnlyTheSwarm) {
  ScenarioSpec spec = small_spec();
  spec.sybil = 3;
  spec.sybil_boost = 50.0;  // huge mean: a zero draw would be astronomical
  const Fleet fleet = build_fleet(spec);
  ScenarioHook hook(spec, fleet, Policy::kDynamic);
  util::Rng rng(9);
  const std::size_t sybil = fleet.sybils.front();
  const std::size_t honest = fleet.workers.size() - 1;
  EXPECT_GT(hook.adjust_feedback(0, sybil, 1.0, rng), 1.0);
  EXPECT_EQ(hook.adjust_feedback(0, honest, 1.0, rng), 1.0);
}

TEST(ScenarioHookTest, AdaptiveBoostFollowsTheHighestPaidMember) {
  ScenarioSpec spec = small_spec();
  spec.adaptive = true;
  spec.adaptive_boost = 50.0;
  const Fleet fleet = build_fleet(spec);
  ScenarioHook hook(spec, fleet, Policy::kDynamic);
  const std::vector<std::size_t>& members = fleet.communities[0];
  ASSERT_EQ(members.size(), 2u);

  std::vector<contract::Contract> contracts(fleet.workers.size(),
                                            paying_contract(2.0));
  contracts[members[1]] = paying_contract(6.0);
  const std::vector<double> est(fleet.workers.size(), 0.0);
  util::Rng rng(9);
  hook.on_contracts_posted(0, true, contracts, est, rng);
  EXPECT_EQ(hook.adjust_feedback(0, members[0], 1.0, rng), 1.0);
  EXPECT_GT(hook.adjust_feedback(0, members[1], 1.0, rng), 1.0);

  // Re-target: the other member becomes the best-paid on the next round.
  contracts[members[0]] = paying_contract(11.0);
  hook.on_contracts_posted(1, true, contracts, est, rng);
  EXPECT_GT(hook.adjust_feedback(1, members[0], 1.0, rng), 1.0);
  EXPECT_EQ(hook.adjust_feedback(1, members[1], 1.0, rng), 1.0);
}

TEST(ScenarioHookTest, MisreportMaskNeedsSlackAndANonZeroContract) {
  ScenarioSpec spec = small_spec();
  spec.misreport = true;
  const Fleet fleet = build_fleet(spec);
  ASSERT_EQ(fleet.misreporters.size(), 1u);
  const std::size_t liar = fleet.misreporters.front();
  const std::vector<double> est(fleet.workers.size(), 0.0);
  util::Rng rng(3);

  // Tight slack: the Theorem 4.1 gap of a paying contract clears it, so
  // the accuracy signal is masked.
  spec.misreport_slack = 0.0;
  ScenarioHook masked(spec, fleet, Policy::kDynamic);
  std::vector<contract::Contract> contracts(fleet.workers.size(),
                                            paying_contract(5.0));
  masked.on_contracts_posted(0, true, contracts, est, rng);
  EXPECT_EQ(masked.adjust_accuracy_sample(0, liar, 1.6, rng), 1.6 * 0.25);

  // Absurd slack: no contract leaves that much headroom — no masking.
  spec.misreport_slack = 1e9;
  ScenarioHook unmasked(spec, fleet, Policy::kDynamic);
  unmasked.on_contracts_posted(0, true, contracts, est, rng);
  EXPECT_EQ(unmasked.adjust_accuracy_sample(0, liar, 1.6, rng), 1.6);

  // Zero contract: nothing to exploit, the mask stays off.
  std::vector<contract::Contract> zeros(fleet.workers.size());
  spec.misreport_slack = 0.0;
  ScenarioHook idle(spec, fleet, Policy::kDynamic);
  idle.on_contracts_posted(0, true, zeros, est, rng);
  EXPECT_EQ(idle.adjust_accuracy_sample(0, liar, 1.6, rng), 1.6);
}

TEST(RunCellTest, ScoresAreBitwiseReproducible) {
  ScenarioSpec spec = small_spec();
  spec.sybil = 2;
  const ScenarioCell a = run_cell(spec, Policy::kDynamic);
  const ScenarioCell b = run_cell(spec, Policy::kDynamic);
  EXPECT_EQ(a.score.requester_utility, b.score.requester_utility);
  EXPECT_EQ(a.score.total_compensation, b.score.total_compensation);
  EXPECT_EQ(a.score.detector_precision, b.score.detector_precision);
  EXPECT_EQ(a.score.detector_recall, b.score.detector_recall);
  EXPECT_EQ(a.score.community_recall, b.score.community_recall);
  EXPECT_EQ(a.score.quarantined, b.score.quarantined);
  EXPECT_EQ(a.score.excluded, b.score.excluded);
}

TEST(IngestFeedTest, RoundsAreBitwiseReproducible) {
  ScenarioSpec spec = small_spec();
  spec.sybil = 3;
  IngestFeed a(spec);
  IngestFeed b(spec);
  ASSERT_EQ(a.worker_count(), spec.workers + spec.sybil);
  for (std::size_t t = 0; t < 3; ++t) {
    const auto ra = a.round({});
    const auto rb = b.round({});
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].effort, rb[i].effort) << "round " << t << " worker " << i;
      EXPECT_EQ(ra[i].feedback, rb[i].feedback);
      EXPECT_EQ(ra[i].accuracy_sample, rb[i].accuracy_sample);
    }
  }
}

TEST(IngestFeedTest, RejectsWrongContractArity) {
  const ScenarioSpec spec = small_spec();
  IngestFeed feed(spec);
  const std::vector<contract::Contract> wrong(spec.workers + 5);
  EXPECT_THROW(feed.round(wrong), Error);
}

}  // namespace
}  // namespace ccd::scenario
