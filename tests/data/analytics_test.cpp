#include "data/analytics.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::data {
namespace {

class AnalyticsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new ReviewTrace(generate_trace(GeneratorParams::small()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static ReviewTrace* trace_;
};

ReviewTrace* AnalyticsTest::trace_ = nullptr;

TEST_F(AnalyticsTest, ProductSummariesCoverReviewedProducts) {
  const auto summaries = product_summaries(*trace_, 1);
  std::size_t reviews = 0;
  for (const ProductSummary& s : summaries) reviews += s.reviews;
  EXPECT_EQ(reviews, trace_->reviews().size());
  // Sorted by descending review count.
  for (std::size_t i = 1; i < summaries.size(); ++i) {
    EXPECT_GE(summaries[i - 1].reviews, summaries[i].reviews);
  }
}

TEST_F(AnalyticsTest, ProductSummaryValuesAreConsistent) {
  const auto summaries = product_summaries(*trace_, 1);
  for (const ProductSummary& s : summaries) {
    EXPECT_GE(s.mean_score, 1.0);
    EXPECT_LE(s.mean_score, 5.0);
    EXPECT_NEAR(s.score_inflation, s.mean_score - s.true_quality, 1e-12);
    EXPECT_GE(s.malicious_share, 0.0);
    EXPECT_LE(s.malicious_share, 1.0);
  }
}

TEST_F(AnalyticsTest, InflatedProductsAreMaliciousTargets) {
  // The most score-inflated products should be dominated by malicious
  // reviewers — the whole point of paid positive reviews.
  const auto inflated = most_inflated_products(*trace_, 5, 3);
  ASSERT_FALSE(inflated.empty());
  double share = 0.0;
  for (const ProductSummary& s : inflated) share += s.malicious_share;
  EXPECT_GT(share / static_cast<double>(inflated.size()), 0.5);
  // Sorted by descending inflation.
  for (std::size_t i = 1; i < inflated.size(); ++i) {
    EXPECT_GE(inflated[i - 1].score_inflation,
              inflated[i].score_inflation);
  }
}

TEST_F(AnalyticsTest, ReviewerSummariesRespectMinReviews) {
  const auto all = reviewer_summaries(*trace_, 1);
  EXPECT_EQ(all.size(), trace_->workers().size());
  const auto active = reviewer_summaries(*trace_, 5);
  EXPECT_LT(active.size(), all.size());
  for (const ReviewerSummary& s : active) {
    EXPECT_GE(s.reviews, 5u);
  }
}

TEST_F(AnalyticsTest, RepeatRatioFlagsMaliciousReviewers) {
  // Malicious workers review from small private pools, so their
  // reviews-per-distinct-product ratio is far above honest workers'.
  const auto all = reviewer_summaries(*trace_, 3);
  double honest = 0.0, malicious = 0.0;
  std::size_t hn = 0, mn = 0;
  for (const ReviewerSummary& s : all) {
    if (s.true_class == WorkerClass::kHonest) {
      honest += s.repeat_ratio;
      ++hn;
    } else {
      malicious += s.repeat_ratio;
      ++mn;
    }
  }
  ASSERT_GT(hn, 0u);
  ASSERT_GT(mn, 0u);
  EXPECT_GT(malicious / static_cast<double>(mn),
            1.5 * honest / static_cast<double>(hn));
}

TEST_F(AnalyticsTest, DistributionsMatchTraceTotals) {
  const TraceDistributions d = trace_distributions(*trace_);
  EXPECT_EQ(d.reviews_per_worker.count, trace_->workers().size());
  EXPECT_EQ(d.upvotes_per_review.count, trace_->reviews().size());
  EXPECT_EQ(d.reviews_per_product.count, trace_->products().size());
  EXPECT_GE(d.score_per_review.min, 1.0);
  EXPECT_LE(d.score_per_review.max, 5.0);
}

TEST_F(AnalyticsTest, RenderedDigestMentionsEveryRow) {
  const std::string text =
      render_distributions(trace_distributions(*trace_));
  EXPECT_NE(text.find("reviews/worker"), std::string::npos);
  EXPECT_NE(text.find("upvotes/review"), std::string::npos);
  EXPECT_NE(text.find("reviews/product"), std::string::npos);
  EXPECT_NE(text.find("median"), std::string::npos);
}

TEST(AnalyticsValidationTest, RequiresIndexes) {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  EXPECT_THROW(product_summaries(t), Error);
  EXPECT_THROW(reviewer_summaries(t), Error);
  EXPECT_THROW(trace_distributions(t), Error);
}

}  // namespace
}  // namespace ccd::data
