#include "data/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ccd::data {
namespace {

TEST(GeneratorParamsTest, PresetsValidate) {
  EXPECT_NO_THROW(GeneratorParams::small().validate());
  EXPECT_NO_THROW(GeneratorParams::medium().validate());
  EXPECT_NO_THROW(GeneratorParams::amazon2015().validate());
}

TEST(GeneratorParamsTest, Amazon2015MatchesPaperCensus) {
  const GeneratorParams p = GeneratorParams::amazon2015();
  EXPECT_EQ(p.community_sizes.size(), 47u);  // 47 communities
  std::size_t workers = 0;
  for (const std::size_t s : p.community_sizes) workers += s;
  EXPECT_EQ(workers, 212u);  // 212 CM workers
  EXPECT_EQ(p.n_honest + p.n_ncm + workers, 19686u);  // total reviewers
}

TEST(GeneratorParamsTest, ValidationCatchesBadBehaviour) {
  GeneratorParams p = GeneratorParams::small();
  p.honest.a2 = 0.5;  // convex
  EXPECT_THROW(p.validate(), Error);

  p = GeneratorParams::small();
  p.honest.effort_cap = 100.0;  // past the feedback-law peak
  EXPECT_THROW(p.validate(), Error);

  p = GeneratorParams::small();
  p.community_sizes = {1};  // community of one is not collusive
  EXPECT_THROW(p.validate(), Error);

  p = GeneratorParams::small();
  p.n_products = 10;  // not enough products for malicious pools
  EXPECT_THROW(p.validate(), Error);
}

TEST(GeneratorParamsTest, FromPopulationRejectsOversizedCommunities) {
  // The plant must never be silently truncated: a community census that
  // overruns the malicious budget is a ConfigError naming both numbers.
  try {
    GeneratorParams::from_population(20, 4, {3, 3}, 1);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3,3"), std::string::npos) << what;
    EXPECT_NE(what.find("6"), std::string::npos) << what;
    EXPECT_NE(what.find("4"), std::string::npos) << what;
  }
}

TEST(GeneratorParamsTest, FromPopulationRejectsMaliciousOverrun) {
  try {
    GeneratorParams::from_population(5, 5, {}, 1);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("5"), std::string::npos);
  }
}

TEST(GeneratorParamsTest, FromPopulationSpendsTheExactBudget) {
  const GeneratorParams p = GeneratorParams::from_population(40, 10, {2, 3}, 7);
  EXPECT_EQ(p.malicious_count(), 10u);
  EXPECT_EQ(p.n_honest, 30u);
  EXPECT_EQ(p.n_ncm, 5u);  // 10 malicious - 5 community members
  const TraceStats s = generate_trace(p).stats();
  EXPECT_EQ(s.honest_workers, 30u);
  EXPECT_EQ(s.ncm_workers, 5u);
  EXPECT_EQ(s.cm_workers, 5u);
}

TEST(GenerateTraceTest, SybilSwarmIsPlantedAsAppendedCommunity) {
  GeneratorParams p = GeneratorParams::from_population(30, 8, {2, 3}, 11);
  p.n_sybil = 4;
  EXPECT_EQ(p.malicious_count(), 12u);
  const ReviewTrace t = generate_trace(p);

  // The swarm lands after the configured communities, as one more
  // ground-truth community of collusive workers sharing a target pool.
  const auto swarm_community =
      static_cast<std::int32_t>(p.community_sizes.size());
  std::vector<WorkerId> swarm;
  for (const Worker& w : t.workers()) {
    if (w.true_community == swarm_community) {
      EXPECT_EQ(w.true_class, WorkerClass::kCollusiveMalicious);
      swarm.push_back(w.id);
    }
  }
  ASSERT_EQ(swarm.size(), 4u);

  // Shared anchor: every swarm member's first review hits one product.
  std::set<ProductId> anchors;
  for (const WorkerId id : swarm) {
    anchors.insert(t.review(t.reviews_of_worker(id).front()).product);
  }
  EXPECT_EQ(anchors.size(), 1u);
}

TEST(GenerateTraceTest, ChurnTruncatesReviewHistories) {
  GeneratorParams p = GeneratorParams::from_population(40, 10, {2, 3}, 13);
  p.campaign_rounds = 12;
  p.churn_arrival_mean = 4.0;
  p.churn_lifetime_mean = 3.0;
  const ReviewTrace t = generate_trace(p);
  EXPECT_NO_THROW(t.validate());

  std::size_t max_reviews = 0;
  for (const Worker& w : t.workers()) {
    const std::size_t n = t.reviews_of_worker(w.id).size();
    EXPECT_GE(n, p.min_reviews);
    // No activity window can outlast the campaign.
    EXPECT_LE(n, std::max(p.min_reviews, p.campaign_rounds));
    max_reviews = std::max(max_reviews, n);
  }
  // The windows actually bind: without churn this population's longest
  // history is far beyond the campaign horizon.
  GeneratorParams unchurned = p;
  unchurned.campaign_rounds = 0;
  std::size_t unchurned_max = 0;
  const ReviewTrace u = generate_trace(unchurned);
  for (const Worker& w : u.workers()) {
    unchurned_max = std::max(unchurned_max, u.reviews_of_worker(w.id).size());
  }
  EXPECT_LT(max_reviews, unchurned_max);
}

TEST(GenerateTraceTest, DeterministicForSeed) {
  const ReviewTrace a = generate_trace(GeneratorParams::small());
  const ReviewTrace b = generate_trace(GeneratorParams::small());
  ASSERT_EQ(a.reviews().size(), b.reviews().size());
  for (std::size_t i = 0; i < a.reviews().size(); ++i) {
    EXPECT_EQ(a.review(i).upvotes, b.review(i).upvotes);
    EXPECT_EQ(a.review(i).product, b.review(i).product);
  }
}

TEST(GenerateTraceTest, DifferentSeedsDiffer) {
  GeneratorParams p = GeneratorParams::small();
  const ReviewTrace a = generate_trace(p);
  p.seed = p.seed + 1;
  const ReviewTrace b = generate_trace(p);
  bool any_diff = a.reviews().size() != b.reviews().size();
  for (std::size_t i = 0; !any_diff && i < a.reviews().size(); ++i) {
    any_diff = a.review(i).upvotes != b.review(i).upvotes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateTraceTest, PopulationCountsMatchParams) {
  const GeneratorParams p = GeneratorParams::small();
  const ReviewTrace t = generate_trace(p);
  const TraceStats s = t.stats();
  EXPECT_EQ(s.honest_workers, p.n_honest);
  EXPECT_EQ(s.ncm_workers, p.n_ncm);
  std::size_t cm = 0;
  for (const std::size_t size : p.community_sizes) cm += size;
  EXPECT_EQ(s.cm_workers, cm);
  EXPECT_EQ(s.true_communities, p.community_sizes.size());
  EXPECT_EQ(s.products, p.n_products);
}

TEST(GenerateTraceTest, TraceValidates) {
  EXPECT_NO_THROW(generate_trace(GeneratorParams::small()).validate());
}

TEST(GenerateTraceTest, EveryWorkerHasMinReviews) {
  GeneratorParams p = GeneratorParams::small();
  p.min_reviews = 3;
  const ReviewTrace t = generate_trace(p);
  for (const Worker& w : t.workers()) {
    EXPECT_GE(t.reviews_of_worker(w.id).size(), 3u);
  }
}

TEST(GenerateTraceTest, CommunityMembersShareAnchorProduct) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  // Group CM workers by true community and check pairwise shared targets
  // through the anchor (first) product.
  std::map<std::int32_t, std::set<ProductId>> first_products;
  for (const Worker& w : t.workers()) {
    if (w.true_class != WorkerClass::kCollusiveMalicious) continue;
    const ReviewId first = t.reviews_of_worker(w.id).front();
    first_products[w.true_community].insert(t.review(first).product);
  }
  for (const auto& [community, products] : first_products) {
    EXPECT_EQ(products.size(), 1u)
        << "community " << community << " lacks a common anchor";
  }
}

TEST(GenerateTraceTest, MaliciousWorkersDoNotCrossCommunities) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  // Map product -> set of true communities of malicious reviewers.
  std::map<ProductId, std::set<std::int32_t>> touch;
  for (const Review& r : t.reviews()) {
    const Worker& w = t.worker(r.worker);
    if (w.true_class == WorkerClass::kHonest) continue;
    // NCM workers use pseudo-community -2 - id to be distinct.
    const std::int32_t tag =
        w.true_class == WorkerClass::kCollusiveMalicious
            ? w.true_community
            : -2 - static_cast<std::int32_t>(w.id);
    touch[r.product].insert(tag);
  }
  for (const auto& [product, tags] : touch) {
    EXPECT_EQ(tags.size(), 1u)
        << "product " << product << " is shared across malicious groups";
  }
}

TEST(GenerateTraceTest, MaliciousScoresAreBiasedHigh) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  double honest_dev = 0.0;
  std::size_t honest_n = 0;
  double malicious_score = 0.0;
  std::size_t malicious_n = 0;
  for (const Review& r : t.reviews()) {
    if (t.worker(r.worker).true_class == WorkerClass::kHonest) {
      honest_dev += std::abs(r.score - t.product(r.product).true_quality);
      ++honest_n;
    } else {
      malicious_score += r.score;
      ++malicious_n;
    }
  }
  EXPECT_LT(honest_dev / static_cast<double>(honest_n), 0.6);
  EXPECT_GT(malicious_score / static_cast<double>(malicious_n), 4.5);
}

TEST(GenerateTraceTest, CollusiveFeedbackIsInflated) {
  const ReviewTrace t = generate_trace(GeneratorParams::medium());
  double honest = 0.0, cm = 0.0;
  std::size_t hn = 0, cn = 0;
  for (const Review& r : t.reviews()) {
    switch (t.worker(r.worker).true_class) {
      case WorkerClass::kHonest:
        honest += r.upvotes;
        ++hn;
        break;
      case WorkerClass::kCollusiveMalicious:
        cm += r.upvotes;
        ++cn;
        break;
      default:
        break;
    }
  }
  // Fig. 7's shape: CM feedback well above honest feedback.
  EXPECT_GT(cm / static_cast<double>(cn), 1.3 * honest / static_cast<double>(hn));
}

}  // namespace
}  // namespace ccd::data
