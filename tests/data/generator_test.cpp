#include "data/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "util/error.hpp"

namespace ccd::data {
namespace {

TEST(GeneratorParamsTest, PresetsValidate) {
  EXPECT_NO_THROW(GeneratorParams::small().validate());
  EXPECT_NO_THROW(GeneratorParams::medium().validate());
  EXPECT_NO_THROW(GeneratorParams::amazon2015().validate());
}

TEST(GeneratorParamsTest, Amazon2015MatchesPaperCensus) {
  const GeneratorParams p = GeneratorParams::amazon2015();
  EXPECT_EQ(p.community_sizes.size(), 47u);  // 47 communities
  std::size_t workers = 0;
  for (const std::size_t s : p.community_sizes) workers += s;
  EXPECT_EQ(workers, 212u);  // 212 CM workers
  EXPECT_EQ(p.n_honest + p.n_ncm + workers, 19686u);  // total reviewers
}

TEST(GeneratorParamsTest, ValidationCatchesBadBehaviour) {
  GeneratorParams p = GeneratorParams::small();
  p.honest.a2 = 0.5;  // convex
  EXPECT_THROW(p.validate(), Error);

  p = GeneratorParams::small();
  p.honest.effort_cap = 100.0;  // past the feedback-law peak
  EXPECT_THROW(p.validate(), Error);

  p = GeneratorParams::small();
  p.community_sizes = {1};  // community of one is not collusive
  EXPECT_THROW(p.validate(), Error);

  p = GeneratorParams::small();
  p.n_products = 10;  // not enough products for malicious pools
  EXPECT_THROW(p.validate(), Error);
}

TEST(GenerateTraceTest, DeterministicForSeed) {
  const ReviewTrace a = generate_trace(GeneratorParams::small());
  const ReviewTrace b = generate_trace(GeneratorParams::small());
  ASSERT_EQ(a.reviews().size(), b.reviews().size());
  for (std::size_t i = 0; i < a.reviews().size(); ++i) {
    EXPECT_EQ(a.review(i).upvotes, b.review(i).upvotes);
    EXPECT_EQ(a.review(i).product, b.review(i).product);
  }
}

TEST(GenerateTraceTest, DifferentSeedsDiffer) {
  GeneratorParams p = GeneratorParams::small();
  const ReviewTrace a = generate_trace(p);
  p.seed = p.seed + 1;
  const ReviewTrace b = generate_trace(p);
  bool any_diff = a.reviews().size() != b.reviews().size();
  for (std::size_t i = 0; !any_diff && i < a.reviews().size(); ++i) {
    any_diff = a.review(i).upvotes != b.review(i).upvotes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateTraceTest, PopulationCountsMatchParams) {
  const GeneratorParams p = GeneratorParams::small();
  const ReviewTrace t = generate_trace(p);
  const TraceStats s = t.stats();
  EXPECT_EQ(s.honest_workers, p.n_honest);
  EXPECT_EQ(s.ncm_workers, p.n_ncm);
  std::size_t cm = 0;
  for (const std::size_t size : p.community_sizes) cm += size;
  EXPECT_EQ(s.cm_workers, cm);
  EXPECT_EQ(s.true_communities, p.community_sizes.size());
  EXPECT_EQ(s.products, p.n_products);
}

TEST(GenerateTraceTest, TraceValidates) {
  EXPECT_NO_THROW(generate_trace(GeneratorParams::small()).validate());
}

TEST(GenerateTraceTest, EveryWorkerHasMinReviews) {
  GeneratorParams p = GeneratorParams::small();
  p.min_reviews = 3;
  const ReviewTrace t = generate_trace(p);
  for (const Worker& w : t.workers()) {
    EXPECT_GE(t.reviews_of_worker(w.id).size(), 3u);
  }
}

TEST(GenerateTraceTest, CommunityMembersShareAnchorProduct) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  // Group CM workers by true community and check pairwise shared targets
  // through the anchor (first) product.
  std::map<std::int32_t, std::set<ProductId>> first_products;
  for (const Worker& w : t.workers()) {
    if (w.true_class != WorkerClass::kCollusiveMalicious) continue;
    const ReviewId first = t.reviews_of_worker(w.id).front();
    first_products[w.true_community].insert(t.review(first).product);
  }
  for (const auto& [community, products] : first_products) {
    EXPECT_EQ(products.size(), 1u)
        << "community " << community << " lacks a common anchor";
  }
}

TEST(GenerateTraceTest, MaliciousWorkersDoNotCrossCommunities) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  // Map product -> set of true communities of malicious reviewers.
  std::map<ProductId, std::set<std::int32_t>> touch;
  for (const Review& r : t.reviews()) {
    const Worker& w = t.worker(r.worker);
    if (w.true_class == WorkerClass::kHonest) continue;
    // NCM workers use pseudo-community -2 - id to be distinct.
    const std::int32_t tag =
        w.true_class == WorkerClass::kCollusiveMalicious
            ? w.true_community
            : -2 - static_cast<std::int32_t>(w.id);
    touch[r.product].insert(tag);
  }
  for (const auto& [product, tags] : touch) {
    EXPECT_EQ(tags.size(), 1u)
        << "product " << product << " is shared across malicious groups";
  }
}

TEST(GenerateTraceTest, MaliciousScoresAreBiasedHigh) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  double honest_dev = 0.0;
  std::size_t honest_n = 0;
  double malicious_score = 0.0;
  std::size_t malicious_n = 0;
  for (const Review& r : t.reviews()) {
    if (t.worker(r.worker).true_class == WorkerClass::kHonest) {
      honest_dev += std::abs(r.score - t.product(r.product).true_quality);
      ++honest_n;
    } else {
      malicious_score += r.score;
      ++malicious_n;
    }
  }
  EXPECT_LT(honest_dev / static_cast<double>(honest_n), 0.6);
  EXPECT_GT(malicious_score / static_cast<double>(malicious_n), 4.5);
}

TEST(GenerateTraceTest, CollusiveFeedbackIsInflated) {
  const ReviewTrace t = generate_trace(GeneratorParams::medium());
  double honest = 0.0, cm = 0.0;
  std::size_t hn = 0, cn = 0;
  for (const Review& r : t.reviews()) {
    switch (t.worker(r.worker).true_class) {
      case WorkerClass::kHonest:
        honest += r.upvotes;
        ++hn;
        break;
      case WorkerClass::kCollusiveMalicious:
        cm += r.upvotes;
        ++cn;
        break;
      default:
        break;
    }
  }
  // Fig. 7's shape: CM feedback well above honest feedback.
  EXPECT_GT(cm / static_cast<double>(cn), 1.3 * honest / static_cast<double>(hn));
}

}  // namespace
}  // namespace ccd::data
