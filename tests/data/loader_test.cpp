#include "data/loader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generator.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::data {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_loader_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    prefix_ = (dir_ / "trace").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string prefix_;
};

TEST_F(LoaderTest, RoundTripsGeneratedTrace) {
  const ReviewTrace original = generate_trace(GeneratorParams::small());
  save_trace(original, prefix_);
  const ReviewTrace loaded = load_trace(prefix_);

  ASSERT_EQ(loaded.workers().size(), original.workers().size());
  ASSERT_EQ(loaded.products().size(), original.products().size());
  ASSERT_EQ(loaded.reviews().size(), original.reviews().size());

  for (std::size_t i = 0; i < original.workers().size(); ++i) {
    const Worker& a = original.worker(static_cast<WorkerId>(i));
    const Worker& b = loaded.worker(static_cast<WorkerId>(i));
    EXPECT_EQ(a.true_class, b.true_class);
    EXPECT_EQ(a.true_community, b.true_community);
    EXPECT_EQ(a.expert_badge, b.expert_badge);
    EXPECT_NEAR(a.skill, b.skill, 1e-5);
  }
  for (std::size_t i = 0; i < original.reviews().size(); ++i) {
    const Review& a = original.review(static_cast<ReviewId>(i));
    const Review& b = loaded.review(static_cast<ReviewId>(i));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.product, b.product);
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.upvotes, b.upvotes);
    EXPECT_EQ(a.length_chars, b.length_chars);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_NEAR(a.score, b.score, 1e-3);
  }
}

TEST_F(LoaderTest, LoadedTraceHasIndexes) {
  save_trace(generate_trace(GeneratorParams::small()), prefix_);
  const ReviewTrace loaded = load_trace(prefix_);
  EXPECT_TRUE(loaded.indexes_built());
  EXPECT_NO_THROW(loaded.reviews_of_worker(0));
}

TEST_F(LoaderTest, MissingFilesThrow) {
  EXPECT_THROW(load_trace((dir_ / "nope").string()), DataError);
}

TEST_F(LoaderTest, BadHeaderThrows) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "wrong,header\n";
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace(prefix_), DataError);
}

TEST_F(LoaderTest, RaggedRowThrows) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "id,class,community,skill,expert_badge\n";
    out << "0,honest,-1\n";  // missing fields
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace(prefix_), DataError);
}

TEST_F(LoaderTest, InconsistentTraceFailsValidation) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "id,class,community,skill,expert_badge\n";
    out << "0,cm,-1,1.0,0\n";  // CM worker without a community
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace(prefix_), DataError);
}

class MalformedLoaderTest : public LoaderTest {
 protected:
  /// Writes a minimal valid trace with one review row replaced by `row`.
  void write_with_review_row(const std::string& row) {
    {
      std::ofstream out(prefix_ + ".workers.csv");
      out << "id,class,community,skill,expert_badge\n";
      out << "0,honest,-1,1.0,0\n";
    }
    {
      std::ofstream out(prefix_ + ".products.csv");
      out << "id,true_quality\n";
      out << "0,3.0\n";
    }
    {
      std::ofstream out(prefix_ + ".reviews.csv");
      out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
      out << row << "\n";
    }
  }

  std::string data_error_for(const std::string& row) {
    write_with_review_row(row);
    try {
      load_trace(prefix_);
    } catch (const DataError& e) {
      return e.what();
    }
    return "";
  }
};

TEST_F(MalformedLoaderTest, StrictRejectsNaNScoreNamingRow) {
  // std::from_chars happily parses "nan"; the loader must still reject it.
  const std::string what = data_error_for("0,0,0,0,nan,10,1,1");
  EXPECT_NE(what.find("non-finite score"), std::string::npos) << what;
  EXPECT_NE(what.find("reviews.csv line 2"), std::string::npos) << what;
}

TEST_F(MalformedLoaderTest, StrictRejectsInfiniteFeedback) {
  const std::string what = data_error_for("0,0,0,0,3.0,10,inf,1");
  EXPECT_NE(what.find("non-finite feedback"), std::string::npos) << what;
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST_F(MalformedLoaderTest, StrictRejectsNegativeFeedback) {
  const std::string what = data_error_for("0,0,0,0,3.0,10,-4,1");
  EXPECT_NE(what.find("negative feedback"), std::string::npos) << what;
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST_F(MalformedLoaderTest, StrictRejectsNegativeRoundAndLength) {
  EXPECT_NE(data_error_for("0,0,0,-1,3.0,10,1,1").find("out-of-range round"),
            std::string::npos);
  EXPECT_NE(
      data_error_for("0,0,0,0,3.0,-10,1,1").find("negative length_chars"),
      std::string::npos);
}

TEST_F(MalformedLoaderTest, StrictNamesRowForUnparseableCell) {
  const std::string what = data_error_for("0,0,0,zero,3.0,10,1,1");
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
}

TEST_F(MalformedLoaderTest, LenientLoadQuarantinesDirtyRowsWithCounts) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "id,class,community,skill,expert_badge\n";
    out << "0,honest,-1,1.0,0\n";
    out << "1,honest,-1,nan,0\n";      // repaired skill
    out << "2,martian,-1,1.0,0\n";     // unparseable class
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
    out << "0,3.0\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
    out << "0,0,0,0,4.0,10,2,1\n";      // clean
    out << "1,0,0,1,nan,10,2,1\n";      // NaN score -> quarantined
    out << "2,1,0,0,3.0,10,-5,1\n";     // negative feedback -> quarantined
    out << "3,0,0,not_a_round,3.0,10,2,1\n";  // unparseable
  }

  const SanitizedTrace out = load_trace_sanitized(prefix_);
  EXPECT_EQ(out.report.unparseable_rows, 2u);  // worker 2 + review 3
  EXPECT_EQ(out.report.repaired_skill, 1u);
  EXPECT_EQ(out.report.non_finite_score, 1u);
  EXPECT_EQ(out.report.negative_feedback, 1u);
  ASSERT_EQ(out.trace.workers().size(), 2u);
  ASSERT_EQ(out.trace.reviews().size(), 1u);
  EXPECT_EQ(out.trace.review(0).upvotes, 2u);
  EXPECT_NO_THROW(out.trace.validate());
  EXPECT_TRUE(out.trace.indexes_built());
}

TEST_F(MalformedLoaderTest, LenientLoadOnCleanTraceIsClean) {
  save_trace(generate_trace(GeneratorParams::small()), prefix_);
  const SanitizedTrace out = load_trace_sanitized(prefix_);
  EXPECT_TRUE(out.report.clean()) << out.report.to_string();
  const ReviewTrace strict = load_trace(prefix_);
  EXPECT_EQ(out.trace.workers().size(), strict.workers().size());
  EXPECT_EQ(out.trace.reviews().size(), strict.reviews().size());
}

TEST_F(MalformedLoaderTest, LenientLoadAbortedMidFileKeepsPrefixAndCounts) {
  // A file whose CSV framing breaks mid-read (unterminated quote) is
  // abandoned at that point: the rows already parsed survive, and the
  // abort is counted so the partial read can never pass for a full one.
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "id,class,community,skill,expert_badge\n";
    out << "0,honest,-1,1.0,0\n";
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
    out << "0,3.0\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
    out << "0,0,0,0,4.0,10,2,1\n";
    out << "1,0,0,1,4.0,10,2,1\n";
    out << "2,0,0,2,\"4.0,10,2,1\n";  // unterminated quote kills the reader
    out << "3,0,0,3,4.0,10,2,1\n";    // never reached
  }

  const SanitizedTrace out = load_trace_sanitized(prefix_);
  EXPECT_EQ(out.report.aborted_files, 1u);
  EXPECT_EQ(out.report.rows_before_abort, 2u);
  EXPECT_FALSE(out.report.clean()) << out.report.to_string();
  EXPECT_NE(out.report.to_string().find("aborted_files=1"),
            std::string::npos);
  // The salvaged prefix is still a valid trace.
  EXPECT_EQ(out.trace.reviews().size(), 2u);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST_F(LoaderTest, RetryingLoadMatchesStrictLoadOnHealthyStorage) {
  save_trace(generate_trace(GeneratorParams::small()), prefix_);
  const ReviewTrace strict = load_trace(prefix_);
  const ReviewTrace retried = load_trace_retrying(prefix_);
  EXPECT_EQ(retried.workers().size(), strict.workers().size());
  EXPECT_EQ(retried.reviews().size(), strict.reviews().size());
  const SanitizedTrace lenient = load_trace_sanitized_retrying(prefix_);
  EXPECT_TRUE(lenient.report.clean());
  EXPECT_EQ(lenient.trace.reviews().size(), strict.reviews().size());
}

TEST_F(LoaderTest, RetryingLoadExhaustsInjectedFaults) {
  save_trace(generate_trace(GeneratorParams::small()), prefix_);
  util::FaultInjectorConfig chaos;
  chaos.enabled = true;
  chaos.seed = 3;
  chaos.site_rates["io.load_trace"] = 1.0;  // every attempt fails
  util::FaultInjector::instance().configure(chaos);

  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep = false;
  EXPECT_THROW(load_trace_retrying(prefix_, policy), DataError);
  EXPECT_EQ(util::FaultInjector::instance().injected("io.load_trace"), 3u);
  util::FaultInjector::instance().disable();
}

TEST_F(MalformedLoaderTest, LenientLoadStillRejectsBadHeader) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "totally,wrong\n";
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace_sanitized(prefix_), DataError);
}

}  // namespace
}  // namespace ccd::data
