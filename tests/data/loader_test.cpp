#include "data/loader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::data {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_loader_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    prefix_ = (dir_ / "trace").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string prefix_;
};

TEST_F(LoaderTest, RoundTripsGeneratedTrace) {
  const ReviewTrace original = generate_trace(GeneratorParams::small());
  save_trace(original, prefix_);
  const ReviewTrace loaded = load_trace(prefix_);

  ASSERT_EQ(loaded.workers().size(), original.workers().size());
  ASSERT_EQ(loaded.products().size(), original.products().size());
  ASSERT_EQ(loaded.reviews().size(), original.reviews().size());

  for (std::size_t i = 0; i < original.workers().size(); ++i) {
    const Worker& a = original.worker(static_cast<WorkerId>(i));
    const Worker& b = loaded.worker(static_cast<WorkerId>(i));
    EXPECT_EQ(a.true_class, b.true_class);
    EXPECT_EQ(a.true_community, b.true_community);
    EXPECT_EQ(a.expert_badge, b.expert_badge);
    EXPECT_NEAR(a.skill, b.skill, 1e-5);
  }
  for (std::size_t i = 0; i < original.reviews().size(); ++i) {
    const Review& a = original.review(static_cast<ReviewId>(i));
    const Review& b = loaded.review(static_cast<ReviewId>(i));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.product, b.product);
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.upvotes, b.upvotes);
    EXPECT_EQ(a.length_chars, b.length_chars);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_NEAR(a.score, b.score, 1e-3);
  }
}

TEST_F(LoaderTest, LoadedTraceHasIndexes) {
  save_trace(generate_trace(GeneratorParams::small()), prefix_);
  const ReviewTrace loaded = load_trace(prefix_);
  EXPECT_TRUE(loaded.indexes_built());
  EXPECT_NO_THROW(loaded.reviews_of_worker(0));
}

TEST_F(LoaderTest, MissingFilesThrow) {
  EXPECT_THROW(load_trace((dir_ / "nope").string()), DataError);
}

TEST_F(LoaderTest, BadHeaderThrows) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "wrong,header\n";
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace(prefix_), DataError);
}

TEST_F(LoaderTest, RaggedRowThrows) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "id,class,community,skill,expert_badge\n";
    out << "0,honest,-1\n";  // missing fields
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace(prefix_), DataError);
}

TEST_F(LoaderTest, InconsistentTraceFailsValidation) {
  {
    std::ofstream out(prefix_ + ".workers.csv");
    out << "id,class,community,skill,expert_badge\n";
    out << "0,cm,-1,1.0,0\n";  // CM worker without a community
  }
  {
    std::ofstream out(prefix_ + ".products.csv");
    out << "id,true_quality\n";
  }
  {
    std::ofstream out(prefix_ + ".reviews.csv");
    out << "id,worker,product,round,score,length_chars,upvotes,verified\n";
  }
  EXPECT_THROW(load_trace(prefix_), DataError);
}

}  // namespace
}  // namespace ccd::data
