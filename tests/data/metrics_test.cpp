#include "data/metrics.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::data {
namespace {

ReviewTrace handmade_trace() {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  t.add_worker({1, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  t.add_product({0, 3.0});
  // Worker 0: upvotes 4 and 8 -> expertise 6. Lengths 100, 200.
  t.add_review({0, 0, 0, 0, 3.0, 100, 4, true});
  t.add_review({1, 0, 0, 1, 3.0, 200, 8, true});
  // Worker 1: upvotes 2 -> expertise 2. Length 300.
  t.add_review({2, 1, 0, 0, 3.0, 300, 2, true});
  t.build_indexes();
  return t;
}

TEST(WorkerMetricsTest, ExpertiseIsMeanUpvotes) {
  const ReviewTrace t = handmade_trace();
  const WorkerMetrics m(t);
  EXPECT_DOUBLE_EQ(m.expertise(0), 6.0);
  EXPECT_DOUBLE_EQ(m.expertise(1), 2.0);
}

TEST(WorkerMetricsTest, EffortIsNormalizedExpertiseTimesLength) {
  const ReviewTrace t = handmade_trace();
  MetricsConfig config;
  config.target_mean_effort = 3.0;
  const WorkerMetrics m(t, config);
  // Raw efforts: 600, 1200, 600 -> mean 800; scale = 3/800.
  EXPECT_DOUBLE_EQ(m.effort_scale(), 3.0 / 800.0);
  EXPECT_DOUBLE_EQ(m.effort_level(0), 600.0 * 3.0 / 800.0);
  EXPECT_DOUBLE_EQ(m.effort_level(1), 1200.0 * 3.0 / 800.0);
  // Global mean equals the target.
  const double mean =
      (m.effort_level(0) + m.effort_level(1) + m.effort_level(2)) / 3.0;
  EXPECT_NEAR(mean, 3.0, 1e-12);
}

TEST(WorkerMetricsTest, FeedbackIsUpvotes) {
  const ReviewTrace t = handmade_trace();
  const WorkerMetrics m(t);
  EXPECT_DOUBLE_EQ(m.feedback(1), 8.0);
}

TEST(WorkerMetricsTest, SamplesOfClassCoverAllClassReviews) {
  const ReviewTrace t = generate_trace(GeneratorParams::small());
  const WorkerMetrics m(t);
  std::size_t total = 0;
  for (const WorkerClass cls :
       {WorkerClass::kHonest, WorkerClass::kNonCollusiveMalicious,
        WorkerClass::kCollusiveMalicious}) {
    total += m.samples_of_class(cls).size();
  }
  EXPECT_EQ(total, t.reviews().size());
}

TEST(WorkerMetricsTest, SamplesOfWorkerMatchesIndex) {
  const ReviewTrace t = handmade_trace();
  const WorkerMetrics m(t);
  const auto samples = m.samples_of_worker(0);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].review, 0u);
  EXPECT_DOUBLE_EQ(samples[0].feedback, 4.0);
}

TEST(WorkerMetricsTest, PerWorkerMeans) {
  const ReviewTrace t = handmade_trace();
  const WorkerMetrics m(t);
  EXPECT_DOUBLE_EQ(m.mean_feedback_of_worker(0), 6.0);
  EXPECT_DOUBLE_EQ(m.mean_feedback_of_worker(1), 2.0);
  EXPECT_GT(m.mean_effort_of_worker(0), 0.0);
}

TEST(WorkerMetricsTest, RequiresIndexes) {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  EXPECT_THROW(WorkerMetrics m(t), Error);
}

TEST(WorkerMetricsTest, RejectsNonPositiveTarget) {
  const ReviewTrace t = handmade_trace();
  MetricsConfig config;
  config.target_mean_effort = 0.0;
  EXPECT_THROW(WorkerMetrics(t, config), Error);
}

TEST(WorkerMetricsTest, SimilarEffortAcrossClassesInGeneratedTrace) {
  // Fig. 7's first claim: the three classes expend similar average effort.
  const ReviewTrace t = generate_trace(GeneratorParams::medium());
  const WorkerMetrics m(t);
  const auto mean_effort = [&](WorkerClass cls) {
    const auto samples = m.samples_of_class(cls);
    double total = 0.0;
    for (const EffortSample& s : samples) total += s.effort;
    return total / static_cast<double>(samples.size());
  };
  const double honest = mean_effort(WorkerClass::kHonest);
  const double cm = mean_effort(WorkerClass::kCollusiveMalicious);
  EXPECT_GT(cm, 0.4 * honest);
  EXPECT_LT(cm, 2.5 * honest);
}

}  // namespace
}  // namespace ccd::data
