#include "data/sanitize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::data {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Worker make_worker(WorkerId id) {
  Worker w;
  w.id = id;
  return w;
}

Product make_product(ProductId id, double quality = 3.0) {
  Product p;
  p.id = id;
  p.true_quality = quality;
  return p;
}

ReviewRecord make_review(ReviewId id, WorkerId worker, ProductId product,
                         std::uint32_t round, double score, double feedback) {
  ReviewRecord rec;
  rec.review.id = id;
  rec.review.worker = worker;
  rec.review.product = product;
  rec.review.round = round;
  rec.review.score = score;
  rec.feedback = feedback;
  return rec;
}

TEST(SanitizeTest, CleanInputPassesThroughUntouched) {
  const std::vector<Worker> workers = {make_worker(0), make_worker(1)};
  const std::vector<Product> products = {make_product(0), make_product(1)};
  const std::vector<ReviewRecord> reviews = {
      make_review(0, 0, 0, 0, 4.0, 2.0), make_review(1, 1, 1, 0, 3.0, 1.0),
      make_review(2, 0, 1, 1, 2.0, 0.0)};

  const SanitizedTrace out = sanitize_trace(workers, products, reviews);
  EXPECT_TRUE(out.report.clean());
  EXPECT_EQ(out.report.total_quarantined(), 0u);
  ASSERT_EQ(out.trace.workers().size(), 2u);
  ASSERT_EQ(out.trace.reviews().size(), 3u);
  EXPECT_DOUBLE_EQ(out.trace.review(0).score, 4.0);
  EXPECT_EQ(out.trace.review(0).upvotes, 2u);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(SanitizeTest, QuarantinesNonFiniteAndNegativeFeedback) {
  const std::vector<Worker> workers = {make_worker(0)};
  const std::vector<Product> products = {make_product(0)};
  const std::vector<ReviewRecord> reviews = {
      make_review(0, 0, 0, 0, 4.0, kNaN),
      make_review(1, 0, 0, 1, 4.0, kInf),
      make_review(2, 0, 0, 2, 4.0, -3.0),
      make_review(3, 0, 0, 3, 4.0, 5.0)};

  const SanitizedTrace out = sanitize_trace(workers, products, reviews);
  EXPECT_EQ(out.report.non_finite_feedback, 2u);
  EXPECT_EQ(out.report.negative_feedback, 1u);
  ASSERT_EQ(out.trace.reviews().size(), 1u);
  EXPECT_EQ(out.trace.review(0).upvotes, 5u);
  // The survivor is renumbered to round 0 (its original round was 3).
  EXPECT_EQ(out.trace.review(0).round, 0u);
  EXPECT_EQ(out.report.renumbered_rounds, 1u);
}

TEST(SanitizeTest, QuarantinesNaNScoresAndClampsOutOfRange) {
  const std::vector<Worker> workers = {make_worker(0)};
  const std::vector<Product> products = {make_product(0)};
  const std::vector<ReviewRecord> reviews = {
      make_review(0, 0, 0, 0, kNaN, 1.0), make_review(1, 0, 0, 1, 7.5, 1.0),
      make_review(2, 0, 0, 2, 0.2, 1.0)};

  const SanitizedTrace out = sanitize_trace(workers, products, reviews);
  EXPECT_EQ(out.report.non_finite_score, 1u);
  EXPECT_EQ(out.report.clamped_scores, 2u);
  ASSERT_EQ(out.trace.reviews().size(), 2u);
  EXPECT_DOUBLE_EQ(out.trace.review(0).score, 5.0);
  EXPECT_DOUBLE_EQ(out.trace.review(1).score, 1.0);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(SanitizeTest, DeduplicatesWorkersKeepingFirstAndRemapsIds) {
  std::vector<Worker> workers;
  Worker a = make_worker(7);
  a.skill = 2.0;
  Worker dup = make_worker(7);
  dup.skill = 9.0;
  Worker b = make_worker(3);
  workers = {a, dup, b};
  const std::vector<Product> products = {make_product(0)};
  const std::vector<ReviewRecord> reviews = {make_review(0, 7, 0, 0, 3.0, 1.0),
                                             make_review(1, 3, 0, 0, 3.0, 1.0)};

  const SanitizedTrace out = sanitize_trace(workers, products, reviews);
  EXPECT_EQ(out.report.duplicate_worker_ids, 1u);
  EXPECT_EQ(out.report.quarantined_workers(), 1u);
  EXPECT_EQ(out.report.remapped_worker_ids, 2u);  // 7 -> 0, 3 -> 1
  ASSERT_EQ(out.trace.workers().size(), 2u);
  EXPECT_DOUBLE_EQ(out.trace.worker(0).skill, 2.0);  // first instance kept
  ASSERT_EQ(out.trace.reviews().size(), 2u);
  EXPECT_EQ(out.trace.review(0).worker, 0u);
  EXPECT_EQ(out.trace.review(1).worker, 1u);
}

TEST(SanitizeTest, QuarantinesDanglingAndOutOfRangeRoundReviews) {
  const std::vector<Worker> workers = {make_worker(0)};
  const std::vector<Product> products = {make_product(0),
                                         make_product(1, kNaN)};
  const std::vector<ReviewRecord> reviews = {
      make_review(0, 0, 0, 0, 3.0, 1.0),
      make_review(1, 5, 0, 0, 3.0, 1.0),   // unknown worker
      make_review(2, 0, 9, 0, 3.0, 1.0),   // unknown product
      make_review(3, 0, 1, 0, 3.0, 1.0),   // product quarantined (NaN quality)
      make_review(4, 0, 0, (1u << 20) + 1, 3.0, 1.0)};  // corrupted round

  const SanitizedTrace out = sanitize_trace(workers, products, reviews);
  EXPECT_EQ(out.report.non_finite_quality, 1u);
  EXPECT_EQ(out.report.dangling_reviews, 3u);
  EXPECT_EQ(out.report.out_of_range_round, 1u);
  ASSERT_EQ(out.trace.reviews().size(), 1u);
  EXPECT_EQ(out.report.quarantined_reviews(), 4u);
}

TEST(SanitizeTest, RepairsSkillAndClassLabels) {
  Worker nan_skill = make_worker(0);
  nan_skill.skill = kNaN;
  Worker cm_without_community = make_worker(1);
  cm_without_community.true_class = WorkerClass::kCollusiveMalicious;
  cm_without_community.true_community = kNoCommunity;
  Worker honest_with_community = make_worker(2);
  honest_with_community.true_community = 4;

  const SanitizedTrace out = sanitize_trace(
      {nan_skill, cm_without_community, honest_with_community}, {}, {});
  EXPECT_EQ(out.report.repaired_skill, 1u);
  EXPECT_EQ(out.report.repaired_class_labels, 2u);
  EXPECT_DOUBLE_EQ(out.trace.worker(0).skill, 1.0);
  EXPECT_EQ(out.trace.worker(1).true_class,
            WorkerClass::kNonCollusiveMalicious);
  EXPECT_EQ(out.trace.worker(2).true_community, kNoCommunity);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(SanitizeTest, TraceOverloadPassesCleanGeneratedTraceThrough) {
  const ReviewTrace trace = generate_trace(GeneratorParams::small());
  const SanitizedTrace out = sanitize_trace(trace);
  EXPECT_TRUE(out.report.clean()) << out.report.to_string();
  ASSERT_EQ(out.trace.workers().size(), trace.workers().size());
  ASSERT_EQ(out.trace.reviews().size(), trace.reviews().size());
  for (std::size_t i = 0; i < trace.reviews().size(); ++i) {
    const Review& a = trace.review(static_cast<ReviewId>(i));
    const Review& b = out.trace.review(static_cast<ReviewId>(i));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.upvotes, b.upvotes);
  }
}

TEST(SanitizeTest, RejectsInvalidScoreRangeConfig) {
  SanitizeConfig config;
  config.min_score = 4.0;
  config.max_score = 2.0;
  EXPECT_THROW(sanitize_trace({}, {}, {}, config), Error);
  config.min_score = 0.0;
  config.max_score = 9.0;
  EXPECT_THROW(sanitize_trace({}, {}, {}, config), Error);
}

TEST(SanitizeTest, ReportToStringMentionsCounts) {
  const std::vector<Worker> workers = {make_worker(0)};
  const std::vector<Product> products = {make_product(0)};
  const std::vector<ReviewRecord> reviews = {make_review(0, 0, 0, 0, 3.0, kNaN)};
  const SanitizedTrace out = sanitize_trace(workers, products, reviews);
  const std::string text = out.report.to_string();
  EXPECT_NE(text.find("quarantined=1"), std::string::npos) << text;
}

}  // namespace
}  // namespace ccd::data
