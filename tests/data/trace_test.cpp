#include "data/trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::data {
namespace {

ReviewTrace tiny_trace() {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  t.add_worker({1, WorkerClass::kNonCollusiveMalicious, kNoCommunity, 1.0, false});
  t.add_worker({2, WorkerClass::kCollusiveMalicious, 0, 1.0, false});
  t.add_worker({3, WorkerClass::kCollusiveMalicious, 0, 1.0, false});
  t.add_product({0, 4.0});
  t.add_product({1, 2.5});
  t.add_review({0, 0, 0, 0, 4.2, 100, 5, true});
  t.add_review({1, 0, 1, 1, 2.4, 120, 3, true});
  t.add_review({2, 1, 0, 0, 5.0, 80, 2, false});
  t.add_review({3, 2, 1, 0, 5.0, 90, 9, false});
  t.add_review({4, 3, 1, 0, 4.9, 95, 8, false});
  t.build_indexes();
  return t;
}

TEST(WorkerClassTest, RoundTripsStrings) {
  EXPECT_EQ(worker_class_from_string(to_string(WorkerClass::kHonest)),
            WorkerClass::kHonest);
  EXPECT_EQ(worker_class_from_string("NCM"),
            WorkerClass::kNonCollusiveMalicious);
  EXPECT_EQ(worker_class_from_string(" cm "),
            WorkerClass::kCollusiveMalicious);
  EXPECT_THROW(worker_class_from_string("alien"), DataError);
}

TEST(ReviewTraceTest, DenseIdEnforcement) {
  ReviewTrace t;
  Worker w;
  w.id = 1;  // should be 0
  EXPECT_THROW(t.add_worker(w), Error);
  Product p;
  p.id = 3;
  EXPECT_THROW(t.add_product(p), Error);
}

TEST(ReviewTraceTest, AccessorsAndRangeChecks) {
  const ReviewTrace t = tiny_trace();
  EXPECT_EQ(t.worker(2).true_community, 0);
  EXPECT_DOUBLE_EQ(t.product(1).true_quality, 2.5);
  EXPECT_EQ(t.review(3).worker, 2u);
  EXPECT_THROW(t.worker(9), Error);
  EXPECT_THROW(t.product(9), Error);
  EXPECT_THROW(t.review(9), Error);
}

TEST(ReviewTraceTest, IndexesGroupReviews) {
  const ReviewTrace t = tiny_trace();
  EXPECT_EQ(t.reviews_of_worker(0).size(), 2u);
  EXPECT_EQ(t.reviews_of_worker(1).size(), 1u);
  EXPECT_EQ(t.reviews_of_product(1).size(), 3u);
  EXPECT_EQ(t.reviews_of_product(0).size(), 2u);
}

TEST(ReviewTraceTest, ProductsOfWorkerDeduplicates) {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  t.add_product({0, 3.0});
  t.add_review({0, 0, 0, 0, 3.0, 50, 1, true});
  t.add_review({1, 0, 0, 1, 3.5, 50, 1, true});
  t.build_indexes();
  EXPECT_EQ(t.products_of_worker(0).size(), 1u);
}

TEST(ReviewTraceTest, IndexRequiredBeforeQueries) {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  EXPECT_THROW(t.reviews_of_worker(0), Error);
}

TEST(ReviewTraceTest, ValidatePassesOnGoodTrace) {
  EXPECT_NO_THROW(tiny_trace().validate());
}

TEST(ReviewTraceTest, ValidateCatchesCmWithoutCommunity) {
  ReviewTrace t;
  Worker w;
  w.id = 0;
  w.true_class = WorkerClass::kCollusiveMalicious;
  w.true_community = kNoCommunity;
  t.add_worker(w);
  EXPECT_THROW(t.validate(), DataError);
}

TEST(ReviewTraceTest, ValidateCatchesHonestWithCommunity) {
  ReviewTrace t;
  Worker w;
  w.id = 0;
  w.true_class = WorkerClass::kHonest;
  w.true_community = 2;
  t.add_worker(w);
  EXPECT_THROW(t.validate(), DataError);
}

TEST(ReviewTraceTest, ValidateCatchesBadScore) {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  t.add_product({0, 3.0});
  Review r;
  r.id = 0;
  r.worker = 0;
  r.product = 0;
  r.round = 0;
  r.score = 6.0;  // out of [1,5]
  t.add_review(r);
  EXPECT_THROW(t.validate(), DataError);
}

TEST(ReviewTraceTest, ValidateCatchesNonSequentialRounds) {
  ReviewTrace t;
  t.add_worker({0, WorkerClass::kHonest, kNoCommunity, 1.0, false});
  t.add_product({0, 3.0});
  Review r;
  r.id = 0;
  r.worker = 0;
  r.product = 0;
  r.round = 1;  // first review must be round 0
  r.score = 3.0;
  t.add_review(r);
  EXPECT_THROW(t.validate(), DataError);
}

TEST(ReviewTraceTest, StatsCountsClasses) {
  const TraceStats s = tiny_trace().stats();
  EXPECT_EQ(s.workers, 4u);
  EXPECT_EQ(s.honest_workers, 1u);
  EXPECT_EQ(s.ncm_workers, 1u);
  EXPECT_EQ(s.cm_workers, 2u);
  EXPECT_EQ(s.true_communities, 1u);
  EXPECT_EQ(s.reviews, 5u);
  EXPECT_DOUBLE_EQ(s.mean_reviews_per_worker, 1.25);
  EXPECT_DOUBLE_EQ(s.mean_upvotes, (5 + 3 + 2 + 9 + 8) / 5.0);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("workers=4"), std::string::npos);
}

}  // namespace
}  // namespace ccd::data
