#include "data/splitter.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.hpp"
#include "detect/collusion.hpp"
#include "util/error.hpp"

namespace ccd::data {
namespace {

class SplitterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new ReviewTrace(generate_trace(GeneratorParams::small()));
    split_ = new TraceSplit(split_trace(*trace_, 0.7, 99));
  }
  static void TearDownTestSuite() {
    delete split_;
    delete trace_;
    split_ = nullptr;
    trace_ = nullptr;
  }
  static ReviewTrace* trace_;
  static TraceSplit* split_;
};

ReviewTrace* SplitterTest::trace_ = nullptr;
TraceSplit* SplitterTest::split_ = nullptr;

TEST_F(SplitterTest, WorkersPartitionExactly) {
  EXPECT_EQ(split_->train.workers().size() + split_->test.workers().size(),
            trace_->workers().size());
  std::set<WorkerId> seen;
  for (const WorkerId id : split_->train_original_ids) seen.insert(id);
  for (const WorkerId id : split_->test_original_ids) seen.insert(id);
  EXPECT_EQ(seen.size(), trace_->workers().size());
}

TEST_F(SplitterTest, ReviewsTravelWithTheirWorkers) {
  EXPECT_EQ(split_->train.reviews().size() + split_->test.reviews().size(),
            trace_->reviews().size());
  // Spot-check: each train worker's review count matches the original.
  for (std::size_t i = 0; i < split_->train.workers().size(); ++i) {
    const WorkerId original = split_->train_original_ids[i];
    EXPECT_EQ(split_->train.reviews_of_worker(static_cast<WorkerId>(i)).size(),
              trace_->reviews_of_worker(original).size());
  }
}

TEST_F(SplitterTest, ProductsSharedAcrossSplits) {
  EXPECT_EQ(split_->train.products().size(), trace_->products().size());
  EXPECT_EQ(split_->test.products().size(), trace_->products().size());
}

TEST_F(SplitterTest, BothSplitsValidate) {
  EXPECT_NO_THROW(split_->train.validate());
  EXPECT_NO_THROW(split_->test.validate());
}

TEST_F(SplitterTest, StratificationKeepsClassMix) {
  const TraceStats full = trace_->stats();
  const TraceStats train = split_->train.stats();
  const double full_malicious_rate =
      static_cast<double>(full.ncm_workers + full.cm_workers) /
      static_cast<double>(full.workers);
  const double train_malicious_rate =
      static_cast<double>(train.ncm_workers + train.cm_workers) /
      static_cast<double>(train.workers);
  EXPECT_NEAR(train_malicious_rate, full_malicious_rate,
              0.5 * full_malicious_rate);
}

TEST_F(SplitterTest, CommunitiesStayWhole) {
  // No ground-truth community may straddle the splits.
  for (const ReviewTrace* side : {&split_->train, &split_->test}) {
    for (const Worker& w : side->workers()) {
      if (w.true_class == WorkerClass::kCollusiveMalicious) {
        EXPECT_NE(w.true_community, kNoCommunity);
      }
    }
  }
  std::set<std::int32_t> train_communities;
  for (const Worker& w : split_->train.workers()) {
    if (w.true_class == WorkerClass::kCollusiveMalicious) {
      train_communities.insert(w.true_community);
    }
  }
  // Map back: no test worker may come from a train community.
  std::set<WorkerId> train_originals(split_->train_original_ids.begin(),
                                     split_->train_original_ids.end());
  for (const Worker& w : trace_->workers()) {
    if (w.true_class != WorkerClass::kCollusiveMalicious) continue;
    const bool in_train = train_originals.count(w.id) > 0;
    // All members of this worker's community must be on the same side.
    for (const Worker& other : trace_->workers()) {
      if (other.true_community == w.true_community &&
          other.true_class == WorkerClass::kCollusiveMalicious) {
        EXPECT_EQ(train_originals.count(other.id) > 0, in_train);
      }
    }
  }
}

TEST_F(SplitterTest, ClusteringStillWorksPerSplit) {
  // Each side's planted communities remain recoverable by the same-target
  // rule after re-indexing.
  for (const ReviewTrace* side : {&split_->train, &split_->test}) {
    std::set<std::int32_t> planted;
    for (const Worker& w : side->workers()) {
      if (w.true_class == WorkerClass::kCollusiveMalicious) {
        planted.insert(w.true_community);
      }
    }
    const detect::CollusionResult found =
        detect::cluster_ground_truth_malicious(*side);
    EXPECT_EQ(found.communities.size(), planted.size());
  }
}

TEST(SplitterValidationTest, RejectsBadFraction) {
  const ReviewTrace trace = generate_trace(GeneratorParams::small());
  EXPECT_THROW(split_trace(trace, 0.0, 1), ConfigError);
  EXPECT_THROW(split_trace(trace, 1.0, 1), ConfigError);
  EXPECT_THROW(split_trace(trace, -0.5, 1), ConfigError);
}

TEST(SplitterDeterminismTest, SameSeedSameSplit) {
  const ReviewTrace trace = generate_trace(GeneratorParams::small());
  const TraceSplit a = split_trace(trace, 0.6, 7);
  const TraceSplit b = split_trace(trace, 0.6, 7);
  EXPECT_EQ(a.train_original_ids, b.train_original_ids);
  const TraceSplit c = split_trace(trace, 0.6, 8);
  EXPECT_NE(a.train_original_ids, c.train_original_ids);
}

}  // namespace
}  // namespace ccd::data
