#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace ccd::graph {
namespace {

TEST(ComponentsTest, AllIsolatedVertices) {
  const Graph g(4);
  const ComponentResult r = connected_components(g);
  EXPECT_EQ(r.count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.members[r.component_of[i]].front(), i);
  }
}

TEST(ComponentsTest, SingleChain) {
  Graph g(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  const ComponentResult r = connected_components(g);
  EXPECT_EQ(r.count(), 1u);
  EXPECT_EQ(r.members[0].size(), 5u);
}

TEST(ComponentsTest, TwoTriangles) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const ComponentResult r = connected_components(g);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_EQ(r.component_of[0], r.component_of[2]);
  EXPECT_NE(r.component_of[0], r.component_of[3]);
}

TEST(ComponentsTest, MembersPartitionVertices) {
  Graph g(10);
  g.add_edge(0, 9);
  g.add_edge(2, 5);
  g.add_edge(5, 7);
  const ComponentResult r = connected_components(g);
  std::size_t total = 0;
  for (const auto& comp : r.members) total += comp.size();
  EXPECT_EQ(total, 10u);
}

TEST(ComponentsTest, EmptyGraph) {
  const ComponentResult r = connected_components(Graph(0));
  EXPECT_EQ(r.count(), 0u);
}

TEST(ComponentsTest, DfsAndBfsAgreeOnRandomGraphs) {
  util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 30 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    Graph g(n);
    const int edges = static_cast<int>(rng.uniform_int(0, 60));
    for (int e = 0; e < edges; ++e) {
      g.add_edge(static_cast<std::size_t>(rng.uniform_int(0, n - 1)),
                 static_cast<std::size_t>(rng.uniform_int(0, n - 1)));
    }
    const ComponentResult dfs = connected_components(g);
    const ComponentResult bfs = connected_components_bfs(g);
    ASSERT_EQ(dfs.count(), bfs.count());
    // Same partition: component ids may differ, but co-membership must match.
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        EXPECT_EQ(dfs.component_of[u] == dfs.component_of[v],
                  bfs.component_of[u] == bfs.component_of[v]);
      }
    }
  }
}

TEST(ComponentsTest, StarGraph) {
  Graph g(6);
  for (std::size_t leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf);
  const ComponentResult r = connected_components(g);
  EXPECT_EQ(r.count(), 1u);
  auto members = r.members[0];
  std::sort(members.begin(), members.end());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(members[i], i);
}

}  // namespace
}  // namespace ccd::graph
