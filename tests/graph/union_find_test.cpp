#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::graph {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.component_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.component_size(i), 1u);
  }
}

TEST(UnionFindTest, UniteMergesComponents) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_EQ(uf.component_size(1), 2u);
}

TEST(UnionFindTest, UniteSameSetReturnsFalse) {
  UnionFind uf(3);
  uf.unite(0, 1);
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.component_count(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(2, 3));
  EXPECT_EQ(uf.component_size(0), 3u);
  EXPECT_EQ(uf.component_size(4), 2u);
}

TEST(UnionFindTest, OutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW(uf.find(2), Error);
}

TEST(UnionFindTest, RandomizedAgainstNaiveLabels) {
  util::Rng rng(77);
  const std::size_t n = 200;
  UnionFind uf(n);
  std::vector<std::size_t> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = i;
  const auto relabel = [&](std::size_t from, std::size_t to) {
    for (auto& l : label) {
      if (l == from) l = to;
    }
  };
  for (int step = 0; step < 500; ++step) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    uf.unite(a, b);
    relabel(label[a], label[b]);
  }
  for (int probe = 0; probe < 1000; ++probe) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    EXPECT_EQ(uf.connected(a, b), label[a] == label[b]);
  }
}

}  // namespace
}  // namespace ccd::graph
