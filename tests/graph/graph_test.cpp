#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphTest, AddEdgeIsUndirected) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, NeighborsListBothDirections) {
  Graph g(4);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(2).front(), 1u);
}

TEST(GraphTest, SelfLoopCountsOnce) {
  Graph g(2);
  g.add_edge(0, 0);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphTest, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), Error);
  EXPECT_THROW(g.neighbors(5), Error);
  EXPECT_THROW(g.has_edge(0, 9), Error);
}

}  // namespace
}  // namespace ccd::graph
