// ccd::policy unit tests: backend construction and naming, the BiP
// backend's bitwise equivalence with the batch designer it wraps, the
// learners' serialize/restore contract (save_state at a round boundary,
// load into a fresh instance, continue bitwise-identically), and the
// learning invariant itself — on a stationary toy fleet both learners
// must extract more utility late than early.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "contract/worker_response.hpp"
#include "policy/policy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::policy {
namespace {

std::vector<contract::SubproblemSpec> toy_specs() {
  std::vector<contract::SubproblemSpec> specs;
  contract::SubproblemSpec honest;
  honest.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  honest.incentives = {1.0, 0.0};
  specs.push_back(honest);
  contract::SubproblemSpec malicious;
  malicious.psi = effort::QuadraticEffort(-0.8, 6.0, 1.5);
  malicious.incentives = {1.1, 0.3};
  malicious.weight = 0.9;
  specs.push_back(malicious);
  contract::SubproblemSpec community;
  community.psi = effort::QuadraticEffort(-1.2, 9.0, 2.5);
  community.incentives = {0.9, 0.5};
  specs.push_back(community);
  return specs;
}

std::vector<WorkerView> toy_views() {
  std::vector<WorkerView> views;
  for (const contract::SubproblemSpec& spec : toy_specs()) {
    WorkerView view;
    view.psi = spec.psi;
    view.beta = spec.incentives.beta;
    view.omega = spec.incentives.omega;
    view.weight = spec.weight;
    view.mu = spec.mu;
    view.intervals = spec.intervals;
    views.push_back(view);
  }
  return views;
}

/// One closed-loop round: exact best responses to the posted contracts,
/// rewards as the simulator computes them. Returns the fleet utility.
double play_round(Policy& policy, std::size_t round,
                  const std::vector<WorkerView>& views,
                  std::vector<contract::Contract>& contracts, util::Rng& rng,
                  const PostEnv& env) {
  EXPECT_TRUE(policy.post(round, true, views, contracts, rng, env));
  std::vector<RoundOutcome> outcomes(views.size());
  double total = 0.0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const contract::BestResponse response = contract::best_response(
        contracts[i], views[i].psi, {views[i].beta, views[i].omega});
    outcomes[i].active = true;
    outcomes[i].feedback = response.feedback;
    outcomes[i].reward = views[i].weight * response.feedback -
                         views[i].mu * response.compensation;
    total += outcomes[i].reward;
  }
  if (policy.learns()) policy.observe(round, outcomes, rng);
  return total;
}

void expect_contracts_bitwise_equal(
    const std::vector<contract::Contract>& a,
    const std::vector<contract::Contract>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].intervals(), b[i].intervals()) << "worker " << i;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      EXPECT_EQ(a[i].payment(l), b[i].payment(l))
          << "worker " << i << " knot " << l;
      EXPECT_EQ(a[i].knot(l), b[i].knot(l))
          << "worker " << i << " knot " << l;
    }
  }
}

TEST(PolicyKindTest, RoundTripsThroughStrings) {
  for (const Kind kind :
       {Kind::kBip, Kind::kZoomingBandit, Kind::kPostedPrice}) {
    EXPECT_EQ(kind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(kind_from_string("bip"), Kind::kBip);
  EXPECT_EQ(kind_from_string("bandit"), Kind::kZoomingBandit);
  EXPECT_EQ(kind_from_string("posted"), Kind::kPostedPrice);
  EXPECT_THROW(kind_from_string("oracle"), ConfigError);
  EXPECT_THROW(kind_from_string(""), ConfigError);
}

TEST(PolicyKindTest, MakePolicyInstantiatesTheConfiguredBackend) {
  for (const Kind kind :
       {Kind::kBip, Kind::kZoomingBandit, Kind::kPostedPrice}) {
    PolicyConfig config;
    config.kind = kind;
    const std::unique_ptr<Policy> policy = make_policy(config);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_EQ(policy->learns(), kind != Kind::kBip);
  }
}

TEST(PolicyKindTest, ConfigValidationRejectsBadKnobs) {
  PolicyConfig config;
  config.payment_cap = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.price_levels = 1;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.peer_tolerance = 2.5;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.zoom_confidence = -0.1;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(BipPolicyTest, MatchesTheBatchDesignerBitwise) {
  const std::vector<contract::SubproblemSpec> specs = toy_specs();
  const std::vector<contract::DesignResult> reference =
      contract::design_contracts_batch(specs);
  std::vector<contract::Contract> expected;
  for (const contract::DesignResult& result : reference) {
    expected.push_back(result.contract);
  }

  PolicyConfig config;
  const std::unique_ptr<Policy> bip = make_policy(config);
  std::vector<contract::Contract> contracts(specs.size());
  util::Rng rng(7);
  contract::DesignCache cache;
  PostEnv env;
  env.cache = &cache;
  ASSERT_TRUE(bip->post(0, true, toy_views(), contracts, rng, env));
  expect_contracts_bitwise_equal(contracts, expected);

  // redesign=false must keep the previous round's contracts untouched.
  std::vector<contract::Contract> kept = contracts;
  ASSERT_TRUE(bip->post(1, false, toy_views(), kept, rng, env));
  expect_contracts_bitwise_equal(kept, expected);
}

TEST(BipPolicyTest, StateIsEmptyAndLoadAcceptsIt) {
  PolicyConfig config;
  const std::unique_ptr<Policy> bip = make_policy(config);
  EXPECT_TRUE(bip->save_state().empty());
  EXPECT_NO_THROW(bip->load_state(""));
}

TEST(ThresholdContractTest, PaysExactlyAtTheThreshold) {
  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  const double threshold = 1.5;
  const contract::Contract c = threshold_contract(psi, threshold, 5.0);
  ASSERT_FALSE(c.is_zero());
  // Clearing the threshold earns the payment; staying well below earns ~0.
  EXPECT_NEAR(c.pay(psi(threshold) + 1e-6), 5.0, 1e-9);
  EXPECT_NEAR(c.pay(psi(0.0)), 0.0, 1e-9);
  // Degenerate arms collapse to the zero contract.
  EXPECT_TRUE(threshold_contract(psi, 0.0, 5.0).is_zero());
  EXPECT_TRUE(threshold_contract(psi, 1.0, 0.0).is_zero());
}

TEST(ThresholdContractTest, InvertPsiIsAnInverseOnTheUsableDomain) {
  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);
  for (const double y : {0.1, 0.7, 1.9, 3.1}) {
    EXPECT_NEAR(invert_psi(psi, psi(y)), y, 1e-6);
  }
  // Targets below psi(0) clamp to 0; unreachable targets clamp to the
  // domain end.
  EXPECT_EQ(invert_psi(psi, psi(0.0) - 1.0), 0.0);
  EXPECT_NEAR(invert_psi(psi, 1e9), psi.usable_domain(), 1e-9);
}

class LearnerPolicyTest : public ::testing::TestWithParam<Kind> {};

INSTANTIATE_TEST_SUITE_P(Backends, LearnerPolicyTest,
                         ::testing::Values(Kind::kZoomingBandit,
                                           Kind::kPostedPrice),
                         [](const auto& suite_info) {
                           return std::string(to_string(suite_info.param));
                         });

TEST_P(LearnerPolicyTest, LearningImprovesOnAStationaryFleet) {
  PolicyConfig config;
  config.kind = GetParam();
  const std::unique_ptr<Policy> learner = make_policy(config);
  const std::vector<WorkerView> views = toy_views();
  std::vector<contract::Contract> contracts(views.size());
  util::Rng rng(11);
  const PostEnv env;

  constexpr std::size_t kRounds = 400;
  constexpr std::size_t kWindow = kRounds / 4;
  double early = 0.0;
  double late = 0.0;
  for (std::size_t t = 0; t < kRounds; ++t) {
    const double utility =
        play_round(*learner, t, views, contracts, rng, env);
    if (t < kWindow) early += utility;
    if (t >= kRounds - kWindow) late += utility;
  }
  EXPECT_GT(late, early) << to_string(GetParam());
}

TEST_P(LearnerPolicyTest, SaveLoadContinuesBitwiseIdentically) {
  PolicyConfig config;
  config.kind = GetParam();
  const std::unique_ptr<Policy> original = make_policy(config);
  const std::vector<WorkerView> views = toy_views();
  std::vector<contract::Contract> contracts(views.size());
  util::Rng rng(3);
  const PostEnv env;

  for (std::size_t t = 0; t < 60; ++t) {
    play_round(*original, t, views, contracts, rng, env);
  }
  const std::string state = original->save_state();
  EXPECT_FALSE(state.empty());

  const std::unique_ptr<Policy> restored = make_policy(config);
  restored->load_state(state);

  // Both instances must now post and learn identically, round for round.
  // The learners draw nothing from the Rng, but hand each its own stream
  // anyway to mirror the simulator's calling convention.
  std::vector<contract::Contract> a(views.size());
  std::vector<contract::Contract> b(views.size());
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  for (std::size_t t = 60; t < 90; ++t) {
    play_round(*original, t, views, a, rng_a, env);
    play_round(*restored, t, views, b, rng_b, env);
    expect_contracts_bitwise_equal(a, b);
  }
  EXPECT_EQ(original->save_state(), restored->save_state());
}

TEST_P(LearnerPolicyTest, RejectsForeignOrCorruptState) {
  PolicyConfig config;
  config.kind = GetParam();
  const std::unique_ptr<Policy> learner = make_policy(config);

  // State saved by the OTHER learner backend.
  PolicyConfig other_config;
  other_config.kind = GetParam() == Kind::kZoomingBandit
                          ? Kind::kPostedPrice
                          : Kind::kZoomingBandit;
  const std::unique_ptr<Policy> other = make_policy(other_config);
  const std::vector<WorkerView> views = toy_views();
  std::vector<contract::Contract> contracts(views.size());
  util::Rng rng(9);
  for (std::size_t t = 0; t < 8; ++t) {
    play_round(*other, t, views, contracts, rng, {});
  }
  EXPECT_THROW(learner->load_state(other->save_state()), DataError);
  EXPECT_THROW(learner->load_state("garbage"), DataError);

  // Empty string is the documented fresh start.
  EXPECT_NO_THROW(learner->load_state(""));
}

TEST_P(LearnerPolicyTest, InactiveWorkersGetZeroContracts) {
  PolicyConfig config;
  config.kind = GetParam();
  const std::unique_ptr<Policy> learner = make_policy(config);
  std::vector<WorkerView> views = toy_views();
  views[1].active = false;
  std::vector<contract::Contract> contracts(views.size());
  util::Rng rng(13);
  ASSERT_TRUE(learner->post(0, true, views, contracts, rng, {}));
  EXPECT_TRUE(contracts[1].is_zero());
  EXPECT_FALSE(contracts[0].is_zero());
}

}  // namespace
}  // namespace ccd::policy
