#include "util/cancellation.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/thread_pool.hpp"

namespace ccd::util {
namespace {

TEST(DeadlineTest, DefaultIsInactive) {
  const Deadline d;
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_s(), 1e18);
  EXPECT_FALSE(Deadline::never().active());
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_TRUE(d.active());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_s(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired) {
  const Deadline d = Deadline::after(3600.0);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_s(), 3000.0);
}

TEST(CancellationTokenTest, FreshTokenIsNotCancelled) {
  const CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.poll());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancellationTokenTest, RequestCancelLatchesAndKeepsFirstReason) {
  const CancellationToken token;
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  // Idempotent; a later deadline reason does not overwrite the first.
  token.request_cancel(CancelReason::kDeadline);
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
}

TEST(CancellationTokenTest, PollLatchesExpiredDeadline) {
  CancellationToken token;
  token.set_deadline(Deadline::after(0.0));
  // cancelled() never reads the clock, so the flag is still clear...
  EXPECT_FALSE(token.cancelled());
  // ...until a poll() notices the expiry and latches it.
  EXPECT_TRUE(token.poll());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancellationTokenTest, GenerousDeadlineDoesNotFire) {
  CancellationToken token;
  token.set_deadline(Deadline::after(3600.0));
  EXPECT_FALSE(token.poll());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, CopiesShareState) {
  const CancellationToken a;
  const CancellationToken b = a;  // NOLINT(performance-unnecessary-copy...)
  a.request_cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(CancellationTokenTest, VisibleAcrossThreads) {
  const CancellationToken token;
  std::thread t([&token] { token.request_cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ParallelForStopsEarlyWhenPreCancelled) {
  ThreadPool pool(4);
  const CancellationToken token;
  token.request_cancel();
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(
      10000, [&ran](std::size_t) { ran.fetch_add(1); }, &token);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(CancellationTokenTest, ParallelForStopsMidRun) {
  ThreadPool pool(4);
  const CancellationToken token;
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(
      100000,
      [&ran, &token](std::size_t i) {
        if (i == 0) token.request_cancel();
        ran.fetch_add(1);
      },
      &token);
  // Some indices run before the flag propagates, but nowhere near all.
  EXPECT_LT(ran.load(), 100000u);
}

TEST(CancellationTokenTest, ParallelForRunsToCompletionWithoutToken) {
  ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(1000, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1000u);
}

}  // namespace
}  // namespace ccd::util
