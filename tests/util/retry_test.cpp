#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace ccd::util {
namespace {

RetryPolicy fast_policy(std::size_t attempts = 3) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.sleep = false;  // spin through attempts instantly
  return p;
}

TEST(RetryPolicyTest, Validation) {
  EXPECT_NO_THROW(RetryPolicy{}.validate());
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), Error);
  p = {};
  p.multiplier = 0.5;
  EXPECT_THROW(p.validate(), Error);
  p = {};
  p.jitter = 1.5;
  EXPECT_THROW(p.validate(), Error);
}

TEST(RetryTest, FirstAttemptSuccessCallsOnce) {
  std::size_t calls = 0;
  const int got = with_retry("test.once", fast_policy(), [&](std::size_t) {
    ++calls;
    return 42;
  });
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  std::vector<std::size_t> seen;
  const std::string got =
      with_retry("test.flaky", fast_policy(3), [&](std::size_t attempt) {
        seen.push_back(attempt);
        if (attempt < 2) throw DataError("transient");
        return std::string("ok");
      });
  EXPECT_EQ(got, "ok");
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RetryTest, ExhaustedAttemptsRethrowOriginalError) {
  std::size_t calls = 0;
  try {
    with_retry("test.dead", fast_policy(3), [&](std::size_t) -> int {
      ++calls;
      throw DataError("disk on fire");
    });
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kData);
    EXPECT_NE(std::string(e.what()).find("disk on fire"), std::string::npos);
  }
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, NonCcdExceptionsPropagateImmediately) {
  std::size_t calls = 0;
  EXPECT_THROW(with_retry("test.bug", fast_policy(5),
                          [&](std::size_t) -> int {
                            ++calls;
                            throw std::logic_error("a bug, not flaky I/O");
                          }),
               std::logic_error);
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, SingleAttemptPolicyDisablesRetrying) {
  std::size_t calls = 0;
  EXPECT_THROW(with_retry("test.single", fast_policy(1),
                          [&](std::size_t) -> int {
                            ++calls;
                            throw DataError("nope");
                          }),
               DataError);
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, VoidCallablesAreSupported) {
  std::size_t calls = 0;
  with_retry("test.void", fast_policy(3), [&](std::size_t attempt) {
    ++calls;
    if (attempt == 0) throw DataError("transient");
  });
  EXPECT_EQ(calls, 2u);
}

TEST(RetryTest, BackoffScheduleIsDeterministic) {
  RetryPolicy p = fast_policy(4);
  const double b1 = detail::backoff_before("test.det", p, 1);
  const double b2 = detail::backoff_before("test.det", p, 2);
  EXPECT_GT(b1, 0.0);
  EXPECT_GT(b2, b1);  // exponential growth dominates the ±20% jitter
  // Same (op, policy) -> bitwise-identical schedule.
  EXPECT_EQ(detail::backoff_before("test.det", p, 1), b1);
  EXPECT_EQ(detail::backoff_before("test.det", p, 2), b2);
  // A different operation name draws a different jitter stream.
  const double other = detail::backoff_before("test.det2", p, 1);
  EXPECT_NE(other, b1);
}

TEST(RetryTest, CountsAttemptsInRegistry) {
  namespace metrics = util::metrics;
  if (!metrics::compiled_in()) GTEST_SKIP() << "-DCCD_NO_METRICS";
  metrics::set_enabled(true);
  const std::uint64_t attempts0 =
      metrics::registry().counter("ccd.io.attempts").value();
  const std::uint64_t retries0 =
      metrics::registry().counter("ccd.io.retries").value();
  const std::uint64_t success0 =
      metrics::registry().counter("ccd.io.successes").value();
  with_retry("test.metrics", fast_policy(3), [](std::size_t attempt) {
    if (attempt == 0) throw DataError("transient");
  });
  EXPECT_EQ(metrics::registry().counter("ccd.io.attempts").value(),
            attempts0 + 2);
  EXPECT_EQ(metrics::registry().counter("ccd.io.retries").value(),
            retries0 + 1);
  EXPECT_EQ(metrics::registry().counter("ccd.io.successes").value(),
            success0 + 1);
}

}  // namespace
}  // namespace ccd::util
