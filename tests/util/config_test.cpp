#include "util/config.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::util {
namespace {

ParamMap from_tokens(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ParamMap::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(ParamMapTest, ParsesKeyValueArgs) {
  const ParamMap map = from_tokens({"mu=0.9", "m=40", "verbose=true"});
  EXPECT_DOUBLE_EQ(map.get_double("mu", 1.0), 0.9);
  EXPECT_EQ(map.get_int("m", 10), 40);
  EXPECT_TRUE(map.get_bool("verbose", false));
}

TEST(ParamMapTest, SkipsTokensWithoutEquals) {
  const ParamMap map = from_tokens({"--flag", "mu=2.0"});
  EXPECT_FALSE(map.contains("--flag"));
  EXPECT_TRUE(map.contains("mu"));
}

TEST(ParamMapTest, FallbacksWhenMissing) {
  const ParamMap map = from_tokens({});
  EXPECT_DOUBLE_EQ(map.get_double("mu", 1.25), 1.25);
  EXPECT_EQ(map.get_int("m", 7), 7);
  EXPECT_FALSE(map.get_bool("flag", false));
  EXPECT_EQ(map.get_string("name", "dflt"), "dflt");
}

TEST(ParamMapTest, ValueWithEqualsSign) {
  const ParamMap map = from_tokens({"expr=a=b"});
  EXPECT_EQ(map.get_string("expr", ""), "a=b");
}

TEST(ParamMapTest, BadValueThrows) {
  const ParamMap map = from_tokens({"mu=abc"});
  EXPECT_THROW(map.get_double("mu", 1.0), ConfigError);
}

TEST(ParamMapTest, AssertAllConsumedCatchesTypos) {
  const ParamMap map = from_tokens({"mu=1.0", "typo_key=3"});
  (void)map.get_double("mu", 1.0);
  EXPECT_THROW(map.assert_all_consumed(), ConfigError);
}

TEST(ParamMapTest, AssertAllConsumedPassesWhenAllRead) {
  const ParamMap map = from_tokens({"mu=1.0", "m=5"});
  (void)map.get_double("mu", 1.0);
  (void)map.get_int("m", 1);
  EXPECT_NO_THROW(map.assert_all_consumed());
}

TEST(ParamMapTest, SetAndKeys) {
  ParamMap map;
  map.set("a", "1");
  map.set("b", "2");
  const auto keys = map.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace ccd::util
