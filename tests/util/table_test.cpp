#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::util {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTableTest, ColumnsAlignToWidestCell) {
  TextTable table({"c"});
  table.add_row({"wide-cell-content"});
  const std::string out = table.render();
  // Every line should have the same length (aligned columns).
  std::size_t expected = out.find('\n');
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable table({"a", "b"});
  table.add_number_row({1.23456, 2.0}, 2);
  const std::string out = table.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TextTableTest, LabeledNumericRow) {
  TextTable table({"label", "x"});
  table.add_labeled_row("row1", {3.14159}, 3);
  const std::string out = table.render();
  EXPECT_NE(out.find("row1"), std::string::npos);
  EXPECT_NE(out.find("3.142"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

}  // namespace
}  // namespace ccd::util
