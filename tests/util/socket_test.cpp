// util::Socket deadline I/O: the poll-based read_exact/write_exact
// variants that keep half-dead peers from pinning serve/gateway handler
// threads. Covers late-but-in-budget delivery, timeout errors carrying
// partial-transfer counts, the <= 0 "no deadline" escape hatch, the
// clean-EOF-on-a-boundary contract, and mid-message EOF detection.
#include "util/socket.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include "util/error.hpp"

namespace ccd::util {
namespace {

class SocketDeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_socket_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    listener_ = Socket::listen_unix((dir_ / "pair.sock").string());
    client_ = Socket::connect_unix((dir_ / "pair.sock").string());
    std::optional<Socket> accepted = listener_.accept(2'000);
    ASSERT_TRUE(accepted.has_value());
    server_ = std::move(*accepted);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  Socket listener_;
  Socket client_;
  Socket server_;
};

TEST_F(SocketDeadlineTest, ReadWaitsForBytesThatArriveWithinBudget) {
  std::thread writer([this] {
    ::usleep(30 * 1000);
    client_.send_all("ping", 4);
  });
  char buffer[4] = {};
  EXPECT_TRUE(server_.read_exact(buffer, sizeof(buffer), 5'000));
  EXPECT_EQ(std::string(buffer, 4), "ping");
  writer.join();
}

TEST_F(SocketDeadlineTest, ReadTimeoutReportsPartialByteCount) {
  // Half a message, then silence: the deadline fires and the error names
  // how far the transfer got — the operator-facing breadcrumb for
  // distinguishing a stalled peer from one that never spoke.
  client_.send_all("ab", 2);
  char buffer[8] = {};
  try {
    server_.read_exact(buffer, sizeof(buffer), 100);
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("2 of 8"), std::string::npos) << what;
  }
}

TEST_F(SocketDeadlineTest, NonPositiveTimeoutDisablesTheDeadline) {
  client_.send_all("abcd", 4);
  char buffer[4] = {};
  EXPECT_TRUE(server_.read_exact(buffer, sizeof(buffer), 0));
  EXPECT_EQ(std::string(buffer, 4), "abcd");

  client_.send_all("wxyz", 4);
  EXPECT_TRUE(server_.read_exact(buffer, sizeof(buffer), -1));
  EXPECT_EQ(std::string(buffer, 4), "wxyz");
}

TEST_F(SocketDeadlineTest, CleanCloseOnMessageBoundaryReturnsFalse) {
  client_.shutdown_both();
  client_ = Socket();
  char byte = 0;
  EXPECT_FALSE(server_.read_exact(&byte, 1, 1'000));
}

TEST_F(SocketDeadlineTest, EofMidMessageThrows) {
  client_.send_all("ab", 2);
  client_.shutdown_both();
  client_ = Socket();
  char buffer[4] = {};
  EXPECT_THROW(server_.read_exact(buffer, sizeof(buffer), 1'000), DataError);
}

TEST_F(SocketDeadlineTest, WriteTimesOutWhenThePeerStopsDraining) {
  // Nobody reads server_: once the kernel buffers fill, the deadline is
  // the only way out. 16 MiB comfortably exceeds any default socket
  // buffer.
  const std::string blob(16u << 20, 'x');
  try {
    client_.write_exact(blob.data(), blob.size(), 150);
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("bytes sent"), std::string::npos) << what;
  }
}

TEST_F(SocketDeadlineTest, WriteCompletesWhileThePeerDrains) {
  const std::string blob(4u << 20, 'y');
  std::string received(blob.size(), '\0');
  std::thread reader([&] {
    EXPECT_TRUE(server_.read_exact(received.data(), received.size(), 10'000));
  });
  client_.write_exact(blob.data(), blob.size(), 10'000);
  reader.join();
  EXPECT_EQ(received, blob);
}

}  // namespace
}  // namespace ccd::util
