#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace ccd::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values should appear
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(41);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(43);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(47);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(53);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, DiscreteRejectsBadWeights) {
  Rng rng(59);
  EXPECT_THROW(rng.discrete({}), Error);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), Error);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), Error);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(61);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(71);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ccd::util
