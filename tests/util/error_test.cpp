#include "util/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hpp"

namespace ccd {
namespace {

TEST(ErrorTest, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw ConfigError("c"), Error);
  EXPECT_THROW(throw DataError("d"), Error);
  EXPECT_THROW(throw MathError("m"), Error);
  EXPECT_THROW(throw ContractError("x"), Error);
  EXPECT_THROW(throw Error("e"), std::runtime_error);
}

TEST(ErrorTest, MessagesArePreserved) {
  try {
    throw DataError("broken row 17");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken row 17");
  }
}

TEST(CheckMacroTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(CCD_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CCD_CHECK_MSG(true, "never shown"));
}

TEST(CheckMacroTest, FailureCarriesExpressionAndLocation) {
  try {
    CCD_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(CheckMacroTest, MessageStreamingWorks) {
  try {
    const int got = 7;
    CCD_CHECK_MSG(got == 3, "expected 3, got " << got);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected 3, got 7"),
              std::string::npos);
  }
}

TEST(LoggerTest, RespectsLevelThreshold) {
  util::Logger& logger = util::Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  const util::LogLevel old_level = logger.level();

  logger.set_level(util::LogLevel::kWarn);
  CCD_LOG_INFO << "info-hidden";
  CCD_LOG_WARN << "warn-shown";
  CCD_LOG_ERROR << "error-shown";

  logger.set_level(old_level);
  logger.set_sink(nullptr);

  const std::string out = sink.str();
  EXPECT_EQ(out.find("info-hidden"), std::string::npos);
  EXPECT_NE(out.find("warn-shown"), std::string::npos);
  EXPECT_NE(out.find("error-shown"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
}

TEST(LoggerTest, LevelNames) {
  EXPECT_STREQ(util::to_string(util::LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(util::to_string(util::LogLevel::kInfo), "INFO");
  EXPECT_STREQ(util::to_string(util::LogLevel::kWarn), "WARN");
  EXPECT_STREQ(util::to_string(util::LogLevel::kError), "ERROR");
  EXPECT_STREQ(util::to_string(util::LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace ccd
