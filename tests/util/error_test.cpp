#include "util/error.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hpp"

namespace ccd {
namespace {

TEST(ErrorTest, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw ConfigError("c"), Error);
  EXPECT_THROW(throw DataError("d"), Error);
  EXPECT_THROW(throw MathError("m"), Error);
  EXPECT_THROW(throw ContractError("x"), Error);
  EXPECT_THROW(throw Error("e"), std::runtime_error);
}

TEST(ErrorTest, MessagesArePreserved) {
  try {
    throw DataError("broken row 17");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken row 17");
  }
}

TEST(ErrorTest, StableCodesAndExitCodes) {
  EXPECT_EQ(Error("e").code(), ErrorCode::kGeneric);
  EXPECT_EQ(ConfigError("c").code(), ErrorCode::kConfig);
  EXPECT_EQ(DataError("d").code(), ErrorCode::kData);
  EXPECT_EQ(MathError("m").code(), ErrorCode::kMath);
  EXPECT_EQ(ContractError("x").code(), ErrorCode::kContract);
  EXPECT_EQ(exit_code(ErrorCode::kGeneric), 1);
  EXPECT_EQ(exit_code(ErrorCode::kConfig), 2);
  EXPECT_EQ(exit_code(ErrorCode::kData), 3);
  EXPECT_EQ(exit_code(ErrorCode::kMath), 4);
  EXPECT_EQ(exit_code(ErrorCode::kContract), 5);
  EXPECT_STREQ(to_string(ErrorCode::kMath), "math");
}

TEST(ErrorTest, ContextRendersInWhat) {
  MathError e("singular matrix");
  e.with_stage("fit").with_worker(12).with_round(3);
  EXPECT_STREQ(e.what(), "singular matrix [stage=fit worker=12 round=3]");
  EXPECT_EQ(e.message(), "singular matrix");
  EXPECT_EQ(e.context().stage, "fit");
  EXPECT_EQ(e.context().worker, 12);
  EXPECT_EQ(e.context().round, 3);
}

TEST(ErrorTest, InnermostAnnotationWins) {
  DataError e("bad record");
  e.with_worker(7);
  e.with_worker(99);  // outer boundary annotates later; must not overwrite
  e.with_stage("sanitize");
  e.with_stage("solve");
  EXPECT_EQ(e.context().worker, 7);
  EXPECT_EQ(e.context().stage, "sanitize");
}

TEST(ErrorTest, ContextMergeFillsOnlyUnsetFields) {
  ErrorContext inner;
  inner.worker = 4;
  ErrorContext outer;
  outer.worker = 8;
  outer.stage = "solve";
  inner.merge(outer);
  EXPECT_EQ(inner.worker, 4);
  EXPECT_EQ(inner.stage, "solve");

  Error e("boom");
  e.with_context(inner);
  EXPECT_STREQ(e.what(), "boom [stage=solve worker=4]");
}

TEST(ErrorTest, SuppressedFailuresAppendNote) {
  MathError e("first failure");
  e.with_suppressed_failures(3);
  EXPECT_STREQ(e.what(), "first failure (+3 more task failures)");
  e.with_stage("solve");
  EXPECT_STREQ(e.what(), "first failure [stage=solve] (+3 more task failures)");
}

TEST(ErrorTest, RethrowPreservesDynamicType) {
  // The mutate-and-rethrow idiom at recovery boundaries must not slice.
  try {
    try {
      throw MathError("inner");
    } catch (Error& e) {
      e.with_stage("fit");
      throw;
    }
  } catch (const MathError& e) {
    EXPECT_STREQ(e.what(), "inner [stage=fit]");
  } catch (...) {
    FAIL() << "dynamic type was lost";
  }
}

TEST(CheckMacroTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(CCD_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CCD_CHECK_MSG(true, "never shown"));
}

TEST(CheckMacroTest, FailureCarriesExpressionAndLocation) {
  try {
    CCD_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(CheckMacroTest, MessageStreamingWorks) {
  try {
    const int got = 7;
    CCD_CHECK_MSG(got == 3, "expected 3, got " << got);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected 3, got 7"),
              std::string::npos);
  }
}

TEST(LoggerTest, RespectsLevelThreshold) {
  util::Logger& logger = util::Logger::instance();
  std::ostringstream sink;
  logger.set_sink(&sink);
  const util::LogLevel old_level = logger.level();

  logger.set_level(util::LogLevel::kWarn);
  CCD_LOG_INFO << "info-hidden";
  CCD_LOG_WARN << "warn-shown";
  CCD_LOG_ERROR << "error-shown";

  logger.set_level(old_level);
  logger.set_sink(nullptr);

  const std::string out = sink.str();
  EXPECT_EQ(out.find("info-hidden"), std::string::npos);
  EXPECT_NE(out.find("warn-shown"), std::string::npos);
  EXPECT_NE(out.find("error-shown"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
}

TEST(LoggerTest, LevelNames) {
  EXPECT_STREQ(util::to_string(util::LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(util::to_string(util::LogLevel::kInfo), "INFO");
  EXPECT_STREQ(util::to_string(util::LogLevel::kWarn), "WARN");
  EXPECT_STREQ(util::to_string(util::LogLevel::kError), "ERROR");
  EXPECT_STREQ(util::to_string(util::LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace ccd
