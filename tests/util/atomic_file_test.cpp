#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace ccd::util {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_atomic_file_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "file.bin").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(AtomicFileTest, Fnv1aMatchesReferenceVector) {
  // Standard FNV-1a 64 test vector: "a" -> 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);  // offset basis
}

TEST_F(AtomicFileTest, WriteThenReadRoundTrips) {
  const std::string payload("binary\0payload", 14);
  atomic_write_file(path_, payload);
  EXPECT_EQ(read_file(path_), payload);
}

TEST_F(AtomicFileTest, WriteReplacesExistingFile) {
  atomic_write_file(path_, "old");
  atomic_write_file(path_, "new");
  EXPECT_EQ(read_file(path_), "new");
  // The temp file never lingers after a successful replace.
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, ReadMissingFileThrowsDataError) {
  EXPECT_THROW(read_file((dir_ / "absent").string()), DataError);
}

TEST_F(AtomicFileTest, FramedRoundTripPreservesVersionAndPayload) {
  const std::string payload("\x00\x01\x02framed", 9);
  write_framed_file(path_, "TEST", 3, payload);
  const FramedPayload got = read_framed_file(path_, "TEST", 1, 5);
  EXPECT_EQ(got.version, 3u);
  EXPECT_EQ(got.payload, payload);
}

TEST_F(AtomicFileTest, FramedRejectsWrongTag) {
  write_framed_file(path_, "AAAA", 1, "payload");
  EXPECT_THROW(read_framed_file(path_, "BBBB", 1, 1), DataError);
}

TEST_F(AtomicFileTest, FramedRejectsUnsupportedVersion) {
  write_framed_file(path_, "TEST", 9, "payload");
  EXPECT_THROW(read_framed_file(path_, "TEST", 1, 8), DataError);
}

TEST_F(AtomicFileTest, FramedRejectsTruncation) {
  write_framed_file(path_, "TEST", 1, "a fairly long payload to truncate");
  std::string bytes = read_file(path_);
  bytes.resize(bytes.size() - 5);
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW(read_framed_file(path_, "TEST", 1, 1), DataError);
  // Truncating into the header is rejected too.
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, 10);
  EXPECT_THROW(read_framed_file(path_, "TEST", 1, 1), DataError);
}

TEST_F(AtomicFileTest, FramedRejectsBitFlip) {
  write_framed_file(path_, "TEST", 1, "checksummed payload");
  std::string bytes = read_file(path_);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a payload bit
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW(read_framed_file(path_, "TEST", 1, 1), DataError);
}

TEST_F(AtomicFileTest, FramedRejectsWrongMagic) {
  write_framed_file(path_, "TEST", 1, "payload");
  std::string bytes = read_file(path_);
  bytes[0] = 'X';
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW(read_framed_file(path_, "TEST", 1, 1), DataError);
}

}  // namespace
}  // namespace ccd::util
