// util::metrics: histogram bucket boundaries and quantile estimates against
// known distributions, counter/histogram exactness under concurrent
// hammering, registry fetch-or-register + reset semantics, and the
// enable/disable gate. Value-level assertions are compiled out together
// with the subsystem under -DCCD_NO_METRICS; the stub-API test below keeps
// the call sites covered in that configuration.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ccd::util::metrics {
namespace {

TEST(MetricsHistogramTest, BucketBoundsArePowersOfTwo) {
  for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_DOUBLE_EQ(histogram_bucket_bound(i), std::ldexp(1.0, static_cast<int>(i)))
        << "bucket " << i;
  }
}

#ifndef CCD_NO_METRICS

TEST(MetricsHistogramTest, RecordsIntoTheRightBucket) {
  Histogram hist;
  hist.record(0.25);   // below 1 -> bucket 0
  hist.record(-3.0);   // negatives clamp into bucket 0
  hist.record(1.0);    // [1, 2) -> bucket 1
  hist.record(1.99);   // still bucket 1
  hist.record(500.0);  // [256, 512) -> bucket 9
  hist.record(1.0e9);  // beyond 2^26 -> overflow bucket
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(snap.min, -3.0);
  EXPECT_DOUBLE_EQ(snap.max, 1.0e9);
}

TEST(MetricsHistogramTest, ConstantDistributionCollapsesAllQuantiles) {
  Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.record(42.0);
  const HistogramSnapshot snap = hist.snapshot();
  // Every quantile of a point mass is the point (interpolation is clamped
  // to the observed extrema).
  EXPECT_DOUBLE_EQ(snap.p50(), 42.0);
  EXPECT_DOUBLE_EQ(snap.p95(), 42.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 42.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 42.0);
}

TEST(MetricsHistogramTest, UniformDistributionQuantilesWithinBucketError) {
  Histogram hist;
  for (int v = 1; v <= 1024; ++v) hist.record(static_cast<double>(v));
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1024u);
  EXPECT_DOUBLE_EQ(snap.sum, 1024.0 * 1025.0 / 2.0);
  // Power-of-two buckets bound the quantile error by one bucket width:
  // the true quantile q lands in bucket [b, 2b), so the estimate can be
  // off by at most a factor of 2 in either direction.
  const double p50 = snap.p50();
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  const double p95 = snap.p95();
  EXPECT_GE(p95, 512.0);
  EXPECT_LE(p95, 1024.0);
  // Quantiles are monotone and clamped to the observed range.
  EXPECT_LE(snap.quantile(0.0), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, snap.quantile(1.0));
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1024.0);
}

TEST(MetricsHistogramTest, BimodalDistributionSeparatesTails) {
  Histogram hist;
  for (int i = 0; i < 95; ++i) hist.record(2.5);     // bucket [2, 4)
  for (int i = 0; i < 5; ++i) hist.record(5000.0);   // bucket [4096, 8192)
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_LT(snap.p50(), 4.0);
  EXPECT_LT(snap.quantile(0.90), 4.0);
  EXPECT_GT(snap.p99(), 4096.0);
  EXPECT_LE(snap.p99(), 5000.0);  // clamped to the observed max
}

TEST(MetricsHistogramTest, SnapshotsMergeBucketwise) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.record(3.0);
  for (int i = 0; i < 20; ++i) b.record(100.0);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 30u);
  EXPECT_DOUBLE_EQ(merged.sum, 10 * 3.0 + 20 * 100.0);
  EXPECT_DOUBLE_EQ(merged.min, 3.0);
  EXPECT_DOUBLE_EQ(merged.max, 100.0);
  EXPECT_EQ(merged.buckets[2], 10u);   // [2, 4)
  EXPECT_EQ(merged.buckets[7], 20u);   // [64, 128)

  // Merging an empty snapshot is the identity.
  const HistogramSnapshot before = merged;
  merged.merge(HistogramSnapshot{});
  EXPECT_EQ(merged.count, before.count);
  EXPECT_DOUBLE_EQ(merged.min, before.min);
  EXPECT_DOUBLE_EQ(merged.max, before.max);

  // Histogram::merge folds a snapshot into a live histogram.
  Histogram target;
  target.record(1.5);
  target.merge(b.snapshot());
  EXPECT_EQ(target.snapshot().count, 21u);
}

TEST(MetricsConcurrencyTest, CountersAndHistogramsAreExactUnderContention) {
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 2000;
  Counter counter;
  Histogram hist;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      counter.add(1);
      hist.record(static_cast<double>(task % 8 + 1));
    }
  });
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
}

TEST(MetricsRegistryTest, FetchOrRegisterReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("ccd.test.counter");
  Counter& c2 = reg.counter("ccd.test.counter");
  EXPECT_EQ(&c1, &c2);
  c1.add(7);
  EXPECT_EQ(c2.value(), 7u);

  Gauge& g = reg.gauge("ccd.test.gauge");
  g.set(1.25);
  Histogram& h = reg.histogram("ccd.test.hist_us");
  h.record(10.0);

  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  // snapshot() is sorted by name.
  EXPECT_EQ(snaps[0].name, "ccd.test.counter");
  EXPECT_EQ(snaps[1].name, "ccd.test.gauge");
  EXPECT_EQ(snaps[2].name, "ccd.test.hist_us");
  EXPECT_EQ(snaps[0].counter, 7u);
  EXPECT_DOUBLE_EQ(snaps[1].gauge, 1.25);
  EXPECT_EQ(snaps[2].histogram.count, 1u);
}

TEST(MetricsRegistryTest, KindMismatchThrowsConfigError) {
  MetricsRegistry reg;
  reg.counter("ccd.test.name");
  EXPECT_THROW(reg.gauge("ccd.test.name"), ConfigError);
  EXPECT_THROW(reg.histogram("ccd.test.name"), ConfigError);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ccd.test.counter");
  Gauge& g = reg.gauge("ccd.test.gauge");
  Histogram& h = reg.histogram("ccd.test.hist_us");
  c.add(3);
  g.set(9.0);
  h.record(100.0);

  reg.reset();

  // Handles taken before the reset stay valid and observe the zeroing.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.snapshot().size(), 3u);

  // And keep working afterwards.
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.snapshot().min, 2.0);
}

TEST(MetricsRegistryTest, DisarmedMutationsAreDropped) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ccd.test.counter");
  Histogram& h = reg.histogram("ccd.test.hist_us");
  set_enabled(false);
  c.add(5);
  h.record(1.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricsScopedTimerTest, RecordsMicrosecondsAndSecondsOnce) {
  Histogram hist;
  double seconds = -1.0;
  {
    ScopedTimer timer(&hist, &seconds);
    const double first = timer.stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(timer.stop(), 0.0);  // idempotent
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(seconds, 0.0);
  // Microseconds recorded = seconds * 1e6 (same clock read).
  EXPECT_NEAR(hist.snapshot().sum, seconds * 1e6, 1e-6 * 1e6 + 1e-9);
}

#else  // CCD_NO_METRICS

TEST(MetricsStubTest, ApiIsPresentAndInert) {
  EXPECT_FALSE(compiled_in());
  EXPECT_FALSE(enabled());
  Counter& c = registry().counter("ccd.test.counter");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  Histogram& h = registry().histogram("ccd.test.hist_us");
  double seconds = -1.0;
  {
    ScopedTimer timer(&h, &seconds);
  }
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(seconds, 0.0);
  EXPECT_TRUE(registry().snapshot().empty());
}

#endif  // CCD_NO_METRICS

TEST(MetricsExportTest, ExportersProduceOutputInEitherBuild) {
  // Smoke coverage for the shared export surface; exact content depends on
  // what the process has recorded so far, so only shape is asserted.
  registry().counter("ccd.test.export").add(1);
  const std::string json = to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  const std::string prom = to_prometheus();
  if (compiled_in()) {
    EXPECT_NE(json.find("ccd.test.export"), std::string::npos);
    EXPECT_NE(prom.find("ccd_test_export"), std::string::npos);
  }
}

TEST(MetricsExportTest, PrometheusNamesAreAlwaysValid) {
  // Registry names are free-form; the exposition format is not. Register
  // names exercising every escape case and round-trip them through the
  // exporter: every metric-name token in the output must match
  // [a-zA-Z_:][a-zA-Z0-9_:]*.
  registry().counter("ccd.test.escape/slash").add(1);
  registry().counter("ccd.test.escape space").add(1);
  registry().counter("ccd.test.escape\"quote").add(1);
  registry().counter("ccd.test.escape{brace}").add(1);
  registry().counter("9leading.digit").add(1);
  registry().gauge("ccd.test.escape-dash.gauge").set(1.0);
  registry().histogram("ccd.test.escape+plus_us").record(3.0);

  const std::string prom = to_prometheus();
  if (!compiled_in()) return;

  const auto valid_head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  const auto valid_tail = [&](char c) {
    return valid_head(c) || (c >= '0' && c <= '9');
  };

  // Walk every line; the name token is the second word of "# TYPE <name>
  // <kind>" lines and the first word of sample lines.
  std::size_t names_checked = 0;
  std::size_t start = 0;
  while (start < prom.size()) {
    std::size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    std::string line = prom.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) line = line.substr(7);
    const std::string name = line.substr(0, line.find_first_of(" {"));
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(valid_head(name[0])) << "bad name start: " << name;
    for (const char c : name) {
      EXPECT_TRUE(valid_tail(c)) << "bad char in name: " << name;
    }
    ++names_checked;
  }
  EXPECT_GT(names_checked, 0u);

  // The escapes land where expected (and distinct inputs still export).
  EXPECT_NE(prom.find("ccd_test_escape_slash"), std::string::npos);
  EXPECT_NE(prom.find("ccd_test_escape_space"), std::string::npos);
  EXPECT_NE(prom.find("ccd_test_escape_brace_"), std::string::npos);
  EXPECT_NE(prom.find("_9leading_digit"), std::string::npos);
  EXPECT_NE(prom.find("ccd_test_escape_dash_gauge"), std::string::npos);
  EXPECT_NE(prom.find("ccd_test_escape_plus_us"), std::string::npos);
}

}  // namespace
}  // namespace ccd::util::metrics
