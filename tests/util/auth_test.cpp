// util::auth — the self-contained SHA-256 / HMAC-SHA256 used by the CSRV
// v3 token handshake, pinned to published test vectors (FIPS 180-4
// examples, RFC 4231) so a refactor cannot silently change the algorithm.
#include "util/auth.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ccd::util::auth {
namespace {

TEST(Sha256Test, Fips180KnownDigests) {
  EXPECT_EQ(
      to_hex(sha256("")),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(sha256("abc")),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      to_hex(sha256(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Multi-block message (> 64 bytes) exercises the block loop.
  EXPECT_EQ(
      to_hex(sha256(std::string(1'000'000, 'a'))),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacSha256Test, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  EXPECT_EQ(
      to_hex(hmac_sha256(std::string(20, '\x0b'), "Hi There")),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: a key shorter than the block size.
  EXPECT_EQ(
      to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 6: a key longer than the block size (gets hashed first).
  EXPECT_EQ(
      to_hex(hmac_sha256(std::string(131, '\xaa'),
                         "Test Using Larger Than Block-Size Key - "
                         "Hash Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HandshakeProofTest, DeterministicAndTokenAndNonceBound) {
  const std::string proof = handshake_proof("secret", "nonce-1");
  EXPECT_EQ(proof.size(), 64u);
  EXPECT_EQ(proof, handshake_proof("secret", "nonce-1"));
  EXPECT_NE(proof, handshake_proof("secret", "nonce-2"));
  EXPECT_NE(proof, handshake_proof("other", "nonce-1"));
  EXPECT_EQ(proof, to_hex(hmac_sha256("secret", "nonce-1")));
}

TEST(ConstantTimeEqualTest, MatchesStringEquality) {
  EXPECT_TRUE(constant_time_equal("", ""));
  EXPECT_TRUE(constant_time_equal("abcdef", "abcdef"));
  EXPECT_FALSE(constant_time_equal("abcdef", "abcdeg"));
  EXPECT_FALSE(constant_time_equal("abc", "abcdef"));  // length mismatch
  EXPECT_FALSE(constant_time_equal("abcdef", ""));
}

TEST(MakeNonceTest, FreshPerCall) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    const std::string nonce = make_nonce();
    EXPECT_EQ(nonce.size(), 32u);
    seen.insert(nonce);
  }
  EXPECT_EQ(seen.size(), 64u);  // no collision across 64 draws
}

}  // namespace
}  // namespace ccd::util::auth
