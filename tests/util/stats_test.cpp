#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::util {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, KnownSmallSample) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, SingleValueHasZeroVariance) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
}

TEST(AccumulatorTest, MergeMatchesDirectAccumulation) {
  Rng rng(3);
  Accumulator direct;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    direct.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), direct.count());
  EXPECT_NEAR(left.mean(), direct.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), direct.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), direct.min());
  EXPECT_DOUBLE_EQ(left.max(), direct.max());
}

TEST(AccumulatorTest, MergeWithEmptySides) {
  Accumulator a;
  Accumulator empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 5.0), 42.0);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile({1.0}, -1.0), Error);
  EXPECT_THROW(percentile({1.0}, 101.0), Error);
}

TEST(StatsFreeFunctionsTest, MeanStddevMedian) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(SummaryTest, FieldsAreConsistent) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p5, 5.95, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
}

TEST(SummaryTest, EmptySampleIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace ccd::util
