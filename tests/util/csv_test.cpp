#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace ccd::util {
namespace {

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("ccd_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST(ParseCsvLineTest, PlainFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  const CsvRow row = parse_csv_line("a,\"b,c\",d");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "b,c");
}

TEST(ParseCsvLineTest, DoubledQuotesEscape) {
  const CsvRow row = parse_csv_line("\"he said \"\"hi\"\"\"");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "he said \"hi\"");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const CsvRow row = parse_csv_line(",,");
  ASSERT_EQ(row.size(), 3u);
  for (const std::string& f : row) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLineTest, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv_line("\"open"), DataError);
}

TEST(ParseCsvLineTest, RejectsMidFieldQuote) {
  EXPECT_THROW(parse_csv_line("ab\"c\""), DataError);
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST_F(CsvFileTest, RoundTripsRows) {
  {
    CsvWriter writer(path_);
    writer.write_row({"id", "name", "note"});
    writer.write_row({"1", "alpha", "plain"});
    writer.write_row({"2", "beta", "has,comma"});
    writer.write_row({"3", "gamma", "has \"quote\""});
  }
  CsvReader reader(path_);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (CsvRow{"id", "name", "note"}));
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[2], "plain");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[2], "has,comma");
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[2], "has \"quote\"");
  EXPECT_FALSE(reader.next(row));
}

TEST_F(CsvFileTest, TracksLineNumbers) {
  {
    CsvWriter writer(path_);
    writer.write_row({"a"});
    writer.write_row({"b"});
  }
  CsvReader reader(path_);
  CsvRow row;
  reader.next(row);
  EXPECT_EQ(reader.line_number(), 1u);
  reader.next(row);
  EXPECT_EQ(reader.line_number(), 2u);
}

TEST_F(CsvFileTest, HandlesCrLfLineEndings) {
  {
    std::ofstream out(path_);
    out << "x,y\r\n1,2\r\n";
  }
  CsvReader reader(path_);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "y");  // no trailing \r
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "2");
}

TEST(CsvReaderTest, MissingFileThrows) {
  EXPECT_THROW(CsvReader("/nonexistent/dir/file.csv"), DataError);
}

TEST(CsvWriterTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), DataError);
}

}  // namespace
}  // namespace ccd::util
