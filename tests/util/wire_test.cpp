// util::wire: the byte codec + frame helpers now shared by checkpoint
// files, atomic_file framing, and the serve socket protocol. The contract
// under test is bitwise round-tripping (doubles travel as exact bit
// patterns) and strict decode failure: truncation, trailing bytes,
// oversized counts, and every frame-header corruption mode must surface
// as ccd::DataError, never UB or a half-decoded object.
#include "util/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace ccd::util::wire {
namespace {

TEST(WireCodecTest, RoundTripsAllPrimitives) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-0.1);
  w.str("hello wire");
  w.f64_vec({1.5, -2.25, 0.0});
  const std::string bytes = w.take();

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_EQ(r.str(), "hello wire");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.25, 0.0}));
  r.finish();
}

TEST(WireCodecTest, DoublesAreBitwiseExact) {
  // The durability contract is bitwise, so specials must survive: -0.0,
  // denormals, infinities, and a specific NaN payload.
  const std::vector<double> specials = {
      -0.0, std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN()};
  Writer w;
  for (const double v : specials) w.f64(v);
  const std::string bytes = w.take();
  Reader r(bytes);
  for (const double v : specials) {
    const double got = r.f64();
    std::uint64_t expect_bits;
    std::uint64_t got_bits;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::memcpy(&expect_bits, &v, sizeof(v));
    std::memcpy(&got_bits, &got, sizeof(got));
    EXPECT_EQ(got_bits, expect_bits);
  }
  r.finish();
}

TEST(WireCodecTest, TruncationThrowsDataError) {
  Writer w;
  w.u64(42);
  std::string bytes = w.take();
  bytes.pop_back();
  Reader r(bytes);
  EXPECT_THROW(r.u64(), DataError);
}

TEST(WireCodecTest, TrailingBytesFailFinish) {
  Writer w;
  w.u8(1);
  w.u8(2);
  const std::string bytes = w.take();
  Reader r(bytes);
  r.u8();
  EXPECT_THROW(r.finish(), DataError);
}

TEST(WireCodecTest, OversizedCountIsRejectedBeforeAllocation) {
  // A corrupt (but length-valid) buffer announcing 2^60 elements must be
  // rejected by count() because the remaining bytes cannot hold them.
  Writer w;
  w.u64(1ull << 60);
  const std::string bytes = w.take();
  Reader r(bytes);
  EXPECT_THROW(r.count(8), DataError);
}

TEST(WireCodecTest, CountAcceptsWhatFits) {
  Writer w;
  w.u64(3);
  w.f64(1.0);
  w.f64(2.0);
  w.f64(3.0);
  const std::string bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.count(8), 3u);
  r.f64();
  r.f64();
  r.f64();
  r.finish();
}

TEST(WireFrameTest, RoundTripsThroughHeaderAndPayload) {
  const std::string payload = "the payload\x00with a nul byte";
  const std::string frame = encode_frame("TSTF", 3, payload);
  ASSERT_GE(frame.size(), kFrameHeaderSize);

  const FrameHeader header =
      decode_frame_header(std::string_view(frame).substr(0, kFrameHeaderSize),
                          "TSTF", 1, 5, 1 << 20, "test");
  EXPECT_EQ(header.version, 3u);
  EXPECT_EQ(header.payload_size, payload.size());
  verify_frame_payload(header, frame.substr(kFrameHeaderSize), "test");
}

TEST(WireFrameTest, RejectsTagVersionSizeAndChecksumCorruption) {
  const std::string payload = "payload bytes";
  const std::string frame = encode_frame("TAGA", 2, payload);
  const auto header_of = [](const std::string& f) {
    return std::string_view(f).substr(0, kFrameHeaderSize);
  };

  // Wrong tag.
  EXPECT_THROW(
      decode_frame_header(header_of(frame), "TAGB", 1, 9, 1 << 20, "test"),
      DataError);
  // Version outside [min, max].
  EXPECT_THROW(
      decode_frame_header(header_of(frame), "TAGA", 3, 9, 1 << 20, "test"),
      DataError);
  // Payload larger than the cap.
  EXPECT_THROW(
      decode_frame_header(header_of(frame), "TAGA", 1, 9, 4, "test"),
      DataError);
  // Header truncated.
  EXPECT_THROW(decode_frame_header(std::string_view(frame).substr(0, 10),
                                   "TAGA", 1, 9, 1 << 20, "test"),
               DataError);

  // Flipped payload byte fails the checksum.
  const FrameHeader header =
      decode_frame_header(header_of(frame), "TAGA", 1, 9, 1 << 20, "test");
  std::string corrupt = frame.substr(kFrameHeaderSize);
  corrupt[0] = static_cast<char>(corrupt[0] ^ 0x40);
  EXPECT_THROW(verify_frame_payload(header, corrupt, "test"), DataError);
  // Wrong payload length is detected even with a matching prefix.
  EXPECT_THROW(
      verify_frame_payload(header, frame.substr(kFrameHeaderSize) + "x",
                           "test"),
      DataError);
}

TEST(WireFrameTest, ErrorsNameTheContext) {
  const std::string frame = encode_frame("TAGA", 2, "p");
  try {
    decode_frame_header(std::string_view(frame).substr(0, kFrameHeaderSize),
                        "TAGB", 1, 9, 1 << 20, "socket from test");
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("socket from test"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ccd::util::wire
