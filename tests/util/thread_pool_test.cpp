#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ccd::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(8);
  const std::size_t n = 5000;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1));
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("task 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ManySmallSubmissions) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  int total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 199 * 200 / 2);
}

TEST(ParallelForDefaultTest, Works) {
  std::vector<std::atomic<int>> hits(256);
  parallel_for_default(hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace ccd::util
