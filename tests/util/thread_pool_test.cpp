#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <latch>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace ccd::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(8);
  const std::size_t n = 5000;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1));
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("task 37");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCountsSuppressedFailures) {
  // Four chunks of one index each (n == threads), synchronized on a latch
  // so every task is already past the early-cancel check before the first
  // throw — all four must fail, deterministically.
  ThreadPool pool(4);
  std::latch sync(4);
  try {
    pool.parallel_for(4, [&](std::size_t i) {
      sync.arrive_and_wait();
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(+3 more task failures)"),
              std::string::npos)
        << e.what();
  }
}

TEST(ThreadPoolTest, SuppressedFailuresPreserveCcdErrorType) {
  ThreadPool pool(4);
  std::latch sync(4);
  try {
    pool.parallel_for(4, [&](std::size_t i) {
      sync.arrive_and_wait();
      throw MathError("chunk " + std::to_string(i));
    });
    FAIL() << "should have thrown";
  } catch (const MathError& e) {
    EXPECT_EQ(e.context().suppressed_failures, 3u);
    EXPECT_NE(std::string(e.what()).find("(+3 more task failures)"),
              std::string::npos)
        << e.what();
  } catch (const std::exception& e) {
    FAIL() << "dynamic type was lost: " << e.what();
  }
}

TEST(ThreadPoolTest, SingleFailureHasNoSuppressedNote) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 37) throw MathError("task 37");
    });
    FAIL() << "should have thrown";
  } catch (const MathError& e) {
    EXPECT_EQ(e.context().suppressed_failures, 0u);
    EXPECT_EQ(std::string(e.what()).find("more task failures"),
              std::string::npos)
        << e.what();
  }
}

TEST(ThreadPoolTest, ParallelForSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ManySmallSubmissions) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  int total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 199 * 200 / 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // Regression: an outer task calling parallel_for on its own pool used to
  // deadlock — the outer chunks held every worker slot while blocking on
  // inner futures that could never be scheduled.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(2,
                        [&](std::size_t) {
                          pool.parallel_for(4, [&](std::size_t i) {
                            if (i == 3) throw std::runtime_error("inner");
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  std::atomic<bool> inside{false};
  pool.parallel_for(1, [&](std::size_t) {
    inside.store(pool.on_worker_thread());
  });
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPoolTest, WorkerOfAnotherPoolIsNotNested) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<bool> on_inner{true};
  outer.parallel_for(1, [&](std::size_t) {
    on_inner.store(inner.on_worker_thread());
  });
  EXPECT_FALSE(on_inner.load());
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDegradesToInline) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(pool.thread_count(), 0u);
  // parallel_for still makes progress (inline), submit refuses.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(SharedPoolTest, IsAProcessWideSingleton) {
  EXPECT_EQ(&shared_pool(), &shared_pool());
  EXPECT_GE(shared_pool().thread_count(), 1u);
}

TEST(ParallelForDefaultTest, Works) {
  std::vector<std::atomic<int>> hits(256);
  parallel_for_default(hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForDefaultTest, NestedThroughSharedPool) {
  std::atomic<int> counter{0};
  parallel_for_default(3, [&](std::size_t) {
    parallel_for_default(5, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 15);
}

TEST(ThreadPoolContentionTest, SessionStyleBurstsLoseNoTasksAndSettle) {
  // The serve engine's workload shape: N client threads each firing many
  // small parallel_for bursts at one shared pool, some of them cancelled
  // mid-flight. Invariants: (a) an uncancelled burst covers every index
  // exactly once, (b) a cancelled burst never runs an index twice, and
  // (c) once everything joins, the pool's queue-depth and busy-worker
  // gauges are back to zero — nothing was lost or leaked in the queue.
  ThreadPool pool(4);
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kBurstsPerClient = 40;
  constexpr std::size_t kBurstSize = 64;

  std::atomic<std::uint64_t> clean_hits{0};
  std::atomic<std::uint64_t> expected_clean{0};
  std::atomic<bool> overcounted{false};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t b = 0; b < kBurstsPerClient; ++b) {
        // Every third burst per client runs under a token that cancels
        // partway through.
        const bool cancelled_burst = (b % 3) == 2;
        std::vector<std::atomic<std::uint8_t>> hits(kBurstSize);
        if (cancelled_burst) {
          CancellationToken token;
          std::atomic<std::size_t> started{0};
          pool.parallel_for(
              kBurstSize,
              [&](std::size_t i) {
                if (started.fetch_add(1) == kBurstSize / 4) {
                  token.request_cancel();
                }
                if (hits[i].fetch_add(1) != 0) overcounted.store(true);
              },
              &token);
          // Cancellation is silent; skipped indices simply never ran.
          for (auto& h : hits) {
            if (h.load() > 1) overcounted.store(true);
          }
        } else {
          pool.parallel_for(kBurstSize, [&](std::size_t i) {
            if (hits[i].fetch_add(1) != 0) overcounted.store(true);
            clean_hits.fetch_add(1);
          });
          expected_clean.fetch_add(kBurstSize);
          for (std::size_t i = 0; i < kBurstSize; ++i) {
            if (hits[i].load() != 1) overcounted.store(true);
          }
        }
        // Interleave with unrelated small work, as concurrent sessions do.
        (void)c;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_FALSE(overcounted.load());
  EXPECT_EQ(clean_hits.load(), expected_clean.load());

#ifndef CCD_NO_METRICS
  // All bursts joined: the gauges must settle back to zero. Workers
  // decrement busy_workers *after* completing the task that unblocks
  // parallel_for, so join the workers first — after shutdown() every
  // decrement has retired and the read is race-free.
  pool.shutdown();
  using metrics::MetricSnapshot;
  double queue_depth = -1.0;
  double busy = -1.0;
  for (const MetricSnapshot& m : metrics::registry().snapshot()) {
    if (m.name == "ccd.pool.queue_depth") queue_depth = m.gauge;
    if (m.name == "ccd.pool.busy_workers") busy = m.gauge;
  }
  EXPECT_EQ(queue_depth, 0.0);
  EXPECT_EQ(busy, 0.0);
#endif
}

}  // namespace
}  // namespace ccd::util
