#include "util/string_util.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::util {
namespace {

TEST(SplitTest, SplitsOnDelimiter) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, SingleFieldWithoutDelimiter) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWsTest, DropsRunsOfWhitespace) {
  const auto parts = split_ws("  alpha \t beta\ngamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[1], "beta");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(SplitWsTest, EmptyAndAllWhitespace) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ToLowerTest, LowercasesAscii) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("feedback", "feed"));
  EXPECT_FALSE(starts_with("feed", "feedback"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ParseDoubleTest, ParsesAndTrims) {
  EXPECT_DOUBLE_EQ(parse_double(" 2.5 "), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), ConfigError);
  EXPECT_THROW(parse_double("1.5x"), ConfigError);
  EXPECT_THROW(parse_double(""), ConfigError);
}

TEST(ParseIntTest, ParsesAndRejects) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("4.2"), ConfigError);
  EXPECT_THROW(parse_int("x"), ConfigError);
}

TEST(ParseBoolTest, AcceptsCommonForms) {
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("True"));
  EXPECT_TRUE(parse_bool("YES"));
  EXPECT_TRUE(parse_bool("on"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("No"));
  EXPECT_FALSE(parse_bool("off"));
  EXPECT_THROW(parse_bool("maybe"), ConfigError);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

}  // namespace
}  // namespace ccd::util
