#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace ccd::util {
namespace {

/// RAII guard: every test leaves the process-wide injector disarmed.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::instance().disable(); }
};

TEST(FaultInjectorTest, DisabledByDefaultAndZeroRateNeverFires) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.armed());

  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 1;
  config.rate = 0.0;
  fi.configure(config);
  EXPECT_TRUE(fi.armed());
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_FALSE(fi.should_inject("site.a", key));
  }
  EXPECT_EQ(fi.total_injected(), 0u);
}

TEST(FaultInjectorTest, RateOneAlwaysFires) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 9;
  config.rate = 1.0;
  fi.configure(config);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(fi.should_inject("site.a", key));
  }
  EXPECT_EQ(fi.total_injected(), 100u);
  EXPECT_EQ(fi.injected("site.a"), 100u);
  EXPECT_EQ(fi.injected("site.b"), 0u);
}

TEST(FaultInjectorTest, DecisionIsDeterministicPerSeedSiteKey) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 1234;
  config.rate = 0.3;
  fi.configure(config);

  std::vector<bool> first;
  for (std::uint64_t key = 0; key < 500; ++key) {
    first.push_back(fi.should_inject("site.det", key));
  }
  // Same config again (counters reset): identical decisions, any order.
  fi.configure(config);
  for (int key = 499; key >= 0; --key) {
    EXPECT_EQ(fi.should_inject("site.det", static_cast<std::uint64_t>(key)),
              first[static_cast<std::size_t>(key)])
        << key;
  }
}

TEST(FaultInjectorTest, SeedAndSiteChangeTheDecisionPattern) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 1;
  config.rate = 0.5;
  fi.configure(config);
  std::vector<bool> seed1, site_b;
  for (std::uint64_t key = 0; key < 300; ++key) {
    seed1.push_back(fi.should_inject("site.a", key));
    site_b.push_back(fi.should_inject("site.b", key));
  }
  config.seed = 2;
  fi.configure(config);
  std::vector<bool> seed2;
  for (std::uint64_t key = 0; key < 300; ++key) {
    seed2.push_back(fi.should_inject("site.a", key));
  }
  EXPECT_NE(seed1, seed2);
  EXPECT_NE(seed1, site_b);
}

TEST(FaultInjectorTest, RateIsApproximatelyHonored) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 77;
  config.rate = 0.1;
  fi.configure(config);
  const std::size_t n = 20000;
  std::size_t fired = 0;
  for (std::uint64_t key = 0; key < n; ++key) {
    if (fi.should_inject("site.rate", key)) ++fired;
  }
  const double observed = static_cast<double>(fired) / n;
  EXPECT_NEAR(observed, 0.1, 0.02);
}

TEST(FaultInjectorTest, PerSiteRateOverridesDefault) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 5;
  config.rate = 0.0;
  config.site_rates["site.hot"] = 1.0;
  fi.configure(config);
  EXPECT_TRUE(fi.should_inject("site.hot", 42));
  EXPECT_FALSE(fi.should_inject("site.cold", 42));
  EXPECT_EQ(fi.injected("site.hot"), 1u);
}

TEST(FaultInjectorTest, FaultPointMacroThrowsConfiguredType) {
  InjectorGuard guard;
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 3;
  config.rate = 1.0;
  FaultInjector::instance().configure(config);
  try {
    CCD_FAULT_POINT("site.macro", 7, MathError);
    FAIL() << "should have thrown";
  } catch (const MathError& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault at site.macro"),
              std::string::npos);
  }
  FaultInjector::instance().disable();
  EXPECT_NO_THROW(CCD_FAULT_POINT("site.macro", 7, MathError));
}

TEST(FaultInjectorTest, DisableResetsCounters) {
  InjectorGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  FaultInjectorConfig config;
  config.enabled = true;
  config.seed = 3;
  config.rate = 1.0;
  fi.configure(config);
  (void)fi.should_inject("site.x", 1);
  EXPECT_EQ(fi.total_injected(), 1u);
  fi.disable();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.total_injected(), 0u);
  EXPECT_EQ(fi.injected("site.x"), 0u);
}

}  // namespace
}  // namespace ccd::util
