#include "math/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ccd::math {
namespace {

TEST(GoldenSectionTest, FindsParabolaMaximum) {
  const auto f = [](double x) { return -(x - 2.0) * (x - 2.0) + 5.0; };
  const ScalarOptimum opt = golden_section_max(f, 0.0, 10.0, 1e-10);
  EXPECT_NEAR(opt.x, 2.0, 1e-7);
  EXPECT_NEAR(opt.value, 5.0, 1e-12);
}

TEST(GoldenSectionTest, MaximumAtBoundary) {
  const auto f = [](double x) { return x; };  // increasing
  const ScalarOptimum opt = golden_section_max(f, 0.0, 3.0, 1e-10);
  EXPECT_NEAR(opt.x, 3.0, 1e-7);
}

TEST(GoldenSectionTest, DegenerateInterval) {
  const auto f = [](double x) { return -x * x; };
  const ScalarOptimum opt = golden_section_max(f, 1.0, 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(opt.x, 1.0);
  EXPECT_THROW(golden_section_max(f, 2.0, 1.0), Error);
}

TEST(GridRefineTest, FindsGlobalMaxOfMultimodal) {
  // Two humps: the taller one is at x ~ 4.
  const auto f = [](double x) {
    return std::exp(-(x - 1.0) * (x - 1.0)) +
           1.5 * std::exp(-(x - 4.0) * (x - 4.0));
  };
  const ScalarOptimum opt = grid_refine_max(f, 0.0, 6.0, 301, 5);
  EXPECT_NEAR(opt.x, 4.0, 1e-3);
  EXPECT_NEAR(opt.value, 1.5, 1e-3);
}

TEST(GridRefineTest, HandlesConstantFunction) {
  const auto f = [](double) { return 7.0; };
  const ScalarOptimum opt = grid_refine_max(f, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(opt.value, 7.0);
}

TEST(GridRefineTest, InputValidation) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW(grid_refine_max(f, 1.0, 0.0), Error);
  EXPECT_THROW(grid_refine_max(f, 0.0, 1.0, 2), Error);
}

TEST(BisectRootTest, FindsRootOfCubic) {
  const auto f = [](double x) { return x * x * x - 2.0; };
  const double root = bisect_root(f, 0.0, 2.0);
  EXPECT_NEAR(root, std::cbrt(2.0), 1e-9);
}

TEST(BisectRootTest, ExactEndpointRoots) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(bisect_root(f, 1.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(bisect_root(f, -3.0, 1.0), 1.0);
}

TEST(BisectRootTest, NoSignChangeThrows) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bisect_root(f, -1.0, 1.0), MathError);
}

TEST(BisectRootTest, DecreasingFunction) {
  const auto f = [](double x) { return 3.0 - x; };
  EXPECT_NEAR(bisect_root(f, 0.0, 10.0), 3.0, 1e-9);
}

}  // namespace
}  // namespace ccd::math
