#include "math/piecewise.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::math {
namespace {

PiecewiseLinear ramp() {
  return PiecewiseLinear({0.0, 1.0, 3.0}, {0.0, 2.0, 2.0});
}

TEST(PiecewiseLinearTest, EvaluatesAtKnots) {
  const PiecewiseLinear f = ramp();
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(3.0), 2.0);
}

TEST(PiecewiseLinearTest, InterpolatesBetweenKnots) {
  const PiecewiseLinear f = ramp();
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(2.0), 2.0);  // flat segment
}

TEST(PiecewiseLinearTest, ClampsOutsideDomain) {
  const PiecewiseLinear f = ramp();
  EXPECT_DOUBLE_EQ(f(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(f(100.0), 2.0);
}

TEST(PiecewiseLinearTest, Slopes) {
  const PiecewiseLinear f = ramp();
  EXPECT_DOUBLE_EQ(f.slope(0), 2.0);
  EXPECT_DOUBLE_EQ(f.slope(1), 0.0);
  EXPECT_THROW(f.slope(2), Error);
}

TEST(PiecewiseLinearTest, SegmentOf) {
  const PiecewiseLinear f = ramp();
  EXPECT_EQ(f.segment_of(-1.0), 0u);
  EXPECT_EQ(f.segment_of(0.5), 0u);
  EXPECT_EQ(f.segment_of(1.5), 1u);
  EXPECT_EQ(f.segment_of(99.0), 1u);
}

TEST(PiecewiseLinearTest, MonotonicityDetection) {
  EXPECT_TRUE(ramp().is_monotone_non_decreasing());
  const PiecewiseLinear dec({0.0, 1.0}, {2.0, 1.0});
  EXPECT_FALSE(dec.is_monotone_non_decreasing());
}

TEST(PiecewiseLinearTest, InverseOnMonotone) {
  const PiecewiseLinear f = ramp();
  EXPECT_DOUBLE_EQ(f.inverse(1.0), 0.5);
  EXPECT_DOUBLE_EQ(f.inverse(0.0), 0.0);
  // Flat region: smallest preimage.
  EXPECT_DOUBLE_EQ(f.inverse(2.0), 1.0);
}

TEST(PiecewiseLinearTest, InverseRejectsOutOfRange) {
  const PiecewiseLinear f = ramp();
  EXPECT_THROW(f.inverse(3.0), MathError);
  EXPECT_THROW(f.inverse(-1.0), MathError);
}

TEST(PiecewiseLinearTest, InverseRejectsNonMonotone) {
  const PiecewiseLinear dec({0.0, 1.0}, {2.0, 1.0});
  EXPECT_THROW(dec.inverse(1.5), Error);
}

TEST(PiecewiseLinearTest, SingleKnotActsAsConstant) {
  const PiecewiseLinear f({1.0}, {5.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(2.0), 5.0);
}

TEST(PiecewiseLinearTest, ConstructionValidation) {
  EXPECT_THROW(PiecewiseLinear({}, {}), Error);
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), Error);  // not strict
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0}, {1.0}), Error);       // mismatch
}

TEST(PiecewiseLinearTest, ToStringListsKnots) {
  const std::string s = ramp().to_string(1);
  EXPECT_NE(s.find("(0.0, 0.0)"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

}  // namespace
}  // namespace ccd::math
