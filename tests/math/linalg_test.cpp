#include "math/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::math {
namespace {

TEST(SolveLuTest, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b = {5.0, 10.0};
  const std::vector<double> x = solve_lu(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLuTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> x = solve_lu(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLuTest, SingularMatrixThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_lu(a, {1.0, 2.0}), MathError);
}

TEST(SolveLuTest, ShapeChecks) {
  EXPECT_THROW(solve_lu(Matrix(2, 3), {1.0, 2.0}), Error);
  EXPECT_THROW(solve_lu(Matrix(2, 2), {1.0}), Error);
}

TEST(SolveLuTest, RandomSystemsRoundTrip) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 6));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
      a(r, r) += 5.0;  // diagonally dominant => well conditioned
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.normal();
    const std::vector<double> b = a * x_true;
    const std::vector<double> x = solve_lu(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
  }
}

TEST(LeastSquaresTest, ExactSystemHasZeroResidual) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b = {2.0, 3.0, 5.0};  // consistent
  const LeastSquaresResult r = solve_least_squares(a, b);
  EXPECT_NEAR(r.coefficients[0], 2.0, 1e-12);
  EXPECT_NEAR(r.coefficients[1], 3.0, 1e-12);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-10);
}

TEST(LeastSquaresTest, MatchesNormalEquations) {
  // Overdetermined line fit: y = 2x + 1 with symmetric perturbation.
  Matrix a(4, 2);
  std::vector<double> b(4);
  const double xs[] = {0.0, 1.0, 2.0, 3.0};
  const double ys[] = {1.1, 2.9, 5.1, 6.9};
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = xs[i];
    b[i] = ys[i];
  }
  const LeastSquaresResult r = solve_least_squares(a, b);
  EXPECT_NEAR(r.coefficients[1], 1.96, 1e-9);
  EXPECT_NEAR(r.coefficients[0], 1.06, 1e-9);
  // Residual equals direct computation.
  double rss = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double pred = r.coefficients[0] + r.coefficients[1] * xs[i];
    rss += (ys[i] - pred) * (ys[i] - pred);
  }
  EXPECT_NEAR(r.residual_norm, std::sqrt(rss), 1e-9);
}

TEST(LeastSquaresTest, RankDeficientThrows) {
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column is a multiple of the first
  }
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), MathError);
}

TEST(LeastSquaresTest, UnderdeterminedThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(2, 3), {1.0, 2.0}), Error);
}

TEST(DeterminantTest, KnownValues) {
  EXPECT_DOUBLE_EQ(determinant(Matrix{{2.0}}), 2.0);
  EXPECT_DOUBLE_EQ(determinant(Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0);
  EXPECT_DOUBLE_EQ(determinant(Matrix::identity(4)), 1.0);
}

TEST(DeterminantTest, SingularIsZero) {
  EXPECT_DOUBLE_EQ(determinant(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 0.0);
}

TEST(DeterminantTest, SwapChangesSign) {
  // Permutation matrix with one swap has determinant -1.
  const Matrix p{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(determinant(p), -1.0);
}

}  // namespace
}  // namespace ccd::math
