#include "math/polyfit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::math {
namespace {

TEST(PolyFitTest, RecoversExactQuadratic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = 0.3 * i;
    xs.push_back(x);
    ys.push_back(2.0 - 1.5 * x + 0.5 * x * x);
  }
  const PolyFitResult fit = polyfit(xs, ys, 2);
  EXPECT_NEAR(fit.polynomial.coefficient(0), 2.0, 1e-9);
  EXPECT_NEAR(fit.polynomial.coefficient(1), -1.5, 1e-9);
  EXPECT_NEAR(fit.polynomial.coefficient(2), 0.5, 1e-9);
  EXPECT_NEAR(fit.norm_of_residuals, 0.0, 1e-9);
}

TEST(PolyFitTest, RecoversLine) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {3.0, 5.0, 7.0, 9.0};  // 2x + 1
  const PolyFitResult fit = polyfit(xs, ys, 1);
  EXPECT_NEAR(fit.polynomial.coefficient(0), 1.0, 1e-9);
  EXPECT_NEAR(fit.polynomial.coefficient(1), 2.0, 1e-9);
}

TEST(PolyFitTest, NoisyQuadraticCloseToTruth) {
  util::Rng rng(4);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    xs.push_back(x);
    ys.push_back(-1.0 * x * x + 8.0 * x + 2.0 + rng.normal(0.0, 0.3));
  }
  const PolyFitResult fit = polyfit(xs, ys, 2);
  EXPECT_NEAR(fit.polynomial.coefficient(2), -1.0, 0.1);
  EXPECT_NEAR(fit.polynomial.coefficient(1), 8.0, 0.3);
  EXPECT_NEAR(fit.polynomial.coefficient(0), 2.0, 0.3);
}

TEST(PolyFitTest, ResidualNormMatchesDirectComputation) {
  util::Rng rng(8);
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(rng.uniform(0.0, 1.0));
    ys.push_back(rng.uniform(0.0, 1.0));
  }
  const PolyFitResult fit = polyfit(xs, ys, 3);
  EXPECT_NEAR(fit.norm_of_residuals,
              norm_of_residuals(fit.polynomial, xs, ys), 1e-6);
}

TEST(PolyFitTest, HigherDegreeNeverIncreasesResidual) {
  util::Rng rng(15);
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 5.0);
    xs.push_back(x);
    ys.push_back(std::sin(x) + rng.normal(0.0, 0.1));
  }
  const std::vector<double> nors = nor_by_degree(xs, ys, 1, 6);
  ASSERT_EQ(nors.size(), 6u);
  for (std::size_t i = 1; i < nors.size(); ++i) {
    EXPECT_LE(nors[i], nors[i - 1] + 1e-9)
        << "degree " << i + 1 << " fits worse than degree " << i;
  }
}

TEST(PolyFitTest, DegenerateXFallsBackToConstant) {
  // All x identical: only a constant is identifiable; the internal scale
  // guard must avoid dividing by zero. Degree-0 fit is the mean.
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const PolyFitResult fit = polyfit(xs, ys, 0);
  EXPECT_NEAR(fit.polynomial(2.0), 2.0, 1e-12);
}

TEST(PolyFitTest, InputValidation) {
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0}, 1), Error);
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0, 2.0}, 2), Error);  // too few points
  EXPECT_THROW(nor_by_degree({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, 3, 1), Error);
}

TEST(PolyFitTest, SingularDesignMatrixThrowsMathError) {
  // All-equal x at degree 2: centering collapses to u == 0 everywhere, so
  // the Vandermonde columns beyond the constant are identically zero and
  // least squares must report rank deficiency (not return garbage).
  const std::vector<double> xs = {2.0, 2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(polyfit(xs, ys, 2), MathError);
}

TEST(PolyFitTest, WideXRangeIsWellConditioned) {
  // Centering/scaling should keep large-x Vandermonde systems solvable.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 60; ++i) {
    const double x = 1000.0 + 10.0 * i;
    xs.push_back(x);
    ys.push_back(3.0 + 0.001 * x + 2e-6 * x * x);
  }
  const PolyFitResult fit = polyfit(xs, ys, 2);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(fit.polynomial(xs[i]), ys[i], 1e-6);
  }
}

}  // namespace
}  // namespace ccd::math
