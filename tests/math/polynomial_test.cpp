#include "math/polynomial.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::math {
namespace {

TEST(PolynomialTest, EvaluationHorner) {
  const Polynomial p({1.0, -2.0, 3.0});  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p(2.0), 9.0);
  EXPECT_DOUBLE_EQ(p(-1.0), 6.0);
}

TEST(PolynomialTest, DefaultIsZero) {
  const Polynomial p;
  EXPECT_EQ(p.degree(), 0u);
  EXPECT_DOUBLE_EQ(p(123.0), 0.0);
}

TEST(PolynomialTest, TrailingZerosTrimmed) {
  const Polynomial p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1u);
}

TEST(PolynomialTest, CoefficientBeyondDegreeIsZero) {
  const Polynomial p({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.coefficient(5), 0.0);
}

TEST(PolynomialTest, FactoryHelpers) {
  EXPECT_DOUBLE_EQ(Polynomial::constant(4.0)(10.0), 4.0);
  EXPECT_DOUBLE_EQ(Polynomial::linear(1.0, 2.0)(3.0), 7.0);
  EXPECT_DOUBLE_EQ(Polynomial::quadratic(0.0, 0.0, 1.0)(3.0), 9.0);
}

TEST(PolynomialTest, Derivative) {
  const Polynomial p({5.0, 3.0, 2.0, 1.0});  // 5 + 3x + 2x^2 + x^3
  const Polynomial d = p.derivative();
  // 3 + 4x + 3x^2
  EXPECT_DOUBLE_EQ(d.coefficient(0), 3.0);
  EXPECT_DOUBLE_EQ(d.coefficient(1), 4.0);
  EXPECT_DOUBLE_EQ(d.coefficient(2), 3.0);
  EXPECT_EQ(Polynomial::constant(7.0).derivative().degree(), 0u);
  EXPECT_DOUBLE_EQ(Polynomial::constant(7.0).derivative()(1.0), 0.0);
}

TEST(PolynomialTest, AntiderivativeInvertsDerivative) {
  const Polynomial p({1.0, 2.0, 3.0});
  const Polynomial back = p.antiderivative(42.0).derivative();
  for (double x : {-2.0, 0.0, 1.5}) {
    EXPECT_NEAR(back(x), p(x), 1e-12);
  }
  EXPECT_DOUBLE_EQ(p.antiderivative(42.0)(0.0), 42.0);
}

TEST(PolynomialTest, Arithmetic) {
  const Polynomial a({1.0, 1.0});        // 1 + x
  const Polynomial b({0.0, 0.0, 2.0});   // 2x^2
  EXPECT_DOUBLE_EQ((a + b)(2.0), 11.0);
  EXPECT_DOUBLE_EQ((b - a)(2.0), 5.0);
  EXPECT_DOUBLE_EQ((a * 3.0)(1.0), 6.0);
}

TEST(PolynomialTest, ProductExpandsCorrectly) {
  const Polynomial a({1.0, 1.0});   // (1 + x)
  const Polynomial b({-1.0, 1.0});  // (x - 1)
  const Polynomial c = a * b;       // x^2 - 1
  EXPECT_DOUBLE_EQ(c.coefficient(0), -1.0);
  EXPECT_DOUBLE_EQ(c.coefficient(1), 0.0);
  EXPECT_DOUBLE_EQ(c.coefficient(2), 1.0);
}

TEST(PolynomialTest, LinearRoot) {
  const Polynomial p = Polynomial::linear(-6.0, 2.0);  // 2x - 6
  const auto roots = p.real_roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_DOUBLE_EQ(roots[0], 3.0);
}

TEST(PolynomialTest, QuadraticTwoRoots) {
  const Polynomial p = Polynomial::quadratic(-6.0, 1.0, 1.0);  // x^2 + x - 6
  const auto roots = p.real_roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], -3.0, 1e-12);
  EXPECT_NEAR(roots[1], 2.0, 1e-12);
}

TEST(PolynomialTest, QuadraticNoRealRoots) {
  const Polynomial p = Polynomial::quadratic(1.0, 0.0, 1.0);  // x^2 + 1
  EXPECT_TRUE(p.real_roots().empty());
}

TEST(PolynomialTest, QuadraticDoubleRoot) {
  const Polynomial p = Polynomial::quadratic(1.0, -2.0, 1.0);  // (x-1)^2
  const auto roots = p.real_roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_DOUBLE_EQ(roots[0], 1.0);
}

TEST(PolynomialTest, RootsOfConstant) {
  EXPECT_TRUE(Polynomial::constant(5.0).real_roots().empty());
  EXPECT_THROW(Polynomial::constant(0.0).real_roots(), MathError);
}

TEST(PolynomialTest, RootsOfHighDegreeThrow) {
  const Polynomial p({0.0, 0.0, 0.0, 1.0});  // x^3
  EXPECT_THROW(p.real_roots(), MathError);
}

TEST(PolynomialTest, ToStringReadable) {
  const Polynomial p = Polynomial::quadratic(2.0, -8.0, 1.0);
  const std::string s = p.to_string(1);
  EXPECT_NE(s.find("y^2"), std::string::npos);
  EXPECT_NE(s.find("8.0"), std::string::npos);
}

}  // namespace
}  // namespace ccd::math
