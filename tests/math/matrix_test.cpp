#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::math {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, InitializerListConstruction) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(MatrixTest, OutOfRangeAccessThrows) {
  const Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transpose) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, MatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, ProductShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, Error);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ((a * Matrix::identity(2)).max_abs_diff(a), 0.0);
  EXPECT_DOUBLE_EQ((Matrix::identity(2) * a).max_abs_diff(a), 0.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v = {1.0, -1.0};
  const std::vector<double> out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(MatrixTest, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 5.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 3.0)(0, 1), 6.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix m{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(MatrixTest, ToStringContainsEntries) {
  const Matrix m{{1.5, -2.0}};
  const std::string s = m.to_string(1);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("-2.0"), std::string::npos);
}

TEST(VectorOpsTest, Norm2AndDot) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), Error);
}

}  // namespace
}  // namespace ccd::math
