// Adversarial scenarios over the serve ingest path: a Sybil-swarm
// scenario's observation feed (scenario::IngestFeed) drives an ingest
// session through serve::Engine, and the outcome must reconcile exactly
// with the same feed driven into a bare serve::Session in-process —
// bitwise-identical posted contracts after every round, bitwise-identical
// cumulative requester utility, and `ccd.serve.*` counters that account
// for every request the scenario issued.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "serve/engine.hpp"
#include "serve/session.hpp"
#include "util/config.hpp"
#include "util/metrics.hpp"

namespace ccd::serve {
namespace {

constexpr std::uint64_t kRounds = 8;

scenario::ScenarioSpec sybil_spec() {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::preset("sybil");
  util::ParamMap overrides;
  overrides.set("workers", "10");
  overrides.set("malicious", "3");
  overrides.set("communities", "2");
  overrides.set("sybil", "3");
  overrides.set("rounds", std::to_string(kRounds));
  overrides.set("seed", "11");
  spec.apply_params(overrides);
  return spec;
}

OpenParams ingest_open(std::uint64_t workers) {
  OpenParams params;
  params.mode = SessionMode::kIngest;
  params.rounds = 0;  // unbounded
  params.workers = workers;
  params.refit_every = 4;
  return params;
}

std::vector<IngestObservation> to_wire(
    const std::vector<scenario::IngestFeed::Observation>& observations) {
  std::vector<IngestObservation> wire(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    wire[i].effort = observations[i].effort;
    wire[i].feedback = observations[i].feedback;
    wire[i].accuracy_sample = observations[i].accuracy_sample;
  }
  return wire;
}

void expect_contracts_equal(const std::vector<contract::Contract>& a,
                            const std::vector<contract::Contract>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].is_zero(), b[i].is_zero()) << "worker " << i;
    if (a[i].is_zero()) continue;
    ASSERT_EQ(a[i].intervals(), b[i].intervals()) << "worker " << i;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      EXPECT_EQ(a[i].knot(l), b[i].knot(l)) << "worker " << i;
      EXPECT_EQ(a[i].payment(l), b[i].payment(l)) << "worker " << i;
    }
  }
}

std::uint64_t counter_value(const std::string& name) {
  namespace metrics = util::metrics;
  for (const metrics::MetricSnapshot& m : metrics::registry().snapshot()) {
    if (m.name == name) return m.counter;
  }
  return 0;
}

TEST(ScenarioIngestTest, EngineFeedMatchesBareSessionBitwise) {
  const scenario::ScenarioSpec spec = sybil_spec();
  const std::uint64_t n = spec.workers + spec.sybil;

  // Reference: the same scenario feed into a bare Session, no engine.
  std::vector<std::vector<contract::Contract>> reference_contracts;
  double reference_utility = 0.0;
  {
    Session session("ref", ingest_open(n), Session::Env{});
    scenario::IngestFeed feed(spec);
    ASSERT_EQ(feed.worker_count(), n);
    for (std::uint64_t t = 0; t < kRounds; ++t) {
      const auto observations = feed.round(session.contracts());
      session.ingest(to_wire(observations), nullptr);
      reference_contracts.push_back(session.contracts());
    }
    reference_utility = session.status().cumulative_requester_utility;
  }
  // The feed produced real activity and the session designed from it.
  EXPECT_NE(reference_utility, 0.0);
  for (const contract::Contract& c : reference_contracts.back()) {
    EXPECT_FALSE(c.is_zero());
  }

  // Same scenario over the engine's request path, counters reconciled.
  const std::uint64_t submitted0 = counter_value("ccd.serve.submitted");
  const std::uint64_t responses0 = counter_value("ccd.serve.responses");
  const std::uint64_t rounds0 = counter_value("ccd.serve.rounds");

  EngineConfig config;
  config.worker_threads = 2;
  Engine engine(config);
  std::uint64_t issued = 0;

  Request open;
  open.op = Op::kOpen;
  open.session = "swarm";
  open.open = ingest_open(n);
  ASSERT_EQ(engine.call(open).status, Status::kOk);
  ++issued;

  scenario::IngestFeed feed(spec);
  for (std::uint64_t t = 0; t < kRounds; ++t) {
    Request get;
    get.op = Op::kContracts;
    get.session = "swarm";
    const Response posted = engine.call(get);
    ASSERT_EQ(posted.status, Status::kOk) << posted.message;
    ++issued;

    Request ingest;
    ingest.op = Op::kIngest;
    ingest.session = "swarm";
    ingest.observations = to_wire(feed.round(posted.contracts));
    const Response r = engine.call(ingest);
    ASSERT_EQ(r.status, Status::kOk) << r.message;
    ++issued;
    EXPECT_EQ(r.redesigned, (t + 1) % 4 == 0);
    expect_contracts_equal(engine.call(get).contracts,
                           reference_contracts[static_cast<std::size_t>(t)]);
    ++issued;
  }

  Request status;
  status.op = Op::kStatus;
  status.session = "swarm";
  const Response final_status = engine.call(status);
  ASSERT_EQ(final_status.status, Status::kOk);
  ++issued;
  // The per-cell score of the wire run is the in-process score, exactly.
  EXPECT_EQ(final_status.session.cumulative_requester_utility,
            reference_utility);
  EXPECT_EQ(final_status.session.next_round, kRounds);

  // Counter reconciliation: every request accounted for, every ingested
  // round counted.
  EXPECT_EQ(counter_value("ccd.serve.submitted") - submitted0, issued);
  EXPECT_EQ(counter_value("ccd.serve.responses") - responses0, issued);
  EXPECT_EQ(counter_value("ccd.serve.rounds") - rounds0, kRounds);
}

TEST(ScenarioIngestTest, WrongArityFeedIsRefused) {
  const scenario::ScenarioSpec spec = sybil_spec();
  Engine engine(EngineConfig{});
  Request open;
  open.op = Op::kOpen;
  open.session = "swarm";
  open.open = ingest_open(spec.workers);  // forgot the sybil identities
  ASSERT_EQ(engine.call(open).status, Status::kOk);

  scenario::IngestFeed feed(spec);
  Request ingest;
  ingest.op = Op::kIngest;
  ingest.session = "swarm";
  ingest.observations = to_wire(feed.round({}));
  EXPECT_EQ(engine.call(ingest).status, Status::kConfigError);
}

}  // namespace
}  // namespace ccd::serve
