// Fault-injection chaos for the serve stack: with the deterministic
// injector firing on the framed-I/O sites (serve.frame_read,
// serve.frame_write) and the gateway's shard dials
// (gateway.shard_connect) at single-digit-percent rates, a client driving
// campaigns through the gateway must still land every session exactly —
// nothing lost, nothing over-advanced, contracts bitwise-identical to the
// uninterrupted simulator.
//
// Retry etiquette matters here and is part of what this test pins down:
// the fault sites are keyed by frame checksum, so reissuing a bitwise-
// identical payload deterministically re-fires the same fault. The
// client's internal reconnect loop does exactly that (same request_id) —
// it is bounded by max_reconnects and then surfaces DataError — and the
// driver below then retries with a fresh request_id, which changes the
// payload and the fault key. Advance is budget-capped, so at-least-once
// replay can never over-run a campaign.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/stackelberg.hpp"
#include "serve/client.hpp"
#include "serve/gateway.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::serve {
namespace {

void expect_contracts_equal(const std::vector<contract::Contract>& a,
                            const std::vector<contract::Contract>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].is_zero(), b[i].is_zero()) << "worker " << i;
    if (a[i].is_zero()) continue;
    ASSERT_EQ(a[i].intervals(), b[i].intervals()) << "worker " << i;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      EXPECT_EQ(a[i].knot(l), b[i].knot(l)) << "worker " << i;
      EXPECT_EQ(a[i].payment(l), b[i].payment(l)) << "worker " << i;
    }
  }
}

std::vector<contract::Contract> reference_contracts(std::uint64_t rounds,
                                                    std::uint64_t seed) {
  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;
  core::StackelbergSimulator sim(core::preset_fleet(5, 2), config);
  sim.run();
  return sim.contracts();
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_chaos_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    util::FaultInjector::instance().disable();
    gateway_.reset();
    for (std::unique_ptr<Server>& server : servers_) server->stop();
    for (std::unique_ptr<Engine>& engine : engines_) engine->stop();
    servers_.clear();
    engines_.clear();
    std::filesystem::remove_all(dir_);
  }

  void start_fleet(std::size_t count) {
    GatewayConfig config;
    for (std::size_t i = 0; i < count; ++i) {
      const std::string name = "shard" + std::to_string(i);
      const std::string ckpt = (dir_ / (name + ".ckpt")).string();
      std::filesystem::create_directories(ckpt);

      EngineConfig ec;
      ec.worker_threads = 2;
      ec.checkpoint_dir = ckpt;
      ec.checkpoint_every = 1;
      engines_.push_back(std::make_unique<Engine>(ec));

      ServerConfig sc;
      sc.unix_socket = (dir_ / (name + ".sock")).string();
      servers_.push_back(std::make_unique<Server>(sc, *engines_.back()));

      ShardSpec spec;
      spec.name = name;
      spec.unix_socket = sc.unix_socket;
      spec.checkpoint_dir = ckpt;
      config.shards.push_back(spec);
    }
    config.unix_socket = (dir_ / "gateway.sock").string();
    // No prober: injected faults on health frames must not read as shard
    // deaths. Dials retry generously (and instantly) so a run of injected
    // connect faults cannot spuriously retire a live shard either.
    config.health_interval_ms = 0;
    config.connect_retry.max_attempts = 6;
    config.connect_retry.sleep = false;
    gateway_ = std::make_unique<Gateway>(std::move(config));
  }

  std::filesystem::path dir_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Gateway> gateway_;
};

TEST_F(ServeChaosTest, InjectedFrameAndDialFaultsLoseNoSessionAndNoRound) {
  constexpr std::size_t kSessions = 6;
  constexpr std::uint64_t kRounds = 8;
  start_fleet(2);

  util::FaultInjectorConfig chaos;
  chaos.enabled = true;
  chaos.seed = 41;
  chaos.rate = 0.0;  // only the serve-stack sites, not e.g. the solver's
  chaos.site_rates["serve.frame_read"] = 0.03;
  chaos.site_rates["serve.frame_write"] = 0.03;
  chaos.site_rates["gateway.shard_connect"] = 0.05;
  util::FaultInjector::instance().configure(chaos);

  ClientOptions options;
  options.io_timeout_ms = 5'000;
  options.max_reconnects = 2;
  options.reconnect_backoff_s = 0.001;
  Client client =
      Client::connect_unix((dir_ / "gateway.sock").string(), options);

  std::uint64_t request_id = 0;
  // Issue until a kOk response lands; every retry carries a fresh
  // request_id (see the header comment for why that is load-bearing).
  const auto admitted = [&](Request request) {
    for (int attempt = 0; attempt < 400; ++attempt) {
      request.request_id = ++request_id;
      try {
        const Response r = client.call(request);
        if (r.status == Status::kOk) return r;
        // Backpressure or a forward that lost its race with an injected
        // fault: both are retryable by design.
      } catch (const DataError&) {
        // Transport killed by an injected fault; redial on the next call.
      }
      ::usleep(1'000);
    }
    ADD_FAILURE() << "request never admitted under chaos";
    return Response{};
  };

  for (std::size_t s = 0; s < kSessions; ++s) {
    Request open;
    open.op = Op::kOpen;
    open.session = "chaos-" + std::to_string(s);
    open.open.mode = SessionMode::kSimulation;
    open.open.rounds = kRounds;
    open.open.workers = 5;
    open.open.malicious = 2;
    open.open.seed = 7'000 + s;
    open.open.allow_existing = true;  // replay-safe under at-least-once
    ASSERT_EQ(admitted(open).status, Status::kOk);
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    Request advance;
    advance.op = Op::kAdvance;
    advance.session = "chaos-" + std::to_string(s);
    advance.advance_rounds = 1;
    for (int i = 0; i < 1'000; ++i) {
      const Response r = admitted(advance);
      ASSERT_EQ(r.status, Status::kOk);
      // Never over-advanced: replay of an already-applied advance must be
      // absorbed by the round budget, not double-counted.
      ASSERT_LE(r.session.next_round, kRounds) << advance.session;
      if (r.session.finished) break;
    }
  }

  // Nothing lost: every session is present, finished at exactly kRounds,
  // and bitwise-identical to the uninterrupted simulator.
  for (std::size_t s = 0; s < kSessions; ++s) {
    Request contracts;
    contracts.op = Op::kContracts;
    contracts.session = "chaos-" + std::to_string(s);
    const Response got = admitted(contracts);
    ASSERT_EQ(got.status, Status::kOk);
    EXPECT_TRUE(got.session.finished) << contracts.session;
    EXPECT_EQ(got.session.next_round, kRounds) << contracts.session;
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 7'000 + s));
  }

  // The run actually exercised the chaos: frame faults fired. (Dial
  // faults only fire when a pool miss dials during the run, so they are
  // not individually asserted.)
  util::FaultInjector& injector = util::FaultInjector::instance();
  EXPECT_GT(injector.injected("serve.frame_read") +
                injector.injected("serve.frame_write"),
            0u);
  injector.disable();
}

}  // namespace
}  // namespace ccd::serve
