// CSRV v3 token handshake, end to end against a real Server: a correct
// token authenticates and ops proceed; a missing token is rejected before
// any op runs; a wrong token fails the handshake with AuthError; a
// captured proof replays on neither a new connection (fresh nonce) nor
// the same one (nonce consumed); Unix sockets and plain loopback stay
// token-optional.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/auth.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace ccd::serve {
namespace {

constexpr char kToken[] = "open-sesame";

class AuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_auth_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    EngineConfig ec;
    ec.worker_threads = 2;
    engine_ = std::make_unique<Engine>(ec);

    // require_auth extends the token requirement to loopback TCP, which
    // is how these tests exercise the non-loopback enforcement path.
    ServerConfig sc;
    sc.tcp_port = 0;
    sc.unix_socket = (dir_ / "auth.sock").string();
    sc.auth_token = kToken;
    sc.require_auth = true;
    server_ = std::make_unique<Server>(sc, *engine_);
  }

  void TearDown() override {
    if (server_) server_->stop();
    if (engine_) engine_->stop();
    std::filesystem::remove_all(dir_);
  }

  int port() const { return server_->tcp_port(); }

  /// One raw CSRV exchange on `socket` (no Client retry machinery).
  Response raw_call(util::Socket& socket, Request request) {
    request.request_id = next_request_id_++;
    send_message(socket, encode_request(request));
    auto payload = recv_message(socket);
    if (!payload) throw DataError("server closed the connection");
    return decode_response(*payload);
  }

  /// Challenge the server on `socket` and return the issued nonce.
  std::string raw_challenge(util::Socket& socket) {
    Request challenge;
    challenge.op = Op::kAuth;
    const Response response = raw_call(socket, challenge);
    EXPECT_EQ(response.status, Status::kOk) << response.message;
    EXPECT_FALSE(response.text.empty());  // token is configured
    return response.text;
  }

  std::filesystem::path dir_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Server> server_;
  std::uint64_t next_request_id_ = 1;
};

TEST_F(AuthTest, CorrectTokenAuthenticatesAndOpsProceed) {
  ClientOptions options;
  options.auth_token = kToken;
  Client client = Client::connect_tcp("127.0.0.1", port(), options);
  EXPECT_EQ(client.ping(), "ccd-serve/4");

  OpenParams params;
  params.mode = SessionMode::kSimulation;
  params.rounds = 3;
  params.workers = 5;
  params.malicious = 2;
  params.seed = 41;
  client.open("auth-ok", params);
  const auto advanced = client.advance("auth-ok", 3);
  EXPECT_EQ(advanced.session.next_round, 3u);
}

TEST_F(AuthTest, MissingTokenCannotOpenASession) {
  // An empty client token skips the handshake entirely; the server must
  // then reject the first real op before it touches the engine.
  Client client = Client::connect_tcp("127.0.0.1", port());
  EXPECT_THROW(client.ping(), AuthError);

  OpenParams params;
  params.rounds = 2;
  Client again = Client::connect_tcp("127.0.0.1", port());
  EXPECT_THROW(again.open("auth-denied", params), AuthError);
  EXPECT_EQ(engine_->session_count(), 0u);
}

TEST_F(AuthTest, WrongTokenFailsTheHandshake) {
  ClientOptions options;
  options.auth_token = "not-the-token";
  EXPECT_THROW(Client::connect_tcp("127.0.0.1", port(), options), AuthError);
}

TEST_F(AuthTest, CapturedProofDoesNotReplayAcrossConnections) {
  // "Capture" a valid handshake on connection A...
  util::Socket a = util::Socket::connect_tcp("127.0.0.1", port());
  const std::string nonce = raw_challenge(a);
  const std::string proof = util::auth::handshake_proof(kToken, nonce);

  // ...and replay the proof verbatim on connection B. B was issued its
  // own nonce (or none at all), so the stolen proof must not verify.
  util::Socket b = util::Socket::connect_tcp("127.0.0.1", port());
  Request replay;
  replay.op = Op::kAuth;
  replay.auth_proof = proof;
  const Response rejected = raw_call(b, replay);
  EXPECT_EQ(rejected.status, Status::kAuth) << rejected.message;

  // The original owner of the nonce is still fine.
  Request genuine;
  genuine.op = Op::kAuth;
  genuine.auth_proof = proof;
  EXPECT_EQ(raw_call(a, genuine).status, Status::kOk);
}

TEST_F(AuthTest, ProofDoesNotReplayOnTheSameConnection) {
  util::Socket socket = util::Socket::connect_tcp("127.0.0.1", port());
  const std::string nonce = raw_challenge(socket);
  Request proof;
  proof.op = Op::kAuth;
  proof.auth_proof = util::auth::handshake_proof(kToken, nonce);
  ASSERT_EQ(raw_call(socket, proof).status, Status::kOk);

  // The nonce was consumed by the first verification: presenting the
  // same proof again is a replay and drops the connection.
  const Response replayed = raw_call(socket, proof);
  EXPECT_EQ(replayed.status, Status::kAuth);
}

TEST_F(AuthTest, WrongProofClosesTheConnection) {
  util::Socket socket = util::Socket::connect_tcp("127.0.0.1", port());
  raw_challenge(socket);
  Request bogus;
  bogus.op = Op::kAuth;
  bogus.auth_proof = std::string(64, 'f');
  EXPECT_EQ(raw_call(socket, bogus).status, Status::kAuth);
  EXPECT_FALSE(recv_message(socket).has_value());  // server hung up
}

TEST_F(AuthTest, UnixSocketsStayTokenOptional) {
  // Filesystem permissions are the access control on Unix sockets: even
  // with require_auth=true a tokenless client is served.
  Client client = Client::connect_unix((dir_ / "auth.sock").string());
  EXPECT_EQ(client.ping(), "ccd-serve/4");
}

TEST(AuthOptionalTest, PlainLoopbackTcpSkipsTheHandshakeByDefault) {
  EngineConfig ec;
  ec.worker_threads = 1;
  Engine engine(ec);
  ServerConfig sc;
  sc.tcp_port = 0;
  sc.auth_token = "present-but-not-required";
  Server server(sc, engine);  // require_auth defaults to false

  // Loopback TCP without require_auth: tokenless clients are served,
  // token-bearing clients still complete the handshake.
  Client plain = Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_EQ(plain.ping(), "ccd-serve/4");
  ClientOptions options;
  options.auth_token = "present-but-not-required";
  Client tokened =
      Client::connect_tcp("127.0.0.1", server.tcp_port(), options);
  EXPECT_EQ(tokened.ping(), "ccd-serve/4");

  server.stop();
  engine.stop();
}

}  // namespace
}  // namespace ccd::serve
