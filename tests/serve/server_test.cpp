// serve::Server + serve::Client over real sockets: protocol codec round
// trips, Unix-domain and loopback-TCP transport, concurrent sessions from
// concurrent connections (bitwise-identical to the simulator), corrupt
// frames dropping only the offending connection, and shutdown plumbing.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/stackelberg.hpp"
#include "serve/client.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace ccd::serve {
namespace {

TEST(ProtocolCodecTest, RequestRoundTripsEveryField) {
  Request request;
  request.op = Op::kIngest;
  request.request_id = 77;
  request.session = "sess-1";
  request.deadline_ms = 1500;
  request.open.mode = SessionMode::kIngest;
  request.open.rounds = 9;
  request.open.workers = 4;
  request.open.malicious = 1;
  request.open.seed = 1234;
  request.open.mu = 1.25;
  request.open.refit_every = 6;
  request.open.ema_alpha = 0.4;
  request.open.allow_existing = true;
  request.open.policy = policy::Kind::kPostedPrice;
  request.advance_rounds = 3;
  request.observations = {{1.0, 9.5, 0.3}, {2.0, 14.0, 1.6}};
  request.metrics_prometheus = true;
  request.checkpoint_blob = std::string("SCKP\x00\x01raw\xff bytes", 15);

  const Request got = decode_request(encode_request(request));
  EXPECT_EQ(got.op, request.op);
  EXPECT_EQ(got.request_id, request.request_id);
  EXPECT_EQ(got.session, request.session);
  EXPECT_EQ(got.deadline_ms, request.deadline_ms);
  EXPECT_EQ(got.open.mode, request.open.mode);
  EXPECT_EQ(got.open.rounds, request.open.rounds);
  EXPECT_EQ(got.open.workers, request.open.workers);
  EXPECT_EQ(got.open.malicious, request.open.malicious);
  EXPECT_EQ(got.open.seed, request.open.seed);
  EXPECT_EQ(got.open.mu, request.open.mu);
  EXPECT_EQ(got.open.refit_every, request.open.refit_every);
  EXPECT_EQ(got.open.ema_alpha, request.open.ema_alpha);
  EXPECT_EQ(got.open.allow_existing, request.open.allow_existing);
  EXPECT_EQ(got.open.policy, request.open.policy);
  EXPECT_EQ(got.advance_rounds, request.advance_rounds);
  EXPECT_EQ(got.checkpoint_blob, request.checkpoint_blob);
  ASSERT_EQ(got.observations.size(), 2u);
  EXPECT_EQ(got.observations[1].effort, 2.0);
  EXPECT_EQ(got.observations[1].feedback, 14.0);
  EXPECT_EQ(got.observations[1].accuracy_sample, 1.6);
  EXPECT_EQ(got.metrics_prometheus, request.metrics_prometheus);
}

TEST(ProtocolCodecTest, ResponseRoundTripsContractsBitwise) {
  Response response;
  response.request_id = 9;
  response.status = Status::kDeadline;
  response.message = "deadline expired";
  response.session.next_round = 4;
  response.session.rounds = 10;
  response.session.workers = 2;
  response.session.cumulative_requester_utility = 123.456789;
  response.session.finished = false;
  response.redesigned = true;
  response.health.sessions_open = 3;
  response.health.max_sessions = 256;
  response.health.queue_depth = 7;
  response.health.queue_capacity = 128;
  response.health.draining = true;
  response.contracts.push_back(contract::Contract{});  // zero contract
  response.contracts.push_back(
      contract::Contract(0.5, {0.0, 1.5, 3.0}, {0.0, 0.25, 1.0}));

  const Response got = decode_response(encode_response(response));
  EXPECT_EQ(got.request_id, response.request_id);
  EXPECT_EQ(got.status, response.status);
  EXPECT_EQ(got.message, response.message);
  EXPECT_EQ(got.session.next_round, 4u);
  EXPECT_EQ(got.session.cumulative_requester_utility, 123.456789);
  EXPECT_TRUE(got.redesigned);
  EXPECT_EQ(got.health.sessions_open, 3u);
  EXPECT_EQ(got.health.max_sessions, 256u);
  EXPECT_EQ(got.health.queue_depth, 7u);
  EXPECT_EQ(got.health.queue_capacity, 128u);
  EXPECT_TRUE(got.health.draining);
  ASSERT_EQ(got.contracts.size(), 2u);
  EXPECT_TRUE(got.contracts[0].is_zero());
  ASSERT_FALSE(got.contracts[1].is_zero());
  EXPECT_EQ(got.contracts[1].intervals(), 2u);
  EXPECT_EQ(got.contracts[1].knot(1), 1.5);
  EXPECT_EQ(got.contracts[1].payment(2), 1.0);
}

TEST(ProtocolCodecTest, MalformedPayloadsThrowDataError) {
  const std::string encoded = encode_request(Request{});
  EXPECT_THROW(decode_request(encoded.substr(0, encoded.size() / 2)),
               DataError);
  EXPECT_THROW(decode_request(encoded + "trailing"), DataError);
  std::string bad_op = encoded;
  bad_op[0] = '\x7F';
  EXPECT_THROW(decode_request(bad_op), DataError);
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_server_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    socket_path_ = (dir_ / "ccdd.sock").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineConfig engine_config() {
    EngineConfig c;
    c.worker_threads = 4;
    return c;
  }

  std::filesystem::path dir_;
  std::string socket_path_;
};

TEST_F(ServerTest, UnixSocketSessionMatchesSimulatorBitwise) {
  constexpr std::uint64_t kRounds = 8;
  constexpr std::uint64_t kSeed = 21;
  Engine engine(engine_config());
  ServerConfig sc;
  sc.unix_socket = socket_path_;
  Server server(sc, engine);

  Client client = Client::connect_unix(socket_path_);
  EXPECT_EQ(client.ping(), "ccd-serve/4");

  OpenParams open;
  open.rounds = kRounds;
  open.workers = 5;
  open.malicious = 2;
  open.seed = kSeed;
  client.open("wire", open);
  SessionStatus status;
  do {
    const Client::AdvanceResult step = client.advance("wire", 3);
    ASSERT_FALSE(step.deadline_expired);
    ASSERT_FALSE(step.backpressure);
    status = step.session;
  } while (!status.finished);

  core::SimConfig ref_config;
  ref_config.rounds = kRounds;
  ref_config.seed = kSeed;
  core::StackelbergSimulator ref(core::preset_fleet(5, 2), ref_config);
  const core::SimResult ref_result = ref.run();
  EXPECT_EQ(status.cumulative_requester_utility,
            ref_result.cumulative_requester_utility);

  const std::vector<contract::Contract> got = client.contracts("wire");
  const std::vector<contract::Contract>& expected = ref.contracts();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].is_zero(), expected[i].is_zero());
    if (got[i].is_zero()) continue;
    ASSERT_EQ(got[i].intervals(), expected[i].intervals());
    for (std::size_t l = 0; l <= got[i].intervals(); ++l) {
      EXPECT_EQ(got[i].knot(l), expected[i].knot(l));
      EXPECT_EQ(got[i].payment(l), expected[i].payment(l));
    }
  }
  client.close_session("wire");
  EXPECT_THROW(client.status("wire"), ConfigError);
}

TEST_F(ServerTest, EphemeralTcpPortServes) {
  Engine engine(engine_config());
  ServerConfig sc;
  sc.tcp_port = 0;  // ephemeral
  Server server(sc, engine);
  ASSERT_GT(server.tcp_port(), 0);

  Client client = Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_EQ(client.ping(), "ccd-serve/4");
  const std::string metrics = client.metrics(true);
  EXPECT_NE(metrics.find("ccd_serve_responses"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentConnectionsDriveIndependentSessions) {
  constexpr std::size_t kSessions = 6;
  constexpr std::uint64_t kRounds = 6;
  Engine engine(engine_config());
  ServerConfig sc;
  sc.unix_socket = socket_path_;
  Server server(sc, engine);

  std::vector<double> utilities(kSessions, 0.0);
  std::vector<std::thread> drivers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&, s] {
      Client client = Client::connect_unix(socket_path_);
      OpenParams open;
      open.rounds = kRounds;
      open.workers = 4;
      open.malicious = 1;
      open.seed = 100 + s;
      client.open("conc-" + std::to_string(s), open);
      SessionStatus status;
      do {
        const Client::AdvanceResult step =
            client.advance("conc-" + std::to_string(s), 1);
        if (step.backpressure) continue;
        status = step.session;
      } while (!status.finished);
      utilities[s] = status.cumulative_requester_utility;
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(engine.session_count(), kSessions);

  // Each concurrent session reproduced its solo-simulator trajectory.
  for (std::size_t s = 0; s < kSessions; ++s) {
    core::SimConfig ref_config;
    ref_config.rounds = kRounds;
    ref_config.seed = 100 + s;
    core::StackelbergSimulator ref(core::preset_fleet(4, 1), ref_config);
    EXPECT_EQ(utilities[s], ref.run().cumulative_requester_utility)
        << "session " << s;
  }
}

TEST_F(ServerTest, CorruptFrameDropsOnlyThatConnection) {
  Engine engine(engine_config());
  ServerConfig sc;
  sc.unix_socket = socket_path_;
  Server server(sc, engine);

  // A garbage blob instead of a frame: the server closes this connection.
  util::Socket raw = util::Socket::connect_unix(socket_path_);
  raw.send_all(std::string(64, 'x'));
  char byte = 0;
  EXPECT_FALSE(raw.recv_exact(&byte, 1));  // clean close, no response

  // Other connections are unaffected.
  Client client = Client::connect_unix(socket_path_);
  EXPECT_EQ(client.ping(), "ccd-serve/4");
}

TEST_F(ServerTest, ShutdownRequestReachesTheEngine) {
  Engine engine(engine_config());
  ServerConfig sc;
  sc.unix_socket = socket_path_;
  Server server(sc, engine);

  Client client = Client::connect_unix(socket_path_);
  EXPECT_FALSE(engine.shutdown_requested());
  client.shutdown_server();
  EXPECT_TRUE(engine.shutdown_requested());

  server.stop();
  engine.stop();
  // The socket file is gone after a clean stop.
  EXPECT_FALSE(std::filesystem::exists(socket_path_));
}

}  // namespace
}  // namespace ccd::serve
