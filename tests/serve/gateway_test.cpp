// serve::Gateway over an in-process fleet: consistent-hash routing that
// is stable and covers every shard, session traffic through the gateway
// bitwise-identical to the bare simulator, checkpoint handoff on shard
// retirement continuing campaigns bitwise on the survivors, restore
// idempotence, health aggregation, the socket front end (a Client cannot
// tell the gateway from a single ccdd), and shutdown broadcast.
#include "serve/gateway.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stackelberg.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace ccd::serve {
namespace {

Request make_open(const std::string& session, std::uint64_t rounds,
                  std::uint64_t seed) {
  Request request;
  request.op = Op::kOpen;
  request.session = session;
  request.open.mode = SessionMode::kSimulation;
  request.open.rounds = rounds;
  request.open.workers = 5;
  request.open.malicious = 2;
  request.open.seed = seed;
  request.open.allow_existing = true;
  return request;
}

Request make_advance(const std::string& session, std::uint64_t rounds) {
  Request request;
  request.op = Op::kAdvance;
  request.session = session;
  request.advance_rounds = rounds;
  return request;
}

Request make_contracts(const std::string& session) {
  Request request;
  request.op = Op::kContracts;
  request.session = session;
  return request;
}

void expect_contracts_equal(const std::vector<contract::Contract>& a,
                            const std::vector<contract::Contract>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].is_zero(), b[i].is_zero()) << "worker " << i;
    if (a[i].is_zero()) continue;
    ASSERT_EQ(a[i].intervals(), b[i].intervals()) << "worker " << i;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      EXPECT_EQ(a[i].knot(l), b[i].knot(l)) << "worker " << i;
      EXPECT_EQ(a[i].payment(l), b[i].payment(l)) << "worker " << i;
    }
  }
}

std::vector<contract::Contract> reference_contracts(std::uint64_t rounds,
                                                    std::uint64_t seed) {
  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;
  core::StackelbergSimulator sim(core::preset_fleet(5, 2), config);
  sim.run();
  return sim.contracts();
}

/// An in-process fleet (Engine + Server per shard, checkpoint dirs wired
/// for handoff) fronted by one Gateway. The prober is off by default so
/// failover in these tests happens only where a test asks for it.
class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_gateway_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    gateway_.reset();
    for (std::unique_ptr<Server>& server : servers_) {
      if (server) server->stop();
    }
    for (std::unique_ptr<Engine>& engine : engines_) {
      if (engine) engine->stop();
    }
    servers_.clear();
    engines_.clear();
    std::filesystem::remove_all(dir_);
  }

  void start_fleet(std::size_t count, std::size_t max_inflight = 256) {
    GatewayConfig config;
    for (std::size_t i = 0; i < count; ++i) {
      const std::string name = "shard" + std::to_string(i);
      const std::string ckpt = (dir_ / (name + ".ckpt")).string();
      std::filesystem::create_directories(ckpt);

      EngineConfig ec;
      ec.worker_threads = 2;
      ec.checkpoint_dir = ckpt;
      ec.checkpoint_every = 1;
      engines_.push_back(std::make_unique<Engine>(ec));

      ServerConfig sc;
      sc.unix_socket = (dir_ / (name + ".sock")).string();
      servers_.push_back(std::make_unique<Server>(sc, *engines_.back()));

      ShardSpec spec;
      spec.name = name;
      spec.unix_socket = sc.unix_socket;
      spec.checkpoint_dir = ckpt;
      config.shards.push_back(spec);
    }
    config.unix_socket = (dir_ / "gateway.sock").string();
    config.max_inflight = max_inflight;
    config.health_interval_ms = 0;  // no prober; failover is test-driven
    config.connect_retry.sleep = false;
    gateway_ = std::make_unique<Gateway>(std::move(config));
  }

  /// Kill one shard the graceful way: stop its socket front end, then
  /// drain its engine (which checkpoints every open session).
  void stop_shard(std::size_t index) {
    servers_[index]->stop();
    engines_[index]->stop();
  }

  Response call(Request request) {
    request.request_id = next_request_id_++;
    return gateway_->handle(std::move(request));
  }

  /// Advance `session` to completion through the gateway, riding out
  /// backpressure; every terminal response must be kOk.
  SessionStatus finish(const std::string& session) {
    for (int i = 0; i < 10'000; ++i) {
      const Response r = call(make_advance(session, 2));
      if (r.status == Status::kBackpressure) continue;
      EXPECT_EQ(r.status, Status::kOk) << r.message;
      if (r.status != Status::kOk) break;
      if (r.session.finished) return r.session;
    }
    ADD_FAILURE() << "session '" << session << "' never finished";
    return {};
  }

  std::filesystem::path dir_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Gateway> gateway_;
  std::uint64_t next_request_id_ = 1;
};

TEST_F(GatewayTest, RoutingIsStableAndCoversEveryShard) {
  start_fleet(3);
  std::map<std::string, int> owned;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "route-" + std::to_string(i);
    const std::string owner = gateway_->shard_for(id);
    EXPECT_EQ(gateway_->shard_for(id), owner);  // stable
    ++owned[owner];
  }
  ASSERT_EQ(owned.size(), 3u);  // every shard owns a share
  for (const auto& [name, count] : owned) {
    EXPECT_GT(count, 0) << name;
  }
}

TEST_F(GatewayTest, SessionsThroughTheGatewayMatchTheSimulatorBitwise) {
  constexpr std::uint64_t kRounds = 8;
  constexpr std::size_t kSessions = 6;
  start_fleet(3);

  EXPECT_EQ(call(Request{}).text, "ccd-gateway/2");  // kPing default op

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "gw-" + std::to_string(s);
    ASSERT_EQ(call(make_open(id, kRounds, 300 + s)).status, Status::kOk);
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "gw-" + std::to_string(s);
    const SessionStatus status = finish(id);
    EXPECT_EQ(status.next_round, kRounds);
    const Response got = call(make_contracts(id));
    ASSERT_EQ(got.status, Status::kOk);
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 300 + s));
  }

  // The sessions really are spread over the shard engines, and each
  // engine holds exactly the ids the ring assigns it.
  std::size_t total = 0;
  for (const std::unique_ptr<Engine>& engine : engines_) {
    total += engine->session_count();
  }
  EXPECT_EQ(total, kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "gw-" + std::to_string(s);
    const std::string owner = gateway_->shard_for(id);
    const std::size_t index = owner.back() - '0';
    ASSERT_LT(index, engines_.size());
    EXPECT_EQ(call(make_contracts(id)).status, Status::kOk);
    EXPECT_GE(engines_[index]->session_count(), 1u) << id;
  }

  // Health aggregates the fleet.
  Request health;
  health.op = Op::kHealth;
  const Response h = call(health);
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_EQ(h.health.sessions_open, kSessions);
  EXPECT_FALSE(h.health.draining);
}

TEST_F(GatewayTest, RetiredShardsSessionsContinueBitwiseOnSurvivors) {
  constexpr std::uint64_t kRounds = 10;
  constexpr std::size_t kSessions = 9;
  start_fleet(3);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "fo-" + std::to_string(s);
    ASSERT_EQ(call(make_open(id, kRounds, 600 + s)).status, Status::kOk);
    ASSERT_EQ(call(make_advance(id, 4)).status, Status::kOk);
  }

  // Retire the shard owning fo-0 (stopping its engine checkpoints every
  // session at round 4); its campaigns must continue on the survivors.
  const std::string victim = gateway_->shard_for("fo-0");
  const std::size_t victim_index = victim.back() - '0';
  std::size_t victim_sessions = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (gateway_->shard_for("fo-" + std::to_string(s)) == victim) {
      ++victim_sessions;
    }
  }
  ASSERT_GE(victim_sessions, 1u);
  stop_shard(victim_index);
  gateway_->retire_shard(victim);
  EXPECT_EQ(gateway_->alive_shard_count(), 2u);
  EXPECT_NE(gateway_->shard_for("fo-0"), victim);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "fo-" + std::to_string(s);
    EXPECT_EQ(finish(id).next_round, kRounds);
    const Response got = call(make_contracts(id));
    ASSERT_EQ(got.status, Status::kOk) << got.message;
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 600 + s));
  }

  // A replayed handoff restore is idempotent: the new owner reports the
  // (finished) session instead of double-installing the old round-4 state.
  Request replay;
  replay.op = Op::kRestore;
  replay.session = "fo-0";
  replay.checkpoint_blob = util::read_file(
      (dir_ / (victim + ".ckpt") / ("fo-0" + std::string(Session::checkpoint_suffix(
                                        SessionMode::kSimulation))))
          .string());
  ASSERT_FALSE(replay.checkpoint_blob.empty());
  const Response replayed = call(replay);
  ASSERT_EQ(replayed.status, Status::kOk) << replayed.message;
  EXPECT_TRUE(replayed.session.finished);
}

TEST_F(GatewayTest, RetireUnknownShardThrowsAndLastShardLossIsAnError) {
  start_fleet(1);
  EXPECT_THROW(gateway_->retire_shard("nope"), ConfigError);

  ASSERT_EQ(call(make_open("last", 4, 9)).status, Status::kOk);
  stop_shard(0);
  gateway_->retire_shard("shard0");
  EXPECT_EQ(gateway_->alive_shard_count(), 0u);
  const Response r = call(make_advance("last", 1));
  EXPECT_TRUE(is_error(r.status));
  EXPECT_NE(r.message.find("no alive shard"), std::string::npos) << r.message;
}

TEST_F(GatewayTest, SocketFrontEndIsIndistinguishableFromASingleDaemon) {
  constexpr std::uint64_t kRounds = 6;
  start_fleet(2);

  Client client =
      Client::connect_unix((dir_ / "gateway.sock").string());
  EXPECT_EQ(client.ping(), "ccd-gateway/2");

  OpenParams open;
  open.rounds = kRounds;
  open.workers = 5;
  open.malicious = 2;
  open.seed = 77;
  client.open("viasock", open);
  SessionStatus status;
  do {
    const Client::AdvanceResult step = client.advance("viasock", 2);
    ASSERT_FALSE(step.deadline_expired);
    if (step.backpressure) continue;
    status = step.session;
  } while (!status.finished);
  expect_contracts_equal(client.contracts("viasock"),
                         reference_contracts(kRounds, 77));

  const HealthInfo health = client.health();
  EXPECT_EQ(health.sessions_open, 1u);
  EXPECT_GT(health.max_sessions, 0u);

  EXPECT_NE(client.metrics(false).find("ccd.gateway.requests"),
            std::string::npos);

  // Shutdown broadcasts to every shard and drains the gateway itself.
  client.shutdown_server();
  EXPECT_TRUE(gateway_->shutdown_requested());
  for (const std::unique_ptr<Engine>& engine : engines_) {
    EXPECT_TRUE(engine->shutdown_requested());
  }
  Request late = make_advance("viasock", 1);
  late.request_id = 999'999;
  EXPECT_EQ(client.call(late).status, Status::kShuttingDown);
}

TEST_F(GatewayTest, TinyInflightCapStillServesEveryConcurrentDriver) {
  constexpr std::uint64_t kRounds = 6;
  constexpr std::size_t kDrivers = 6;
  start_fleet(2, /*max_inflight=*/1);

  std::vector<std::thread> drivers;
  for (std::size_t s = 0; s < kDrivers; ++s) {
    drivers.emplace_back([&, s] {
      const std::string id = "bp-" + std::to_string(s);
      std::uint64_t request_id = 1'000 * (s + 1);
      const auto admitted = [&](Request request) {
        for (int i = 0; i < 10'000; ++i) {
          request.request_id = ++request_id;
          const Response r = gateway_->handle(request);
          if (r.status != Status::kBackpressure) return r;
          ::usleep(500);  // the lone inflight slot may be mid-design
        }
        Response starved;  // loud failure, not a default-kOk response
        starved.status = Status::kBackpressure;
        starved.message = "starved by backpressure";
        return starved;
      };
      Response r = admitted(make_open(id, kRounds, 800 + s));
      ASSERT_EQ(r.status, Status::kOk) << r.message;
      do {
        r = admitted(make_advance(id, 1));
        ASSERT_EQ(r.status, Status::kOk) << r.message;
      } while (!r.session.finished);
    });
  }
  for (std::thread& t : drivers) t.join();

  for (std::size_t s = 0; s < kDrivers; ++s) {
    const Response got = call(make_contracts("bp-" + std::to_string(s)));
    ASSERT_EQ(got.status, Status::kOk);
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 800 + s));
  }
}

}  // namespace
}  // namespace ccd::serve
