// serve::Gateway over an in-process fleet: consistent-hash routing that
// is stable and covers every shard, session traffic through the gateway
// bitwise-identical to the bare simulator, checkpoint handoff on shard
// retirement continuing campaigns bitwise on the survivors, restore
// idempotence, health aggregation, the socket front end (a Client cannot
// tell the gateway from a single ccdd), and shutdown broadcast.
#include "serve/gateway.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stackelberg.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace ccd::serve {
namespace {

Request make_open(const std::string& session, std::uint64_t rounds,
                  std::uint64_t seed) {
  Request request;
  request.op = Op::kOpen;
  request.session = session;
  request.open.mode = SessionMode::kSimulation;
  request.open.rounds = rounds;
  request.open.workers = 5;
  request.open.malicious = 2;
  request.open.seed = seed;
  request.open.allow_existing = true;
  return request;
}

Request make_advance(const std::string& session, std::uint64_t rounds) {
  Request request;
  request.op = Op::kAdvance;
  request.session = session;
  request.advance_rounds = rounds;
  return request;
}

Request make_contracts(const std::string& session) {
  Request request;
  request.op = Op::kContracts;
  request.session = session;
  return request;
}

void expect_contracts_equal(const std::vector<contract::Contract>& a,
                            const std::vector<contract::Contract>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].is_zero(), b[i].is_zero()) << "worker " << i;
    if (a[i].is_zero()) continue;
    ASSERT_EQ(a[i].intervals(), b[i].intervals()) << "worker " << i;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      EXPECT_EQ(a[i].knot(l), b[i].knot(l)) << "worker " << i;
      EXPECT_EQ(a[i].payment(l), b[i].payment(l)) << "worker " << i;
    }
  }
}

std::vector<contract::Contract> reference_contracts(std::uint64_t rounds,
                                                    std::uint64_t seed) {
  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;
  core::StackelbergSimulator sim(core::preset_fleet(5, 2), config);
  sim.run();
  return sim.contracts();
}

/// An in-process fleet (Engine + Server per shard, checkpoint dirs wired
/// for handoff) fronted by one Gateway. The prober is off by default so
/// failover in these tests happens only where a test asks for it.
class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_gateway_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    gateway_.reset();
    for (std::unique_ptr<Server>& server : servers_) {
      if (server) server->stop();
    }
    for (std::unique_ptr<Engine>& engine : engines_) {
      if (engine) engine->stop();
    }
    servers_.clear();
    engines_.clear();
    std::filesystem::remove_all(dir_);
  }

  ShardSpec shard_spec(std::size_t index) const {
    const std::string name = "shard" + std::to_string(index);
    ShardSpec spec;
    spec.name = name;
    spec.unix_socket = (dir_ / (name + ".sock")).string();
    spec.checkpoint_dir = (dir_ / (name + ".ckpt")).string();
    return spec;
  }

  /// (Re)create the Engine + Server backing shard `index` on its usual
  /// socket and checkpoint directory — the daemon side of a (re)join.
  void start_shard_backend(std::size_t index) {
    const ShardSpec spec = shard_spec(index);
    std::filesystem::create_directories(spec.checkpoint_dir);
    if (engines_.size() <= index) engines_.resize(index + 1);
    if (servers_.size() <= index) servers_.resize(index + 1);

    EngineConfig ec;
    ec.worker_threads = 2;
    ec.checkpoint_dir = spec.checkpoint_dir;
    ec.checkpoint_every = 1;
    ec.idle_ttl_ms = idle_ttl_ms_;
    engines_[index] = std::make_unique<Engine>(ec);

    ServerConfig sc;
    sc.unix_socket = spec.unix_socket;
    servers_[index] = std::make_unique<Server>(sc, *engines_[index]);
  }

  void start_fleet(std::size_t count, std::size_t max_inflight = 256,
                   std::size_t idle_ttl_ms = 0) {
    idle_ttl_ms_ = idle_ttl_ms;
    GatewayConfig config;
    for (std::size_t i = 0; i < count; ++i) {
      start_shard_backend(i);
      config.shards.push_back(shard_spec(i));
    }
    config.unix_socket = (dir_ / "gateway.sock").string();
    config.max_inflight = max_inflight;
    config.health_interval_ms = 0;  // no prober; failover is test-driven
    config.connect_retry.sleep = false;
    gateway_ = std::make_unique<Gateway>(std::move(config));
  }

  /// Kill one shard the graceful way: stop its socket front end, then
  /// drain its engine (which checkpoints every open session).
  void stop_shard(std::size_t index) {
    servers_[index]->stop();
    engines_[index]->stop();
  }

  Response call(Request request) {
    request.request_id = next_request_id_++;
    return gateway_->handle(std::move(request));
  }

  /// Advance `session` to completion through the gateway, riding out
  /// backpressure; every terminal response must be kOk.
  SessionStatus finish(const std::string& session) {
    for (int i = 0; i < 10'000; ++i) {
      const Response r = call(make_advance(session, 2));
      if (r.status == Status::kBackpressure) continue;
      EXPECT_EQ(r.status, Status::kOk) << r.message;
      if (r.status != Status::kOk) break;
      if (r.session.finished) return r.session;
    }
    ADD_FAILURE() << "session '" << session << "' never finished";
    return {};
  }

  std::filesystem::path dir_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<Gateway> gateway_;
  std::uint64_t next_request_id_ = 1;
  std::size_t idle_ttl_ms_ = 0;
};

TEST(ShardSpecTest, ParseGrammarAndWireRoundTrip) {
  const ShardSpec unix_spec = ShardSpec::parse("a=unix:/tmp/a.sock@/tmp/ck");
  EXPECT_EQ(unix_spec.name, "a");
  EXPECT_EQ(unix_spec.unix_socket, "/tmp/a.sock");
  EXPECT_EQ(unix_spec.checkpoint_dir, "/tmp/ck");

  const ShardSpec tcp_spec = ShardSpec::parse("b=tcp:10.0.0.7:7000");
  EXPECT_EQ(tcp_spec.name, "b");
  EXPECT_EQ(tcp_spec.host, "10.0.0.7");
  EXPECT_EQ(tcp_spec.tcp_port, 7000);
  EXPECT_TRUE(tcp_spec.checkpoint_dir.empty());

  EXPECT_THROW(ShardSpec::parse("garbage"), ConfigError);
  EXPECT_THROW(ShardSpec::parse("=unix:/tmp/a"), ConfigError);
  EXPECT_THROW(ShardSpec::parse("x=tcp:9"), ConfigError);
  EXPECT_THROW(ShardSpec::parse("x=tcp:h:notaport"), ConfigError);
  EXPECT_THROW(ShardSpec::parse("x=ftp:nope"), ConfigError);

  // kJoin frame conversion preserves the dial target exactly.
  const ShardSpec back = ShardSpec::from_target(unix_spec.to_target());
  EXPECT_EQ(back.name, unix_spec.name);
  EXPECT_TRUE(back.same_target(unix_spec));
  EXPECT_TRUE(ShardSpec::from_target(tcp_spec.to_target())
                  .same_target(tcp_spec));
  EXPECT_FALSE(unix_spec.same_target(tcp_spec));
}

TEST_F(GatewayTest, RoutingIsStableAndCoversEveryShard) {
  start_fleet(3);
  std::map<std::string, int> owned;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "route-" + std::to_string(i);
    const std::string owner = gateway_->shard_for(id);
    EXPECT_EQ(gateway_->shard_for(id), owner);  // stable
    ++owned[owner];
  }
  ASSERT_EQ(owned.size(), 3u);  // every shard owns a share
  for (const auto& [name, count] : owned) {
    EXPECT_GT(count, 0) << name;
  }
}

TEST_F(GatewayTest, SessionsThroughTheGatewayMatchTheSimulatorBitwise) {
  constexpr std::uint64_t kRounds = 8;
  constexpr std::size_t kSessions = 6;
  start_fleet(3);

  EXPECT_EQ(call(Request{}).text, "ccd-gateway/3");  // kPing default op

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "gw-" + std::to_string(s);
    ASSERT_EQ(call(make_open(id, kRounds, 300 + s)).status, Status::kOk);
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "gw-" + std::to_string(s);
    const SessionStatus status = finish(id);
    EXPECT_EQ(status.next_round, kRounds);
    const Response got = call(make_contracts(id));
    ASSERT_EQ(got.status, Status::kOk);
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 300 + s));
  }

  // The sessions really are spread over the shard engines, and each
  // engine holds exactly the ids the ring assigns it.
  std::size_t total = 0;
  for (const std::unique_ptr<Engine>& engine : engines_) {
    total += engine->session_count();
  }
  EXPECT_EQ(total, kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "gw-" + std::to_string(s);
    const std::string owner = gateway_->shard_for(id);
    const std::size_t index = owner.back() - '0';
    ASSERT_LT(index, engines_.size());
    EXPECT_EQ(call(make_contracts(id)).status, Status::kOk);
    EXPECT_GE(engines_[index]->session_count(), 1u) << id;
  }

  // Health aggregates the fleet.
  Request health;
  health.op = Op::kHealth;
  const Response h = call(health);
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_EQ(h.health.sessions_open, kSessions);
  EXPECT_FALSE(h.health.draining);
}

TEST_F(GatewayTest, RetiredShardsSessionsContinueBitwiseOnSurvivors) {
  constexpr std::uint64_t kRounds = 10;
  constexpr std::size_t kSessions = 9;
  start_fleet(3);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "fo-" + std::to_string(s);
    ASSERT_EQ(call(make_open(id, kRounds, 600 + s)).status, Status::kOk);
    ASSERT_EQ(call(make_advance(id, 4)).status, Status::kOk);
  }

  // Retire the shard owning fo-0 (stopping its engine checkpoints every
  // session at round 4); its campaigns must continue on the survivors.
  const std::string victim = gateway_->shard_for("fo-0");
  const std::size_t victim_index = victim.back() - '0';
  std::size_t victim_sessions = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    if (gateway_->shard_for("fo-" + std::to_string(s)) == victim) {
      ++victim_sessions;
    }
  }
  ASSERT_GE(victim_sessions, 1u);
  stop_shard(victim_index);
  // Handoff unlinks scavenged checkpoints (so a rejoin cannot resurrect
  // them); capture fo-0's round-4 frame first for the replay check below.
  const std::string round4_blob = util::read_file(
      (dir_ / (victim + ".ckpt") /
       ("fo-0" + std::string(Session::checkpoint_suffix(
                     SessionMode::kSimulation))))
          .string());
  ASSERT_FALSE(round4_blob.empty());
  EXPECT_EQ(gateway_->retire_shard(victim).status, Status::kOk);
  EXPECT_EQ(gateway_->alive_shard_count(), 2u);
  EXPECT_NE(gateway_->shard_for("fo-0"), victim);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "fo-" + std::to_string(s);
    EXPECT_EQ(finish(id).next_round, kRounds);
    const Response got = call(make_contracts(id));
    ASSERT_EQ(got.status, Status::kOk) << got.message;
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 600 + s));
  }

  // A replayed handoff restore is idempotent: the new owner reports the
  // (finished) session instead of double-installing the old round-4 state.
  Request replay;
  replay.op = Op::kRestore;
  replay.session = "fo-0";
  replay.checkpoint_blob = round4_blob;
  const Response replayed = call(replay);
  ASSERT_EQ(replayed.status, Status::kOk) << replayed.message;
  EXPECT_TRUE(replayed.session.finished);
}

TEST_F(GatewayTest, RetireIsIdempotentAndLastShardLossIsRetryable) {
  start_fleet(1);
  // Unknown and repeated retires are admin races, not config errors: they
  // report a status instead of throwing (and never exit-code-2 a ccdctl).
  EXPECT_EQ(gateway_->retire_shard("nope").status, Status::kUnavailable);

  ASSERT_EQ(call(make_open("last", 4, 9)).status, Status::kOk);
  stop_shard(0);
  EXPECT_EQ(gateway_->retire_shard("shard0").status, Status::kOk);
  EXPECT_EQ(gateway_->retire_shard("shard0").status, Status::kOk);
  EXPECT_EQ(gateway_->alive_shard_count(), 0u);

  // An all-dead ring answers kUnavailable — retryable (a client waits out
  // the rolling restart), and distinct from a genuine request error.
  const Response r = call(make_advance("last", 1));
  EXPECT_EQ(r.status, Status::kUnavailable);
  EXPECT_TRUE(is_retryable(r.status));
  EXPECT_NE(r.message.find("no alive shard"), std::string::npos) << r.message;
  EXPECT_THROW(gateway_->shard_for("last"), ConfigError);
}

TEST_F(GatewayTest, SocketFrontEndIsIndistinguishableFromASingleDaemon) {
  constexpr std::uint64_t kRounds = 6;
  start_fleet(2);

  Client client =
      Client::connect_unix((dir_ / "gateway.sock").string());
  EXPECT_EQ(client.ping(), "ccd-gateway/3");

  OpenParams open;
  open.rounds = kRounds;
  open.workers = 5;
  open.malicious = 2;
  open.seed = 77;
  client.open("viasock", open);
  SessionStatus status;
  do {
    const Client::AdvanceResult step = client.advance("viasock", 2);
    ASSERT_FALSE(step.deadline_expired);
    if (step.backpressure) continue;
    status = step.session;
  } while (!status.finished);
  expect_contracts_equal(client.contracts("viasock"),
                         reference_contracts(kRounds, 77));

  const HealthInfo health = client.health();
  EXPECT_EQ(health.sessions_open, 1u);
  EXPECT_GT(health.max_sessions, 0u);

  EXPECT_NE(client.metrics(false).find("ccd.gateway.requests"),
            std::string::npos);

  // Shutdown broadcasts to every shard and drains the gateway itself.
  client.shutdown_server();
  EXPECT_TRUE(gateway_->shutdown_requested());
  for (const std::unique_ptr<Engine>& engine : engines_) {
    EXPECT_TRUE(engine->shutdown_requested());
  }
  Request late = make_advance("viasock", 1);
  late.request_id = 999'999;
  EXPECT_EQ(client.call(late).status, Status::kShuttingDown);
}

TEST_F(GatewayTest, RejoinMovesOnlyOwnerChangedSessions) {
  constexpr std::uint64_t kRounds = 8;
  constexpr std::size_t kSessions = 12;
  start_fleet(3);

  std::vector<std::string> ids;
  std::map<std::string, std::string> owner_with_3;
  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "rj-" + std::to_string(s);
    ids.push_back(id);
    ASSERT_EQ(call(make_open(id, kRounds, 900 + s)).status, Status::kOk);
    ASSERT_EQ(call(make_advance(id, 3)).status, Status::kOk);
    owner_with_3[id] = gateway_->shard_for(id);
  }

  // Gracefully retire shard2; its sessions fail over to the survivors.
  std::size_t victim_sessions = 0;
  for (const std::string& id : ids) {
    if (owner_with_3[id] == "shard2") ++victim_sessions;
  }
  ASSERT_GE(victim_sessions, 1u);
  const std::uint64_t version_before = gateway_->ring_version();
  stop_shard(2);
  ASSERT_EQ(gateway_->retire_shard("shard2").status, Status::kOk);
  EXPECT_GT(gateway_->ring_version(), version_before);
  std::map<std::string, std::string> owner_with_2;
  for (const std::string& id : ids) {
    owner_with_2[id] = gateway_->shard_for(id);
    // Removal moves only the victim's keys (consistent hashing).
    if (owner_with_3[id] != "shard2") {
      EXPECT_EQ(owner_with_2[id], owner_with_3[id]) << id;
    }
  }

  // Bring the daemon back on the same endpoint and rejoin it.
  start_shard_backend(2);
  const std::uint64_t version_retired = gateway_->ring_version();
  const Gateway::AdminResult joined = gateway_->admit_shard(shard_spec(2));
  ASSERT_EQ(joined.status, Status::kOk) << joined.message;
  EXPECT_GT(joined.ring_version, version_retired);
  EXPECT_EQ(gateway_->alive_shard_count(), 3u);

  // The ring is name-deterministic, so the rejoin restores the original
  // ownership map — and ONLY the sessions whose owner changed moved.
  std::size_t owner_changed = 0;
  for (const std::string& id : ids) {
    EXPECT_EQ(gateway_->shard_for(id), owner_with_3[id]) << id;
    if (owner_with_3[id] != owner_with_2[id]) ++owner_changed;
  }
  EXPECT_EQ(joined.sessions_moved, owner_changed);
  EXPECT_EQ(joined.sessions_moved, victim_sessions);

  // A repeated join of the same live endpoint is idempotent: no moves.
  const Gateway::AdminResult again = gateway_->admit_shard(shard_spec(2));
  EXPECT_EQ(again.status, Status::kOk);
  EXPECT_EQ(again.sessions_moved, 0u);
  EXPECT_NE(again.message.find("already admitted"), std::string::npos);

  // Every campaign continues bitwise-identically after the round trip.
  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = ids[s];
    EXPECT_EQ(finish(id).next_round, kRounds);
    const Response got = call(make_contracts(id));
    ASSERT_EQ(got.status, Status::kOk) << got.message;
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 900 + s));
  }
}

TEST_F(GatewayTest, IdleEvictedSessionsFailOverBitwise) {
  constexpr std::uint64_t kRounds = 6;
  constexpr std::size_t kSessions = 6;
  start_fleet(3, /*max_inflight=*/256, /*idle_ttl_ms=*/50);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "ev-" + std::to_string(s);
    ASSERT_EQ(call(make_open(id, kRounds, 1200 + s)).status, Status::kOk);
    ASSERT_EQ(call(make_advance(id, 3)).status, Status::kOk);
  }

  // Wait for the idle reapers to checkpoint-and-evict every session: the
  // state now lives only in the shards' checkpoint directories.
  std::size_t open = kSessions;
  for (int i = 0; i < 1000 && open > 0; ++i) {
    open = 0;
    for (const std::unique_ptr<Engine>& engine : engines_) {
      open += engine->session_count();
    }
    if (open > 0) ::usleep(10 * 1000);
  }
  ASSERT_EQ(open, 0u) << "idle eviction never drained the fleet";

  // Kill the shard owning ev-0. Its sessions exist only as idle-evicted
  // checkpoints; the handoff must scavenge those files onto the new ring
  // owners and the campaigns must continue bitwise-identically.
  const std::string victim = gateway_->shard_for("ev-0");
  const std::size_t victim_index = victim.back() - '0';
  stop_shard(victim_index);
  ASSERT_EQ(gateway_->retire_shard(victim).status, Status::kOk);

  for (std::size_t s = 0; s < kSessions; ++s) {
    const std::string id = "ev-" + std::to_string(s);
    EXPECT_NE(gateway_->shard_for(id), victim);
    EXPECT_EQ(finish(id).next_round, kRounds);
    const Response got = call(make_contracts(id));
    ASSERT_EQ(got.status, Status::kOk) << got.message;
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 1200 + s));
  }
}

TEST_F(GatewayTest, RuntimeAdmissionValidatesLikeStartup) {
  start_fleet(2);

  // Same validation bar as startup shards: in-process callers get the
  // ConfigError...
  ShardSpec no_endpoint;
  no_endpoint.name = "bad";
  EXPECT_THROW(gateway_->admit_shard(no_endpoint), ConfigError);
  ShardSpec no_name;
  no_name.unix_socket = (dir_ / "x.sock").string();
  EXPECT_THROW(gateway_->admit_shard(no_name), ConfigError);

  // ...and the kJoin admin frame reports it as a status instead of
  // crashing the gateway thread.
  Request join;
  join.op = Op::kJoin;
  join.shard.name = "bad";  // no socket, no port
  const Response rejected = call(join);
  EXPECT_EQ(rejected.status, Status::kConfigError);
  EXPECT_EQ(call(Request{}).text, "ccd-gateway/3");  // still serving

  // A name that is live on a different endpoint is a conflict (retire it
  // first), reported as a retryable admin status.
  ShardSpec conflict = shard_spec(0);
  conflict.unix_socket = (dir_ / "elsewhere.sock").string();
  EXPECT_EQ(gateway_->admit_shard(conflict).status, Status::kUnavailable);

  // A valid spec with nothing listening fails its admission probe and
  // never enters the ring.
  ShardSpec ghost;
  ghost.name = "ghost";
  ghost.unix_socket = (dir_ / "ghost.sock").string();
  EXPECT_EQ(gateway_->admit_shard(ghost).status, Status::kUnavailable);
  EXPECT_EQ(gateway_->alive_shard_count(), 2u);
}

TEST_F(GatewayTest, TinyInflightCapStillServesEveryConcurrentDriver) {
  constexpr std::uint64_t kRounds = 6;
  constexpr std::size_t kDrivers = 6;
  start_fleet(2, /*max_inflight=*/1);

  std::vector<std::thread> drivers;
  for (std::size_t s = 0; s < kDrivers; ++s) {
    drivers.emplace_back([&, s] {
      const std::string id = "bp-" + std::to_string(s);
      std::uint64_t request_id = 1'000 * (s + 1);
      const auto admitted = [&](Request request) {
        for (int i = 0; i < 10'000; ++i) {
          request.request_id = ++request_id;
          const Response r = gateway_->handle(request);
          if (r.status != Status::kBackpressure) return r;
          ::usleep(500);  // the lone inflight slot may be mid-design
        }
        Response starved;  // loud failure, not a default-kOk response
        starved.status = Status::kBackpressure;
        starved.message = "starved by backpressure";
        return starved;
      };
      Response r = admitted(make_open(id, kRounds, 800 + s));
      ASSERT_EQ(r.status, Status::kOk) << r.message;
      do {
        r = admitted(make_advance(id, 1));
        ASSERT_EQ(r.status, Status::kOk) << r.message;
      } while (!r.session.finished);
    });
  }
  for (std::thread& t : drivers) t.join();

  for (std::size_t s = 0; s < kDrivers; ++s) {
    const Response got = call(make_contracts("bp-" + std::to_string(s)));
    ASSERT_EQ(got.status, Status::kOk);
    expect_contracts_equal(got.contracts,
                           reference_contracts(kRounds, 800 + s));
  }
}

}  // namespace
}  // namespace ccd::serve
