// serve::Engine: the subsystem's core guarantees, in-process (no socket).
//  * A session driven round-by-round over requests produces contracts
//    bitwise-identical to one StackelbergSimulator::run on the same seed.
//  * Admission control: a full bounded queue answers kBackpressure
//    without enqueuing; every admitted request is answered exactly once,
//    including through stop().
//  * Deadlines arm at admission: queue wait counts, expiry mid-advance
//    retains completed rounds, and a later resume stays bitwise-exact.
//  * Kill + resume: an engine restarted on the same checkpoint directory
//    restores every open session and continues bitwise-identically.
//  * `ccd.serve.*` counters reconcile exactly with client-observed
//    request counts.
#include "serve/engine.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stackelberg.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace ccd::serve {
namespace {

Request make_open(const std::string& session, std::uint64_t rounds,
                  std::uint64_t seed, std::uint64_t workers = 5,
                  std::uint64_t malicious = 2) {
  Request request;
  request.op = Op::kOpen;
  request.session = session;
  request.open.mode = SessionMode::kSimulation;
  request.open.rounds = rounds;
  request.open.workers = workers;
  request.open.malicious = malicious;
  request.open.seed = seed;
  return request;
}

Request make_advance(const std::string& session, std::uint64_t rounds) {
  Request request;
  request.op = Op::kAdvance;
  request.session = session;
  request.advance_rounds = rounds;
  return request;
}

Request make_contracts(const std::string& session) {
  Request request;
  request.op = Op::kContracts;
  request.session = session;
  return request;
}

/// Bitwise contract equality: EXPECT_EQ on doubles compares exact values,
/// which for identical bit patterns is what the reproduction contract
/// promises (no NaNs in posted contracts).
void expect_contracts_equal(const std::vector<contract::Contract>& a,
                            const std::vector<contract::Contract>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].is_zero(), b[i].is_zero()) << "worker " << i;
    if (a[i].is_zero()) continue;
    ASSERT_EQ(a[i].intervals(), b[i].intervals()) << "worker " << i;
    for (std::size_t l = 0; l <= a[i].intervals(); ++l) {
      EXPECT_EQ(a[i].knot(l), b[i].knot(l)) << "worker " << i;
      EXPECT_EQ(a[i].payment(l), b[i].payment(l)) << "worker " << i;
    }
  }
}

std::vector<contract::Contract> reference_contracts(std::uint64_t rounds,
                                                    std::uint64_t seed) {
  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;
  core::StackelbergSimulator sim(core::preset_fleet(5, 2), config);
  sim.run();
  return sim.contracts();
}

std::uint64_t counter_value(const std::string& name) {
  namespace metrics = util::metrics;
  for (const metrics::MetricSnapshot& m : metrics::registry().snapshot()) {
    if (m.name == name) return m.counter;
  }
  return 0;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccd_engine_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineConfig config(std::size_t threads = 2) {
    EngineConfig c;
    c.worker_threads = threads;
    return c;
  }

  std::filesystem::path dir_;
};

TEST_F(EngineTest, SessionDrivenPerRoundMatchesSimulatorRunBitwise) {
  constexpr std::uint64_t kRounds = 12;
  constexpr std::uint64_t kSeed = 3;
  Engine engine(config(4));
  ASSERT_EQ(engine.call(make_open("s", kRounds, kSeed)).status, Status::kOk);

  // Drive one round per request — the maximally fragmented schedule.
  for (std::uint64_t t = 0; t < kRounds; ++t) {
    const Response r = engine.call(make_advance("s", 1));
    ASSERT_EQ(r.status, Status::kOk) << r.message;
    EXPECT_EQ(r.session.next_round, t + 1);
  }
  const Response done = engine.call(make_advance("s", 1));
  EXPECT_TRUE(done.session.finished);

  const Response got = engine.call(make_contracts("s"));
  ASSERT_EQ(got.status, Status::kOk);
  expect_contracts_equal(got.contracts, reference_contracts(kRounds, kSeed));

  // And the cumulative utility is the simulator's, exactly.
  core::SimConfig ref_config;
  ref_config.rounds = kRounds;
  ref_config.seed = kSeed;
  core::StackelbergSimulator ref(core::preset_fleet(5, 2), ref_config);
  EXPECT_EQ(got.session.cumulative_requester_utility,
            ref.run().cumulative_requester_utility);
}

TEST_F(EngineTest, FullQueueAnswersBackpressureWithoutEnqueuing) {
  EngineConfig c;
  c.worker_threads = 1;
  c.queue_capacity = 1;
  Engine engine(c);

  // Block the lone executor: the first ping's done-callback waits until
  // released, so everything behind it stays queued.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  Request ping;
  ping.op = Op::kPing;
  ASSERT_TRUE(engine.submit(ping, [&](Response) {
    started.set_value();
    release_future.wait();
  }));
  started.get_future().wait();

  // Queue is empty again (the blocker is *executing*): one more fits...
  std::promise<Response> queued;
  ASSERT_TRUE(engine.submit(
      ping, [&](Response r) { queued.set_value(std::move(r)); }));

  // ...and the next ones are rejected synchronously with kBackpressure.
  std::vector<Response> rejected;
  for (int i = 0; i < 3; ++i) {
    const bool admitted = engine.submit(
        ping, [&](Response r) { rejected.push_back(std::move(r)); });
    EXPECT_FALSE(admitted);
  }
  ASSERT_EQ(rejected.size(), 3u);
  for (const Response& r : rejected) {
    EXPECT_EQ(r.status, Status::kBackpressure);
  }

  release.set_value();
  EXPECT_EQ(queued.get_future().get().status, Status::kOk);
}

TEST_F(EngineTest, StopDrainsEveryAcknowledgedRequest) {
  EngineConfig c;
  c.worker_threads = 1;
  c.queue_capacity = 64;
  auto engine = std::make_unique<Engine>(c);

  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  Request ping;
  ping.op = Op::kPing;
  ASSERT_TRUE(engine->submit(ping, [&](Response) {
    started.set_value();
    release_future.wait();
  }));
  started.get_future().wait();

  // Queue a burst behind the blocker, then stop() while they are pending.
  std::atomic<int> answered{0};
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (engine->submit(ping, [&](Response r) {
          EXPECT_EQ(r.status, Status::kOk);
          answered.fetch_add(1);
        })) {
      ++admitted;
    }
  }
  ASSERT_EQ(admitted, 10);

  std::thread stopper([&] { engine->stop(); });
  release.set_value();
  stopper.join();
  // stop() returned only after the queue drained: all 10 were answered.
  EXPECT_EQ(answered.load(), 10);

  // Submissions after stop() are rejected explicitly, not dropped.
  std::promise<Response> late;
  EXPECT_FALSE(engine->submit(
      ping, [&](Response r) { late.set_value(std::move(r)); }));
  EXPECT_EQ(late.get_future().get().status, Status::kShuttingDown);
}

TEST_F(EngineTest, DeadlineArmsAtAdmissionAndExpiredWorkResumesBitwise) {
  constexpr std::uint64_t kRounds = 10;
  constexpr std::uint64_t kSeed = 11;
  EngineConfig c;
  c.worker_threads = 1;
  c.queue_capacity = 4;
  Engine engine(c);
  ASSERT_EQ(engine.call(make_open("s", kRounds, kSeed)).status, Status::kOk);

  // Deadlines are measured from admission: park an advance behind a
  // blocked executor until its 1ms budget has burned entirely in the
  // queue. It must be answered kDeadline without touching the session.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  Request ping;
  ping.op = Op::kPing;
  ASSERT_TRUE(engine.submit(ping, [&](Response) {
    started.set_value();
    release_future.wait();
  }));
  started.get_future().wait();

  Request stale = make_advance("s", kRounds);
  stale.deadline_ms = 1;
  std::promise<Response> answered;
  ASSERT_TRUE(engine.submit(
      stale, [&](Response r) { answered.set_value(std::move(r)); }));
  ::usleep(10 * 1000);  // let the queued deadline expire
  release.set_value();

  const Response cut = answered.get_future().get();
  EXPECT_EQ(cut.status, Status::kDeadline);
  EXPECT_NE(cut.message.find("queued"), std::string::npos);
  EXPECT_EQ(engine.call(make_contracts("s")).session.next_round, 0u);

  // The session is untouched; finishing without a deadline lands on the
  // uninterrupted trajectory bitwise.
  const Response rest = engine.call(make_advance("s", kRounds));
  ASSERT_EQ(rest.status, Status::kOk) << rest.message;
  EXPECT_TRUE(rest.session.finished);
  expect_contracts_equal(engine.call(make_contracts("s")).contracts,
                         reference_contracts(kRounds, kSeed));
}

TEST_F(EngineTest, KillAndResumeReproducesUninterruptedContractsBitwise) {
  constexpr std::uint64_t kRounds = 14;
  constexpr std::uint64_t kSeed = 5;

  EngineConfig durable = config();
  durable.checkpoint_dir = dir_.string();

  // Phase 1: open two sessions, advance partway, then drop the engine
  // without a clean close (its destructor checkpoints; the per-round
  // checkpoints would cover a SIGKILL — exercised end-to-end in CI).
  {
    Engine engine(durable);
    ASSERT_EQ(engine.call(make_open("a", kRounds, kSeed)).status, Status::kOk);
    ASSERT_EQ(engine.call(make_open("b", kRounds, kSeed + 1)).status,
              Status::kOk);
    ASSERT_EQ(engine.call(make_advance("a", 9)).status, Status::kOk);
    ASSERT_EQ(engine.call(make_advance("b", 4)).status, Status::kOk);
  }

  // Phase 2: a fresh engine on the same directory restores both sessions
  // and finishes them; results must equal the uninterrupted runs bitwise.
  Engine engine(durable);
  ASSERT_EQ(engine.resume_sessions().restored, 2u);
  EXPECT_EQ(engine.session_count(), 2u);
  ASSERT_EQ(engine.call(make_advance("a", kRounds)).status, Status::kOk);
  ASSERT_EQ(engine.call(make_advance("b", kRounds)).status, Status::kOk);
  expect_contracts_equal(engine.call(make_contracts("a")).contracts,
                         reference_contracts(kRounds, kSeed));
  expect_contracts_equal(engine.call(make_contracts("b")).contracts,
                         reference_contracts(kRounds, kSeed + 1));

  // Closing removes the checkpoint; the next resume finds nothing.
  Request close_a;
  close_a.op = Op::kClose;
  close_a.session = "a";
  ASSERT_EQ(engine.call(close_a).status, Status::kOk);
  Engine fresh(durable);
  EXPECT_EQ(fresh.resume_sessions().restored, 1u);
}

TEST_F(EngineTest, ResumeSkipsCorruptCheckpointsWithoutBlockingTheRest) {
  constexpr std::uint64_t kRounds = 12;
  constexpr std::uint64_t kSeed = 31;
  EngineConfig durable = config();
  durable.checkpoint_dir = dir_.string();

  {
    Engine engine(durable);
    ASSERT_EQ(engine.call(make_open("good", kRounds, kSeed)).status,
              Status::kOk);
    ASSERT_EQ(engine.call(make_open("bad", kRounds, kSeed + 1)).status,
              Status::kOk);
    ASSERT_EQ(engine.call(make_advance("good", 5)).status, Status::kOk);
    ASSERT_EQ(engine.call(make_advance("bad", 5)).status, Status::kOk);
  }

  // Truncate one checkpoint mid-frame: the wire-level checksum cannot
  // hold, so restore must reject it as corrupt.
  const std::string bad_path =
      (dir_ / ("bad" + std::string(Session::checkpoint_suffix(
                   SessionMode::kSimulation))))
          .string();
  std::string bytes;
  {
    std::ifstream in(bad_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 8u);
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

#ifndef CCD_NO_METRICS
  const std::uint64_t skipped0 = counter_value("ccd.serve.resume_skipped");
#endif
  Engine engine(durable);
  const ResumeReport report = engine.resume_sessions();
  EXPECT_EQ(report.restored, 1u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].id, "bad");
  EXPECT_EQ(report.skipped[0].path, bad_path);
  EXPECT_FALSE(report.skipped[0].error.empty());
#ifndef CCD_NO_METRICS
  EXPECT_EQ(counter_value("ccd.serve.resume_skipped") - skipped0, 1u);
#endif

  // The survivor is untouched by its neighbor's corruption.
  ASSERT_EQ(engine.call(make_advance("good", kRounds)).status, Status::kOk);
  expect_contracts_equal(engine.call(make_contracts("good")).contracts,
                         reference_contracts(kRounds, kSeed));
  // The condemned session is not silently resurrected: its file still
  // exists, so "no open session" would lie — the corruption surfaces.
  EXPECT_EQ(engine.call(make_advance("bad", 1)).status, Status::kDataError);
}

TEST_F(EngineTest, IdleSessionsEvictToDiskAndResurrectBitwise) {
  constexpr std::uint64_t kRounds = 10;
  constexpr std::uint64_t kSeed = 17;
  EngineConfig c = config();
  c.checkpoint_dir = dir_.string();
  c.idle_ttl_ms = 25;
#ifndef CCD_NO_METRICS
  const std::uint64_t evicted0 = counter_value("ccd.serve.sessions_evicted");
  const std::uint64_t reloaded0 = counter_value("ccd.serve.sessions_reloaded");
#endif
  Engine engine(c);
  ASSERT_EQ(engine.call(make_open("idle", kRounds, kSeed)).status,
            Status::kOk);
  ASSERT_EQ(engine.call(make_advance("idle", 4)).status, Status::kOk);

  // The reaper checkpoints and frees the slot once the TTL lapses.
  for (int i = 0; i < 500 && engine.session_count() > 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(engine.session_count(), 0u);
#ifndef CCD_NO_METRICS
  EXPECT_GE(counter_value("ccd.serve.sessions_evicted") - evicted0, 1u);
#endif

  // Eviction freed the slot, not the campaign: the next op transparently
  // reloads and the trajectory stays bitwise-exact.
  const Response rest = engine.call(make_advance("idle", kRounds));
  ASSERT_EQ(rest.status, Status::kOk) << rest.message;
  EXPECT_TRUE(rest.session.finished);
  expect_contracts_equal(engine.call(make_contracts("idle")).contracts,
                         reference_contracts(kRounds, kSeed));
#ifndef CCD_NO_METRICS
  EXPECT_GE(counter_value("ccd.serve.sessions_reloaded") - reloaded0, 1u);
#endif

  // Evicting without durability is refused up front, not at eviction time.
  EngineConfig undurable = config();
  undurable.idle_ttl_ms = 10;
  EXPECT_THROW(Engine bad(undurable), Error);
}

TEST_F(EngineTest, IngestSessionRefitsAndResumesBitwise) {
  constexpr std::uint64_t kWorkers = 3;
  const auto observation = [](std::uint64_t round, std::uint64_t worker) {
    IngestObservation obs;
    obs.effort = 1.0 + 0.25 * static_cast<double>((round + worker) % 5);
    obs.feedback = 2.0 + 7.5 * obs.effort - 0.9 * obs.effort * obs.effort;
    obs.accuracy_sample = worker == 0 ? 1.6 : 0.3;
    return obs;
  };
  const auto round_of = [&](std::uint64_t round) {
    std::vector<IngestObservation> obs;
    for (std::uint64_t w = 0; w < kWorkers; ++w) {
      obs.push_back(observation(round, w));
    }
    return obs;
  };
  const auto ingest_request = [&](std::uint64_t round) {
    Request request;
    request.op = Op::kIngest;
    request.session = "obs";
    request.observations = round_of(round);
    return request;
  };
  Request open;
  open.op = Op::kOpen;
  open.session = "obs";
  open.open.mode = SessionMode::kIngest;
  open.open.rounds = 0;  // unbounded
  open.open.workers = kWorkers;
  open.open.refit_every = 4;

  EngineConfig durable = config();
  durable.checkpoint_dir = dir_.string();

  // Uninterrupted reference: 8 rounds in one engine.
  std::vector<contract::Contract> reference;
  {
    Engine engine(config());
    ASSERT_EQ(engine.call(open).status, Status::kOk);
    for (std::uint64_t t = 0; t < 8; ++t) {
      const Response r = engine.call(ingest_request(t));
      ASSERT_EQ(r.status, Status::kOk) << r.message;
      // Redesign fires exactly on refit boundaries.
      EXPECT_EQ(r.redesigned, (t + 1) % 4 == 0);
    }
    reference = engine.call(make_contracts("obs")).contracts;
    for (const contract::Contract& c : reference) {
      EXPECT_FALSE(c.is_zero());
    }
  }

  // Interrupted: restart the engine after round 5, feed the rest.
  {
    Engine engine(durable);
    ASSERT_EQ(engine.call(open).status, Status::kOk);
    for (std::uint64_t t = 0; t < 5; ++t) {
      ASSERT_EQ(engine.call(ingest_request(t)).status, Status::kOk);
    }
  }
  Engine engine(durable);
  ASSERT_EQ(engine.resume_sessions().restored, 1u);
  for (std::uint64_t t = 5; t < 8; ++t) {
    ASSERT_EQ(engine.call(ingest_request(t)).status, Status::kOk);
  }
  expect_contracts_equal(engine.call(make_contracts("obs")).contracts,
                         reference);

  // Wrong observation arity is a config error, not a crash.
  Request bad;
  bad.op = Op::kIngest;
  bad.session = "obs";
  bad.observations = {IngestObservation{}};
  EXPECT_EQ(engine.call(bad).status, Status::kConfigError);
  // advance on an ingest session is refused.
  EXPECT_EQ(engine.call(make_advance("obs", 1)).status, Status::kConfigError);
}

TEST_F(EngineTest, PolicyBackendSessionsMatchTheSimulatorAndResumeBitwise) {
  // A session opened with a learner backend must (a) reproduce one
  // StackelbergSimulator::run of the same config bitwise and (b) survive
  // an engine restart mid-campaign: the learner's arm statistics ride the
  // SCKP v3 checkpoint.
  constexpr std::uint64_t kRounds = 16;
  constexpr std::uint64_t kSeed = 23;
  for (const policy::Kind kind :
       {policy::Kind::kZoomingBandit, policy::Kind::kPostedPrice}) {
    SCOPED_TRACE(policy::to_string(kind));
    const std::string id = std::string("pol_") + policy::to_string(kind);
    Request open = make_open(id, kRounds, kSeed);
    open.open.policy = kind;

    core::SimConfig ref_config;
    ref_config.rounds = kRounds;
    ref_config.seed = kSeed;
    ref_config.policy.kind = kind;
    core::StackelbergSimulator ref(core::preset_fleet(5, 2), ref_config);
    const double ref_utility = ref.run().cumulative_requester_utility;

    const std::filesystem::path backend_dir = dir_ / id;
    std::filesystem::create_directories(backend_dir);
    EngineConfig durable = config();
    durable.checkpoint_dir = backend_dir.string();
    {
      Engine engine(durable);
      ASSERT_EQ(engine.call(open).status, Status::kOk);
      ASSERT_EQ(engine.call(make_advance(id, 7)).status, Status::kOk);
    }
    Engine engine(durable);
    ASSERT_EQ(engine.resume_sessions().restored, 1u);
    const Response done = engine.call(make_advance(id, kRounds));
    ASSERT_EQ(done.status, Status::kOk) << done.message;
    EXPECT_TRUE(done.session.finished);
    EXPECT_EQ(done.session.cumulative_requester_utility, ref_utility);
    expect_contracts_equal(engine.call(make_contracts(id)).contracts,
                           ref.contracts());
  }
}

TEST_F(EngineTest, IngestLearnerSessionResumesBitwise) {
  // Ingest sessions with a learner backend post fresh arms every round and
  // carry their learner state + RNG in the ISES v2 checkpoint; a restart
  // mid-campaign (off the refit cadence) must continue bitwise.
  constexpr std::uint64_t kWorkers = 3;
  const auto ingest_request = [&](std::uint64_t round) {
    Request request;
    request.op = Op::kIngest;
    request.session = "lobs";
    for (std::uint64_t w = 0; w < kWorkers; ++w) {
      IngestObservation obs;
      obs.effort = 1.0 + 0.25 * static_cast<double>((round + w) % 5);
      obs.feedback = 2.0 + 7.5 * obs.effort - 0.9 * obs.effort * obs.effort;
      obs.accuracy_sample = w == 0 ? 1.6 : 0.3;
      request.observations.push_back(obs);
    }
    return request;
  };
  Request open;
  open.op = Op::kOpen;
  open.session = "lobs";
  open.open.mode = SessionMode::kIngest;
  open.open.rounds = 0;
  open.open.workers = kWorkers;
  open.open.refit_every = 4;
  open.open.policy = policy::Kind::kZoomingBandit;

  std::vector<contract::Contract> reference;
  {
    Engine engine(config());
    ASSERT_EQ(engine.call(open).status, Status::kOk);
    for (std::uint64_t t = 0; t < 10; ++t) {
      const Response r = engine.call(ingest_request(t));
      ASSERT_EQ(r.status, Status::kOk) << r.message;
      // Learners post every round, not just on refit boundaries.
      EXPECT_TRUE(r.redesigned);
    }
    reference = engine.call(make_contracts("lobs")).contracts;
  }

  EngineConfig durable = config();
  durable.checkpoint_dir = dir_.string();
  {
    Engine engine(durable);
    ASSERT_EQ(engine.call(open).status, Status::kOk);
    for (std::uint64_t t = 0; t < 6; ++t) {
      ASSERT_EQ(engine.call(ingest_request(t)).status, Status::kOk);
    }
  }
  Engine engine(durable);
  ASSERT_EQ(engine.resume_sessions().restored, 1u);
  for (std::uint64_t t = 6; t < 10; ++t) {
    ASSERT_EQ(engine.call(ingest_request(t)).status, Status::kOk);
  }
  expect_contracts_equal(engine.call(make_contracts("lobs")).contracts,
                         reference);
}

TEST_F(EngineTest, OpenValidationAndIdempotence) {
  Engine engine(config());
  EXPECT_EQ(engine.call(make_open("bad id!", 4, 1)).status,
            Status::kConfigError);
  EXPECT_EQ(engine.call(make_advance("ghost", 1)).status,
            Status::kConfigError);

  ASSERT_EQ(engine.call(make_open("dup", 4, 1)).status, Status::kOk);
  EXPECT_EQ(engine.call(make_open("dup", 4, 1)).status, Status::kConfigError);
  Request attach = make_open("dup", 4, 1);
  attach.open.allow_existing = true;
  EXPECT_EQ(engine.call(attach).status, Status::kOk);

  EngineConfig tiny = config();
  tiny.max_sessions = 1;
  Engine capped(tiny);
  ASSERT_EQ(capped.call(make_open("one", 4, 1)).status, Status::kOk);
  const Response full = capped.call(make_open("two", 4, 1));
  EXPECT_EQ(full.status, Status::kConfigError);
  EXPECT_NE(full.message.find("session limit"), std::string::npos);
}

#ifndef CCD_NO_METRICS
TEST_F(EngineTest, ServeCountersReconcileWithClientObservedCounts) {
  const std::uint64_t submitted0 = counter_value("ccd.serve.submitted");
  const std::uint64_t responses0 = counter_value("ccd.serve.responses");
  const std::uint64_t backpressure0 = counter_value("ccd.serve.backpressure");
  const std::uint64_t rounds0 = counter_value("ccd.serve.rounds");
  const std::uint64_t opened0 = counter_value("ccd.serve.sessions_opened");
  const std::uint64_t closed0 = counter_value("ccd.serve.sessions_closed");

  std::uint64_t client_requests = 0;
  std::uint64_t client_responses = 0;
  std::uint64_t client_backpressure = 0;
  std::uint64_t client_rounds = 0;

  {
    EngineConfig c;
    c.worker_threads = 1;
    c.queue_capacity = 1;
    Engine engine(c);
    const auto tracked = [&](Request request) {
      ++client_requests;
      const Response r = engine.call(std::move(request));
      ++client_responses;
      if (r.status == Status::kBackpressure) ++client_backpressure;
      return r;
    };

    ASSERT_EQ(tracked(make_open("m", 6, 2)).status, Status::kOk);
    for (int i = 0; i < 3; ++i) {
      const Response r = tracked(make_advance("m", 2));
      ASSERT_EQ(r.status, Status::kOk);
      client_rounds += 2;
    }
    Request close;
    close.op = Op::kClose;
    close.session = "m";
    ASSERT_EQ(tracked(close).status, Status::kOk);

    // A deterministic backpressure episode, counted on both sides.
    std::promise<void> started;
    std::promise<void> release;
    std::shared_future<void> release_future = release.get_future().share();
    Request ping;
    ping.op = Op::kPing;
    ++client_requests;
    ASSERT_TRUE(engine.submit(ping, [&](Response) {
      started.set_value();
      release_future.wait();
    }));
    started.get_future().wait();
    ++client_requests;
    ASSERT_TRUE(engine.submit(ping, [&](Response) {}));  // fills the queue
    tracked(ping);  // rejected: queue full
    release.set_value();
    engine.stop();
    client_responses += 2;  // the blocker and the queued ping answered
  }

  EXPECT_EQ(counter_value("ccd.serve.submitted") - submitted0,
            client_requests);
  EXPECT_EQ(counter_value("ccd.serve.responses") - responses0,
            client_responses);
  EXPECT_EQ(counter_value("ccd.serve.backpressure") - backpressure0,
            client_backpressure);
  EXPECT_EQ(client_backpressure, 1u);
  EXPECT_EQ(counter_value("ccd.serve.rounds") - rounds0, client_rounds);
  EXPECT_EQ(counter_value("ccd.serve.sessions_opened") - opened0, 1u);
  EXPECT_EQ(counter_value("ccd.serve.sessions_closed") - closed0, 1u);
}
#endif  // CCD_NO_METRICS

}  // namespace
}  // namespace ccd::serve
