#include "contract/candidate.hpp"

#include "contract/bounds.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);
constexpr double kBeta = 1.0;

TEST(CandidateTest, SlopesLandInCaseThreeWindow) {
  const WorkerIncentives inc{kBeta, 0.0};
  const std::size_t m = 10;
  const double delta = kPsi.usable_domain() / m;
  CandidateBuildInfo info;
  build_candidate(kPsi, delta, m, m, inc, &info);
  ASSERT_EQ(info.raw_slopes.size(), m);
  for (std::size_t l = 1; l <= m; ++l) {
    const double lo = kBeta / kPsi.derivative(delta * (l - 1)) - inc.omega;
    const double hi = kBeta / kPsi.derivative(delta * l) - inc.omega;
    EXPECT_GT(info.raw_slopes[l - 1], lo) << "l=" << l;
    EXPECT_LT(info.raw_slopes[l - 1], hi) << "l=" << l;
  }
}

TEST(CandidateTest, SlopesAreIncreasingTowardTarget) {
  // The Eq. 39 recurrence produces strictly increasing slopes (the contract
  // is convex up to k), which is what makes higher intervals preferable.
  const WorkerIncentives inc{kBeta, 0.0};
  const std::size_t m = 12;
  const double delta = kPsi.usable_domain() / m;
  CandidateBuildInfo info;
  build_candidate(kPsi, delta, m, m, inc, &info);
  for (std::size_t i = 1; i < info.raw_slopes.size(); ++i) {
    EXPECT_GT(info.raw_slopes[i], info.raw_slopes[i - 1]);
  }
}

TEST(CandidateTest, FlatBeyondTargetInterval) {
  const WorkerIncentives inc{kBeta, 0.0};
  const std::size_t m = 10;
  const std::size_t k = 4;
  const double delta = kPsi.usable_domain() / m;
  const Contract c = build_candidate(kPsi, delta, m, k, inc);
  for (std::size_t l = k; l <= m; ++l) {
    EXPECT_DOUBLE_EQ(c.payment(l), c.payment(k));
  }
}

TEST(CandidateTest, PaymentsStartAtZero) {
  const WorkerIncentives inc{kBeta, 0.0};
  const double delta = kPsi.usable_domain() / 8;
  const Contract c = build_candidate(kPsi, delta, 8, 5, inc);
  EXPECT_DOUBLE_EQ(c.payment(0), 0.0);
}

TEST(CandidateTest, BestResponseLandsInTargetInterval) {
  // The defining property (Eq. 36): under candidate xi^(k) the worker's
  // optimal effort falls in [(k-1)delta, k delta).
  const WorkerIncentives inc{kBeta, 0.0};
  for (const std::size_t m : {5ul, 10ul, 20ul}) {
    const double delta = kPsi.usable_domain() / static_cast<double>(m);
    for (std::size_t k = 1; k <= m; ++k) {
      const Contract c = build_candidate(kPsi, delta, m, k, inc);
      const BestResponse br = best_response(c, kPsi, inc);
      EXPECT_EQ(br.interval, k) << "m=" << m << " k=" << k;
    }
  }
}

TEST(CandidateTest, BestResponseInTargetIntervalForMalicious) {
  // With omega > 0 small enough that contract slopes stay positive, the
  // same interval-targeting property holds.
  const WorkerIncentives inc{kBeta, 0.1};
  const std::size_t m = 10;
  const double delta = kPsi.usable_domain() / m;
  for (std::size_t k = 2; k <= m; ++k) {
    const Contract c = build_candidate(kPsi, delta, m, k, inc);
    const BestResponse br = best_response(c, kPsi, inc);
    EXPECT_EQ(br.interval, k) << "k=" << k;
  }
}

TEST(CandidateTest, LargeOmegaClampsSlopesAtZero) {
  // A strongly self-motivated worker needs no pay: raw slopes go negative
  // and applied slopes clamp to zero, keeping the contract monotone.
  const WorkerIncentives inc{kBeta, 2.0};
  const std::size_t m = 8;
  const double delta = kPsi.usable_domain() / m;
  CandidateBuildInfo info;
  const Contract c = build_candidate(kPsi, delta, m, m, inc, &info);
  bool any_clamped = false;
  for (std::size_t i = 0; i < info.raw_slopes.size(); ++i) {
    EXPECT_GE(info.applied_slopes[i], 0.0);
    if (info.raw_slopes[i] < 0.0) {
      EXPECT_DOUBLE_EQ(info.applied_slopes[i], 0.0);
      any_clamped = true;
    }
  }
  EXPECT_TRUE(any_clamped);
  // Contract is still valid (monotone non-negative): pay 0 everywhere here.
  EXPECT_GE(c.max_payment(), 0.0);
}

TEST(CandidateTest, EpsilonsMatchEq40OnFineGrids) {
  // On a fine grid the Eq. 40 value is below the window cap and is used
  // verbatim.
  const WorkerIncentives inc{kBeta, 0.0};
  const std::size_t m = 64;
  const double delta = kPsi.usable_domain() / m;
  CandidateBuildInfo info;
  build_candidate(kPsi, delta, m, m, inc, &info);
  const double r2 = kPsi.r2();
  for (std::size_t l = 1; l <= m; ++l) {
    const double s_prev = kPsi.derivative(delta * (l - 1));
    const double s_here = kPsi.derivative(delta * l);
    const double eq40 =
        4.0 * kBeta * r2 * r2 * delta * delta / (s_prev * s_prev * s_here);
    EXPECT_LE(info.epsilons[l - 1], eq40 + 1e-12);
    EXPECT_GT(info.epsilons[l - 1], 0.0);
  }
}

TEST(CandidateTest, CoarseGridEpsilonStaysInsideWindow) {
  // The cap keeps slopes strictly inside the Case-III window even at m = 1,
  // where Eq. 40's raw epsilon would overshoot to the Case-II edge.
  const WorkerIncentives inc{kBeta, 0.0};
  const double delta = kPsi.usable_domain();  // one huge interval
  CandidateBuildInfo info;
  build_candidate(kPsi, delta, 1, 1, inc, &info);
  const double left = kBeta / kPsi.derivative(0.0);
  const double right = kBeta / kPsi.derivative(delta);
  EXPECT_GT(info.raw_slopes[0], left);
  EXPECT_LT(info.raw_slopes[0], left + 0.1 * (right - left));
}

TEST(CandidateTest, RawEq40EpsilonBreaksLemma42OnCoarseGrids) {
  // Documents the deviation: with the paper's raw Eq. 40 epsilon, a one-
  // interval grid produces slopes at the Case-II edge and pay far above
  // Lemma 4.2's cap; the capped construction stays below it.
  const WorkerIncentives inc{kBeta, 0.0};
  const double delta = kPsi.usable_domain();
  const Contract raw =
      build_candidate(kPsi, delta, 1, 1, inc, nullptr, /*cap_epsilon=*/false);
  const Contract capped = build_candidate(kPsi, delta, 1, 1, inc);
  const double cap = lemma42_compensation_upper(kPsi, kBeta, delta, 1);
  const BestResponse raw_br = best_response(raw, kPsi, inc);
  const BestResponse capped_br = best_response(capped, kPsi, inc);
  EXPECT_GT(raw_br.compensation, cap);
  EXPECT_LE(capped_br.compensation, cap + 1e-9);
}

TEST(CandidateTest, EpsilonVariantsConvergeOnFineGrids) {
  // Both constructions approach the same minimal-pay contract as the grid
  // densifies (epsilon -> 0): the relative gap in induced pay shrinks
  // monotonically and is below 1% by m = 64.
  const WorkerIncentives inc{kBeta, 0.0};
  double prev_gap = 1e300;
  for (const std::size_t m : {4ul, 16ul, 64ul}) {
    const double delta = kPsi.usable_domain() / static_cast<double>(m);
    const Contract raw = build_candidate(kPsi, delta, m, m, inc, nullptr,
                                         /*cap_epsilon=*/false);
    const Contract capped = build_candidate(kPsi, delta, m, m, inc);
    const double raw_pay = best_response(raw, kPsi, inc).compensation;
    const double capped_pay = best_response(capped, kPsi, inc).compensation;
    const double gap = (raw_pay - capped_pay) / capped_pay;
    EXPECT_GE(gap, -1e-9) << "m=" << m;  // raw always pays at least as much
    EXPECT_LT(gap, prev_gap) << "m=" << m;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.01);
}

TEST(CandidateTest, RejectsGridPastPeak) {
  const WorkerIncentives inc{kBeta, 0.0};
  // delta * m = 4.4 > y_peak = 4.
  EXPECT_THROW(build_candidate(kPsi, 0.55, 8, 4, inc), ContractError);
}

TEST(CandidateTest, ValidatesParameters) {
  const WorkerIncentives inc{kBeta, 0.0};
  EXPECT_THROW(build_candidate(kPsi, 0.0, 5, 3, inc), Error);   // delta
  EXPECT_THROW(build_candidate(kPsi, 0.1, 0, 1, inc), Error);   // m = 0
  EXPECT_THROW(build_candidate(kPsi, 0.1, 5, 0, inc), Error);   // k = 0
  EXPECT_THROW(build_candidate(kPsi, 0.1, 5, 6, inc), Error);   // k > m
  EXPECT_THROW(build_candidate(kPsi, 0.1, 5, 3, WorkerIncentives{0.0, 0.0}),
               Error);
}

TEST(CandidateTest, DegenerateWindowKeepsEpsilonPositive) {
  // With nearly-flat curvature (|r2| tiny) adjacent psi' values agree to
  // the last bit, so the capped Case-III window collapses: the former
  // epsilon cap min(eq40, 0.05 * width) went non-positive (or numerically
  // inert, base + eps == base), silently dropping Eq. 36's strict
  // preference. Such intervals must now be flagged and take a positive
  // floor that actually moves the slope.
  const effort::QuadraticEffort psi(-1e-18, 8.0, 2.0);
  const WorkerIncentives inc{1.0, 0.0};
  const double delta = 0.1;
  const std::size_t m = 4;
  CandidateBuildInfo info;
  const Contract c = build_candidate(psi, delta, m, m, inc, &info);
  EXPECT_TRUE(info.any_degenerate());
  ASSERT_EQ(info.epsilons.size(), m);
  ASSERT_EQ(info.raw_slopes.size(), m);
  for (std::size_t l = 0; l < m; ++l) {
    // Every epsilon is strictly positive and numerically *effective*: the
    // slope actually sits above the indifference base (which the former
    // min() could leave exactly at base, eps == 0).
    EXPECT_GT(info.epsilons[l], 0.0) << "interval " << l + 1;
    EXPECT_GT(info.raw_slopes[l], info.raw_slopes[l] - info.epsilons[l])
        << "interval " << l + 1;
  }
  // The contract is still well-formed (monotone payments on the grid).
  for (std::size_t l = 1; l <= m; ++l) {
    EXPECT_GT(c.payment(l), c.payment(l - 1)) << "knot " << l;
  }

  // A healthy grid never trips the flag.
  CandidateBuildInfo healthy;
  build_candidate(kPsi, kPsi.usable_domain() / 8.0, 8, 8, inc, &healthy);
  EXPECT_FALSE(healthy.any_degenerate());
}

TEST(CandidateTest, DifferentPsiShapes) {
  // The construction must work for any feasible quadratic.
  const WorkerIncentives inc{0.7, 0.0};
  for (const auto& [r2, r1, r0] :
       {std::tuple{-0.5, 4.0, 0.0}, std::tuple{-2.0, 12.0, 5.0},
        std::tuple{-0.1, 1.0, 0.5}}) {
    const effort::QuadraticEffort psi(r2, r1, r0);
    const std::size_t m = 7;
    const double delta = psi.usable_domain() / m;
    for (std::size_t k = 1; k <= m; ++k) {
      const Contract c = build_candidate(psi, delta, m, k, inc);
      const BestResponse br = best_response(c, psi, inc);
      EXPECT_EQ(br.interval, k)
          << "psi(" << r2 << "," << r1 << "," << r0 << ") k=" << k;
    }
  }
}

}  // namespace
}  // namespace ccd::contract
