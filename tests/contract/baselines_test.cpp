#include "contract/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);

SubproblemSpec base_spec() {
  SubproblemSpec spec;
  spec.psi = kPsi;
  spec.incentives = {1.0, 0.0};
  spec.weight = 1.0;
  spec.mu = 1.0;
  spec.intervals = 20;
  return spec;
}

TEST(FixedThresholdTest, GenerousPaymentIsAccepted) {
  const FixedContractOutcome out =
      fixed_threshold_baseline(base_spec(), 5.0, 1.0);
  EXPECT_TRUE(out.accepted);
  EXPECT_DOUBLE_EQ(out.effort, 1.0);  // honest worker does exactly the minimum
  EXPECT_DOUBLE_EQ(out.compensation, 5.0);
  EXPECT_DOUBLE_EQ(out.worker_utility, 5.0 - 1.0);
}

TEST(FixedThresholdTest, StingyPaymentIsDeclined) {
  const FixedContractOutcome out =
      fixed_threshold_baseline(base_spec(), 0.5, 1.0);
  EXPECT_FALSE(out.accepted);
  EXPECT_DOUBLE_EQ(out.effort, 0.0);
  EXPECT_DOUBLE_EQ(out.compensation, 0.0);
}

TEST(FixedThresholdTest, BreakEvenPaymentDeclined) {
  // Payment exactly beta * y_min leaves the worker indifferent; ties break
  // toward not working.
  const FixedContractOutcome out =
      fixed_threshold_baseline(base_spec(), 1.0, 1.0);
  EXPECT_FALSE(out.accepted);
}

TEST(FixedThresholdTest, MaliciousWorkerMayExceedThreshold) {
  SubproblemSpec spec = base_spec();
  spec.incentives.omega = 0.5;
  const FixedContractOutcome out = fixed_threshold_baseline(spec, 2.0, 1.0);
  EXPECT_TRUE(out.accepted);
  // Feedback motive pushes past the minimum effort: psi'(y) = beta/omega = 2
  // at y = 3.
  EXPECT_NEAR(out.effort, 3.0, 1e-9);
}

TEST(FixedThresholdTest, MaliciousWorkerBelowThresholdStillWorks) {
  SubproblemSpec spec = base_spec();
  spec.incentives.omega = 0.5;
  // Small pay, high threshold: worker declines the contract but still exerts
  // its self-motivated effort.
  const FixedContractOutcome out = fixed_threshold_baseline(spec, 0.1, 3.5);
  EXPECT_FALSE(out.accepted);
  EXPECT_NEAR(out.effort, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.compensation, 0.0);
}

TEST(FixedThresholdTest, RequesterUtilityConsistent) {
  const SubproblemSpec spec = base_spec();
  const FixedContractOutcome out = fixed_threshold_baseline(spec, 3.0, 1.5);
  EXPECT_NEAR(out.requester_utility,
              spec.weight * out.feedback - spec.mu * out.compensation, 1e-12);
}

TEST(FixedThresholdTest, ValidatesInputs) {
  EXPECT_THROW(fixed_threshold_baseline(base_spec(), -1.0, 1.0), Error);
  EXPECT_THROW(fixed_threshold_baseline(base_spec(), 1.0, -1.0), Error);
}

TEST(OracleTest, DominatesDesignedContract) {
  // The oracle relaxes the contract-shape restriction, so it upper-bounds
  // the piecewise-linear design.
  for (const double omega : {0.0, 0.4}) {
    SubproblemSpec spec = base_spec();
    spec.incentives.omega = omega;
    const OracleOutcome oracle = oracle_optimal(spec);
    const DesignResult designed = design_contract(spec);
    EXPECT_GE(oracle.requester_utility,
              designed.requester_utility - 1e-6)
        << "omega=" << omega;
  }
}

TEST(OracleTest, DesignApproachesOracleWithDenseGrid) {
  SubproblemSpec spec = base_spec();
  spec.intervals = 160;
  const OracleOutcome oracle = oracle_optimal(spec);
  const DesignResult designed = design_contract(spec);
  EXPECT_NEAR(designed.requester_utility, oracle.requester_utility,
              0.02 * std::abs(oracle.requester_utility));
}

TEST(OracleTest, MaliciousEffortIsCheaper) {
  SubproblemSpec honest = base_spec();
  SubproblemSpec malicious = base_spec();
  malicious.incentives.omega = 0.5;
  const OracleOutcome h = oracle_optimal(honest);
  const OracleOutcome m = oracle_optimal(malicious);
  EXPECT_LT(m.compensation, h.compensation);
}

TEST(OracleTest, ZeroWeightPrefersZeroEffort) {
  SubproblemSpec spec = base_spec();
  spec.weight = 1e-9;
  const OracleOutcome out = oracle_optimal(spec);
  EXPECT_DOUBLE_EQ(out.effort, 0.0);
  EXPECT_DOUBLE_EQ(out.compensation, 0.0);
}

TEST(OracleTest, CompensationIsIndividuallyRational) {
  const SubproblemSpec spec = base_spec();
  const OracleOutcome out = oracle_optimal(spec);
  // c >= beta * y for an honest worker.
  EXPECT_GE(out.compensation, spec.incentives.beta * out.effort - 1e-9);
}

TEST(OracleTest, ValidatesGrid) {
  EXPECT_THROW(oracle_optimal(base_spec(), 1), Error);
}

}  // namespace
}  // namespace ccd::contract
