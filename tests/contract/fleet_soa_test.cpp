#include "contract/fleet_soa.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "contract/arena.hpp"
#include "contract/design_cache.hpp"
#include "contract/ksweep.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ccd::contract {
namespace {

// Same sharing pattern as the pipeline: a few distinct weight-independent
// specs, weights spanning excluded (<= 0), fallback-tiny, and normal.
std::vector<SubproblemSpec> random_fleet(std::size_t n, std::uint64_t seed) {
  const struct {
    double r2, r1, r0, beta, omega, mu;
    std::size_t intervals;
  } classes[] = {
      {-1.0, 8.0, 2.0, 1.0, 0.0, 1.0, 20},
      {-0.8, 6.0, 1.5, 1.2, 0.3, 1.0, 20},
      {-1.2, 9.0, 2.5, 0.9, 0.5, 1.5, 16},
      {-0.9, 7.0, 1.0, 1.0, 0.2, 0.8, 24},
      {-1.1, 8.5, 0.5, 1.4, 0.0, 2.0, 12},
  };
  constexpr std::size_t kClasses = sizeof(classes) / sizeof(classes[0]);
  util::Rng rng(seed);
  std::vector<SubproblemSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cls = classes[rng.next_u64() % kClasses];
    SubproblemSpec spec;
    spec.psi = effort::QuadraticEffort(cls.r2, cls.r1, cls.r0);
    spec.incentives = {cls.beta, cls.omega};
    spec.mu = cls.mu;
    spec.intervals = cls.intervals;
    spec.weight = rng.uniform(-0.2, 3.0);
    specs.push_back(spec);
  }
  return specs;
}

// Specs exercising the bit-pattern corners of the cache key: -0.0 omega /
// r0 (canonicalized into the +0.0 class) and a denormal r0.
std::vector<SubproblemSpec> tricky_specs() {
  std::vector<SubproblemSpec> specs;
  SubproblemSpec a;
  a.psi = effort::QuadraticEffort(-1.0, 8.0, 0.0);
  a.incentives = {1.0, 0.0};
  a.weight = 1.5;
  specs.push_back(a);

  SubproblemSpec b = a;  // sign-of-zero twin of `a`
  b.psi = effort::QuadraticEffort(-1.0, 8.0, -0.0);
  b.incentives.omega = -0.0;  // passes omega >= 0
  b.weight = 0.7;
  specs.push_back(b);

  SubproblemSpec c = a;  // denormal r0: its own class
  c.psi = effort::QuadraticEffort(
      -1.0, 8.0, std::numeric_limits<double>::denorm_min());
  c.weight = 2.0;
  specs.push_back(c);

  SubproblemSpec d = a;  // weight-excluded member of a's class
  d.weight = -0.0;
  specs.push_back(d);
  return specs;
}

void expect_fleet_matches_reference(const FleetSoA& fleet,
                                    const FleetDesignResult& result,
                                    const std::vector<SubproblemSpec>& specs) {
  ASSERT_EQ(result.workers(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DesignResult reference = design_contract(specs[i]);
    EXPECT_EQ(result.resolved[i], 1) << "worker " << i;
    EXPECT_EQ(result.excluded[i] != 0, reference.excluded) << "worker " << i;
    EXPECT_EQ(result.k_opt[i], reference.k_opt) << "worker " << i;
    EXPECT_EQ(result.requester_utility[i], reference.requester_utility)
        << "worker " << i;
    EXPECT_EQ(result.upper_bound[i], reference.upper_bound) << "worker " << i;
    EXPECT_EQ(result.lower_bound[i], reference.lower_bound) << "worker " << i;
    EXPECT_EQ(result.effort[i], reference.response.effort) << "worker " << i;
    EXPECT_EQ(result.worker_utility[i], reference.response.utility)
        << "worker " << i;
    EXPECT_EQ(result.feedback[i], reference.response.feedback)
        << "worker " << i;
    EXPECT_EQ(result.compensation[i], reference.response.compensation)
        << "worker " << i;
    EXPECT_EQ(result.response_interval[i], reference.response.interval)
        << "worker " << i;
  }
  (void)fleet;
}

TEST(ScratchArenaTest, PointersStableAndCapacityRetained) {
  ScratchArena arena;
  double* a = arena.doubles(100);
  a[0] = 1.0;
  a[99] = 2.0;
  // A block-spilling allocation must not move the first span.
  double* b = arena.zeroed_doubles(10000);
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(a[99], 2.0);
  EXPECT_EQ(b[0], 0.0);
  EXPECT_EQ(b[9999], 0.0);
  const std::size_t capacity = arena.capacity();
  EXPECT_GE(capacity, 10100u);

  arena.reset();
  // Same demand after reset reuses the blocks: capacity unchanged.
  arena.doubles(100);
  arena.doubles(10000);
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.doubles(0), nullptr);
}

TEST(FleetSoATest, GroupsWorkersByCanonicalClass) {
  const std::vector<SubproblemSpec> specs = tricky_specs();
  const FleetSoA fleet = FleetSoA::from_specs(specs);
  ASSERT_EQ(fleet.workers(), 4u);
  // a, b, d share the canonical class (b only via -0.0 normalization);
  // the denormal-r0 spec is its own class.
  ASSERT_EQ(fleet.classes(), 2u);
  EXPECT_EQ(fleet.class_of[0], 0u);
  EXPECT_EQ(fleet.class_of[1], 0u);
  EXPECT_EQ(fleet.class_of[2], 1u);
  EXPECT_EQ(fleet.class_of[3], 0u);
  // Canonical fields: the -0.0s are stored as +0.0.
  EXPECT_FALSE(std::signbit(fleet.omega[0]));
  EXPECT_FALSE(std::signbit(fleet.r0[0]));
  EXPECT_EQ(fleet.first_positive[0], 0u);
  EXPECT_EQ(fleet.first_positive[1], 2u);
  // CSR: class 0 holds workers {0, 1, 3} in input order, class 1 holds {2}.
  ASSERT_EQ(fleet.class_begin.size(), 3u);
  EXPECT_EQ(fleet.class_begin[1] - fleet.class_begin[0], 3u);
  EXPECT_EQ(fleet.order[0], 0u);
  EXPECT_EQ(fleet.order[1], 1u);
  EXPECT_EQ(fleet.order[2], 3u);
  EXPECT_EQ(fleet.order[3], 2u);
  EXPECT_EQ(fleet.grouped_weight[2], specs[3].weight);
  // worker_spec round-trips the per-worker view.
  EXPECT_EQ(fleet.worker_spec(1).weight, specs[1].weight);
  EXPECT_EQ(fleet.worker_spec(1).intervals, specs[1].intervals);
}

TEST(FleetSoATest, AllExcludedClassHasNoRepresentative) {
  std::vector<SubproblemSpec> specs = tricky_specs();
  for (SubproblemSpec& spec : specs) {
    if (spec.intervals == specs[2].intervals &&
        spec.psi.r0() == specs[2].psi.r0()) {
      spec.weight = -1.0;
    }
  }
  specs[2].weight = 0.0;
  const FleetSoA fleet = FleetSoA::from_specs(specs);
  EXPECT_EQ(fleet.first_positive[fleet.class_of[2]], FleetSoA::npos);
}

TEST(FleetDesignTest, ScalarKernelMatchesDesignContract) {
  const std::vector<SubproblemSpec> specs = random_fleet(150, 42);
  const FleetSoA fleet = FleetSoA::from_specs(specs);
  FleetOptions options;
  options.kernel = SweepKernel::kScalar;
  const FleetDesignResult result = design_fleet(fleet, options);
  expect_fleet_matches_reference(fleet, result, specs);
}

TEST(FleetDesignTest, SimdKernelMatchesDesignContract) {
  // The SIMD/portable kernels use only mul/sub/compare — no FMA — so on
  // this repo's default builds (no -ffast-math, no forced contraction in
  // the kernels) every lane performs the scalar rounding sequence and the
  // comparison is exact, including the tricky -0.0/denormal classes.
  std::vector<SubproblemSpec> specs = random_fleet(150, 43);
  const std::vector<SubproblemSpec> tricky = tricky_specs();
  specs.insert(specs.end(), tricky.begin(), tricky.end());
  const FleetSoA fleet = FleetSoA::from_specs(specs);
  FleetOptions options;
  options.kernel = SweepKernel::kSimd;
  const FleetDesignResult result = design_fleet(fleet, options);
  expect_fleet_matches_reference(fleet, result, specs);
}

TEST(FleetDesignTest, PortableFallbackMatchesSimd) {
  const std::vector<SubproblemSpec> specs = random_fleet(100, 44);
  const FleetSoA fleet = FleetSoA::from_specs(specs);
  FleetOptions simd;
  FleetOptions portable;
  portable.force_portable = true;
  const FleetDesignResult a = design_fleet(fleet, simd);
  const FleetDesignResult b = design_fleet(fleet, portable);
  ASSERT_EQ(a.workers(), b.workers());
  for (std::size_t i = 0; i < a.workers(); ++i) {
    EXPECT_EQ(a.k_opt[i], b.k_opt[i]) << "worker " << i;
    EXPECT_EQ(a.requester_utility[i], b.requester_utility[i])
        << "worker " << i;
    EXPECT_EQ(a.upper_bound[i], b.upper_bound[i]) << "worker " << i;
    EXPECT_EQ(a.lower_bound[i], b.lower_bound[i]) << "worker " << i;
    EXPECT_EQ(a.excluded[i], b.excluded[i]) << "worker " << i;
  }
}

TEST(FleetDesignTest, ResultAtMatchesDesignContract) {
  const std::vector<SubproblemSpec> specs = random_fleet(60, 45);
  const FleetSoA fleet = FleetSoA::from_specs(specs);
  const FleetDesignResult result = design_fleet(fleet);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DesignResult scalarized = result.result_at(fleet, i);
    const DesignResult reference = design_contract(fleet.worker_spec(i));
    EXPECT_EQ(scalarized.k_opt, reference.k_opt) << "worker " << i;
    EXPECT_EQ(scalarized.requester_utility, reference.requester_utility)
        << "worker " << i;
    EXPECT_EQ(scalarized.utility_by_k, reference.utility_by_k)
        << "worker " << i;
    EXPECT_EQ(scalarized.pay_by_k, reference.pay_by_k) << "worker " << i;
    EXPECT_EQ(scalarized.excluded, reference.excluded) << "worker " << i;
  }
}

TEST(FleetDesignTest, StatsMatchBatchAccounting) {
  const std::vector<SubproblemSpec> specs = random_fleet(120, 46);
  DesignCacheStats batch_stats;
  design_contracts_batch(specs, {}, &batch_stats);
  DesignCacheStats fleet_stats;
  design_fleet(FleetSoA::from_specs(specs), {}, &fleet_stats);
  EXPECT_EQ(fleet_stats.lookups, batch_stats.lookups);
  EXPECT_EQ(fleet_stats.hits, batch_stats.hits);
  EXPECT_EQ(fleet_stats.misses, batch_stats.misses);
  EXPECT_EQ(fleet_stats.sweep_steps_computed,
            batch_stats.sweep_steps_computed);
  EXPECT_EQ(fleet_stats.sweep_steps_avoided, batch_stats.sweep_steps_avoided);
}

// The randomized property the PR's bug fixes pin down: cached, uncached,
// SoA-batched (scalar kernel), and SIMD designs agree for every worker —
// bitwise on the scalar paths (EXPECT_EQ on doubles is exact equality) —
// across fleets that include -0.0 and denormal spec fields.
TEST(FleetDesignTest, CachedUncachedBatchedAndSimdAgreeProperty) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    std::vector<SubproblemSpec> specs = random_fleet(80, seed);
    const std::vector<SubproblemSpec> tricky = tricky_specs();
    specs.insert(specs.end(), tricky.begin(), tricky.end());

    DesignCache cache;
    BatchOptions batch_options;
    batch_options.cache = &cache;
    const std::vector<DesignResult> batched =
        design_contracts_batch(specs, batch_options);

    BatchOptions simd_options = batch_options;
    simd_options.kernel = SweepKernel::kSimd;
    const std::vector<DesignResult> simd =
        design_contracts_batch(specs, simd_options);

    const FleetSoA fleet = FleetSoA::from_specs(specs);
    FleetOptions fleet_options;
    fleet_options.cache = &cache;
    const FleetDesignResult soa = design_fleet(fleet, fleet_options);

    for (std::size_t i = 0; i < specs.size(); ++i) {
      const DesignResult uncached = design_contract(specs[i]);
      const DesignResult cached = cache.design(specs[i]);
      EXPECT_EQ(cached.k_opt, uncached.k_opt) << "seed " << seed << " " << i;
      EXPECT_EQ(cached.requester_utility, uncached.requester_utility)
          << "seed " << seed << " " << i;
      EXPECT_EQ(batched[i].k_opt, uncached.k_opt)
          << "seed " << seed << " " << i;
      EXPECT_EQ(batched[i].requester_utility, uncached.requester_utility)
          << "seed " << seed << " " << i;
      EXPECT_EQ(batched[i].upper_bound, uncached.upper_bound)
          << "seed " << seed << " " << i;
      EXPECT_EQ(batched[i].lower_bound, uncached.lower_bound)
          << "seed " << seed << " " << i;
      EXPECT_EQ(batched[i].utility_by_k, uncached.utility_by_k)
          << "seed " << seed << " " << i;
      EXPECT_EQ(batched[i].pay_by_k, uncached.pay_by_k)
          << "seed " << seed << " " << i;
      EXPECT_EQ(simd[i].k_opt, uncached.k_opt) << "seed " << seed << " " << i;
      EXPECT_EQ(simd[i].requester_utility, uncached.requester_utility)
          << "seed " << seed << " " << i;
      EXPECT_EQ(simd[i].upper_bound, uncached.upper_bound)
          << "seed " << seed << " " << i;
      EXPECT_EQ(simd[i].lower_bound, uncached.lower_bound)
          << "seed " << seed << " " << i;
      EXPECT_EQ(simd[i].utility_by_k, uncached.utility_by_k)
          << "seed " << seed << " " << i;
      EXPECT_EQ(simd[i].excluded, uncached.excluded)
          << "seed " << seed << " " << i;
      EXPECT_EQ(soa.k_opt[i], uncached.k_opt) << "seed " << seed << " " << i;
      EXPECT_EQ(soa.requester_utility[i], uncached.requester_utility)
          << "seed " << seed << " " << i;
      EXPECT_EQ(soa.compensation[i], uncached.response.compensation)
          << "seed " << seed << " " << i;
    }
  }
}

TEST(KSweepTest, ResolveClassMatchesResolveDesign) {
  // Direct kernel-level check on one class: portable and AVX2 (when
  // available) against resolve_design over a weight sweep that crosses
  // the §V exclusion boundary.
  SubproblemSpec spec;
  spec.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  spec.incentives = {1.0, 0.4};
  spec.mu = 1.0;
  spec.intervals = 24;
  const DesignTable table = build_design_table(spec);

  std::vector<double> weights;
  for (int i = 0; i < 37; ++i) {
    weights.push_back(0.01 + 0.12 * static_cast<double>(i));
  }
  ScratchArena arena;
  const ClassTableau tableau = build_class_tableau(spec, table, arena);
  std::vector<std::size_t> k_opt(weights.size());
  std::vector<double> utility(weights.size());
  std::vector<double> upper(weights.size());
  for (const bool force_portable : {true, false}) {
    resolve_class(tableau, weights.data(), weights.size(),
                  ResolveOut{k_opt.data(), utility.data(), upper.data()},
                  force_portable);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      SubproblemSpec worker = spec;
      worker.weight = weights[i];
      const DesignResult reference = resolve_design(worker, table);
      if (reference.excluded) {
        EXPECT_LT(utility[i], 0.0) << "worker " << i;
      } else {
        EXPECT_EQ(k_opt[i], reference.k_opt) << "worker " << i;
        EXPECT_EQ(utility[i], reference.requester_utility) << "worker " << i;
        EXPECT_EQ(upper[i], reference.upper_bound) << "worker " << i;
      }
    }
  }
}

}  // namespace
}  // namespace ccd::contract
