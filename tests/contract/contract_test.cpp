#include "contract/contract.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);

Contract simple_contract() {
  // delta = 1; knots at psi(0)=2, psi(1)=9, psi(2)=14; payments 0, 1, 3.
  return Contract::on_effort_grid(kPsi, 1.0, {0.0, 1.0, 3.0});
}

TEST(ContractTest, ZeroContractPaysNothing) {
  const Contract zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.intervals(), 0u);
  EXPECT_DOUBLE_EQ(zero.pay(123.0), 0.0);
  EXPECT_DOUBLE_EQ(zero.max_payment(), 0.0);
}

TEST(ContractTest, KnotsFollowEffortGrid) {
  const Contract c = simple_contract();
  EXPECT_EQ(c.intervals(), 2u);
  EXPECT_DOUBLE_EQ(c.knot(0), 2.0);
  EXPECT_DOUBLE_EQ(c.knot(1), 9.0);
  EXPECT_DOUBLE_EQ(c.knot(2), 14.0);
  EXPECT_DOUBLE_EQ(c.delta(), 1.0);
}

TEST(ContractTest, PaymentsAtKnots) {
  const Contract c = simple_contract();
  EXPECT_DOUBLE_EQ(c.pay(2.0), 0.0);
  EXPECT_DOUBLE_EQ(c.pay(9.0), 1.0);
  EXPECT_DOUBLE_EQ(c.pay(14.0), 3.0);
  EXPECT_DOUBLE_EQ(c.payment(1), 1.0);
  EXPECT_DOUBLE_EQ(c.max_payment(), 3.0);
}

TEST(ContractTest, LinearInterpolationBetweenKnots) {
  const Contract c = simple_contract();
  // Midpoint of [2, 9] in feedback: pay 0.5.
  EXPECT_DOUBLE_EQ(c.pay(5.5), 0.5);
  // Quarter of [9, 14]: 1 + 2 * 0.25.
  EXPECT_DOUBLE_EQ(c.pay(10.25), 1.5);
}

TEST(ContractTest, SaturatesOutsideKnotRange) {
  const Contract c = simple_contract();
  EXPECT_DOUBLE_EQ(c.pay(0.0), 0.0);    // below d_0
  EXPECT_DOUBLE_EQ(c.pay(100.0), 3.0);  // above d_m
}

TEST(ContractTest, SlopesMatchDifferences) {
  const Contract c = simple_contract();
  EXPECT_DOUBLE_EQ(c.slope(1), 1.0 / 7.0);   // (1-0)/(9-2)
  EXPECT_DOUBLE_EQ(c.slope(2), 2.0 / 5.0);   // (3-1)/(14-9)
  EXPECT_THROW(c.slope(0), Error);
  EXPECT_THROW(c.slope(3), Error);
}

TEST(ContractTest, PayAtEffortComposesPsi) {
  const Contract c = simple_contract();
  EXPECT_DOUBLE_EQ(c.pay_at_effort(kPsi, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.pay_at_effort(kPsi, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.pay_at_effort(kPsi, 2.0), 3.0);
}

TEST(ContractTest, MonotonicityEnforced) {
  EXPECT_THROW(Contract::on_effort_grid(kPsi, 1.0, {0.0, 2.0, 1.0}), Error);
}

TEST(ContractTest, NegativePaymentsRejected) {
  EXPECT_THROW(Contract::on_effort_grid(kPsi, 1.0, {-1.0, 0.0, 1.0}), Error);
}

TEST(ContractTest, GridPastPeakRejected) {
  // peak of psi at y=4; m=3 with delta 1.5 reaches 4.5.
  EXPECT_THROW(Contract::on_effort_grid(kPsi, 1.5, {0.0, 1.0, 2.0, 3.0}),
               Error);
}

TEST(ContractTest, DirectConstructionValidation) {
  EXPECT_THROW(Contract(0.0, {0.0, 1.0}, {0.0, 1.0}), Error);   // bad delta
  EXPECT_THROW(Contract(1.0, {0.0}, {0.0}), Error);             // one knot
  EXPECT_THROW(Contract(1.0, {1.0, 1.0}, {0.0, 1.0}), Error);   // knots equal
  EXPECT_THROW(Contract(1.0, {0.0, 1.0}, {0.0}), Error);        // mismatch
}

TEST(ContractTest, ToStringDescribes) {
  EXPECT_EQ(Contract().to_string(), "Contract{zero}");
  const std::string s = simple_contract().to_string(1);
  EXPECT_NE(s.find("delta=1.0"), std::string::npos);
  EXPECT_NE(s.find("(2.0->0.0)"), std::string::npos);
}

}  // namespace
}  // namespace ccd::contract
