#include "contract/worker_response.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);

TEST(WorkerUtilityTest, MatchesDefinition) {
  const Contract c = Contract::on_effort_grid(kPsi, 1.0, {0.0, 1.0, 3.0});
  const WorkerIncentives honest{1.0, 0.0};
  // U = pay(psi(y)) - beta y.
  EXPECT_DOUBLE_EQ(worker_utility(c, kPsi, honest, 1.0), 1.0 - 1.0);
  const WorkerIncentives malicious{1.0, 0.5};
  // + omega * psi(y) = 0.5 * 9.
  EXPECT_DOUBLE_EQ(worker_utility(c, kPsi, malicious, 1.0), 0.0 + 4.5);
  EXPECT_THROW(worker_utility(c, kPsi, honest, -1.0), Error);
}

// --- Lemma 4.1 classification (corrected boundaries; see DESIGN.md) -------

TEST(ClassifyPieceTest, CorrectedCaseBoundaries) {
  const WorkerIncentives inc{1.0, 0.0};
  const double delta = 0.5;
  const std::size_t l = 3;  // interval [1.0, 1.5)
  const double s_lo = kPsi.derivative(1.0);  // 6
  const double s_hi = kPsi.derivative(1.5);  // 5
  const double alpha_lo = inc.beta / s_lo;   // Case I boundary
  const double alpha_hi = inc.beta / s_hi;   // Case II boundary

  EXPECT_EQ(classify_piece(kPsi, inc, alpha_lo - 1e-6, l, delta),
            SlopeCase::kNonIncreasing);
  EXPECT_EQ(classify_piece(kPsi, inc, alpha_lo, l, delta),
            SlopeCase::kNonIncreasing);  // boundary: derivative 0 at left end
  EXPECT_EQ(classify_piece(kPsi, inc, 0.5 * (alpha_lo + alpha_hi), l, delta),
            SlopeCase::kInterior);
  EXPECT_EQ(classify_piece(kPsi, inc, alpha_hi, l, delta),
            SlopeCase::kNonDecreasing);
  EXPECT_EQ(classify_piece(kPsi, inc, alpha_hi + 1e-6, l, delta),
            SlopeCase::kNonDecreasing);
}

TEST(ClassifyPieceTest, OmegaShiftsBoundaries) {
  const double delta = 0.5;
  const std::size_t l = 2;
  const WorkerIncentives honest{1.0, 0.0};
  const WorkerIncentives malicious{1.0, 0.4};
  // A slope interior for the honest worker becomes non-decreasing once
  // omega adds to the effective slope. Interval 2 is [0.5, 1.0): the honest
  // Case III window is (1/psi'(0.5), 1/psi'(1.0)) = (1/7, 1/6).
  const double alpha = 0.15;
  EXPECT_EQ(classify_piece(kPsi, honest, alpha, l, delta),
            SlopeCase::kInterior);
  EXPECT_EQ(classify_piece(kPsi, malicious, alpha, l, delta),
            SlopeCase::kNonDecreasing);
}

TEST(ClassifyPieceTest, NegativeEffectiveSlopeIsNonIncreasing) {
  const WorkerIncentives inc{1.0, 0.0};
  EXPECT_EQ(classify_piece(kPsi, inc, -0.5, 1, 0.5),
            SlopeCase::kNonIncreasing);
}

TEST(ClassifyPieceTest, ValidatesInputs) {
  const WorkerIncentives inc{1.0, 0.0};
  EXPECT_THROW(classify_piece(kPsi, inc, 0.1, 0, 0.5), Error);
  EXPECT_THROW(classify_piece(kPsi, inc, 0.1, 1, 0.0), Error);
  EXPECT_THROW(classify_piece(kPsi, WorkerIncentives{0.0, 0.0}, 0.1, 1, 0.5),
               Error);
}

TEST(StationaryEffortTest, SatisfiesFirstOrderCondition) {
  const WorkerIncentives inc{1.0, 0.3};
  const double alpha = 0.2;
  const double y = stationary_effort(kPsi, inc, alpha);
  // (alpha + omega) psi'(y) = beta.
  EXPECT_NEAR((alpha + inc.omega) * kPsi.derivative(y), inc.beta, 1e-12);
  EXPECT_THROW(stationary_effort(kPsi, WorkerIncentives{1.0, 0.0}, -0.1),
               Error);
}

TEST(StationaryEffortTest, MatchesEq31ClosedForm) {
  const WorkerIncentives inc{1.0, 0.5};
  const double alpha = 0.15;
  const double y = stationary_effort(kPsi, inc, alpha);
  const double expected =
      inc.beta / (2.0 * kPsi.r2() * (alpha + inc.omega)) -
      kPsi.r1() / (2.0 * kPsi.r2());
  EXPECT_NEAR(y, expected, 1e-12);
}

// --- Best response ---------------------------------------------------------

TEST(BestResponseTest, ZeroContractHonestWorkerDeclines) {
  const WorkerIncentives honest{1.0, 0.0};
  const BestResponse br = best_response(Contract(), kPsi, honest);
  EXPECT_DOUBLE_EQ(br.effort, 0.0);
  EXPECT_EQ(br.interval, 0u);
  EXPECT_DOUBLE_EQ(br.compensation, 0.0);
}

TEST(BestResponseTest, ZeroContractMaliciousWorkerStillWorks) {
  // With omega > 0 the feedback motive alone funds effort up to
  // psi'(y) = beta / omega.
  const WorkerIncentives malicious{1.0, 0.5};
  const BestResponse br = best_response(Contract(), kPsi, malicious);
  const double expected = kPsi.derivative_inverse(1.0 / 0.5);  // psi'=2 -> y=3
  EXPECT_NEAR(br.effort, expected, 1e-9);
  EXPECT_DOUBLE_EQ(br.compensation, 0.0);
}

TEST(BestResponseTest, UtilityIsGlobalMaxOnDenseGrid) {
  const Contract c =
      Contract::on_effort_grid(kPsi, 0.5, {0.0, 0.3, 0.9, 1.0, 1.2, 2.5, 2.6});
  for (const double omega : {0.0, 0.3, 0.8}) {
    const WorkerIncentives inc{1.0, omega};
    const BestResponse br = best_response(c, kPsi, inc);
    double grid_best = -1e300;
    for (int i = 0; i <= 4000; ++i) {
      const double y = kPsi.y_peak() * i / 4000.0;
      grid_best = std::max(grid_best, worker_utility(c, kPsi, inc, y));
    }
    EXPECT_NEAR(br.utility, grid_best, 1e-6) << "omega=" << omega;
  }
}

TEST(BestResponseTest, PrefersSmallestEffortOnFlatContract) {
  // Constant positive payment: honest worker takes the money at zero effort.
  const Contract c = Contract::on_effort_grid(kPsi, 1.0, {2.0, 2.0, 2.0});
  const WorkerIncentives honest{1.0, 0.0};
  const BestResponse br = best_response(c, kPsi, honest);
  EXPECT_DOUBLE_EQ(br.effort, 0.0);
  EXPECT_DOUBLE_EQ(br.compensation, 2.0);
}

TEST(BestResponseTest, SteepContractPushesToGridEnd) {
  // Slope far above the Case-II threshold everywhere: worker rides to the
  // end of the grid.
  const Contract c = Contract::on_effort_grid(kPsi, 1.0, {0.0, 20.0, 40.0});
  const WorkerIncentives honest{1.0, 0.0};
  const BestResponse br = best_response(c, kPsi, honest);
  EXPECT_NEAR(br.effort, 2.0, 1e-9);
  EXPECT_EQ(br.interval, 2u);
  EXPECT_NEAR(br.compensation, 40.0, 1e-9);
}

TEST(BestResponseTest, RespectsEffortLimit) {
  const Contract c = Contract::on_effort_grid(kPsi, 1.0, {0.0, 20.0, 40.0});
  const WorkerIncentives honest{1.0, 0.0};
  const BestResponse br = best_response(c, kPsi, honest, 1.5);
  EXPECT_LE(br.effort, 1.5 + 1e-12);
}

TEST(BestResponseTest, FeedbackAndCompensationConsistent) {
  const Contract c = Contract::on_effort_grid(kPsi, 0.5,
                                              {0.0, 0.2, 0.5, 0.9, 1.4});
  const WorkerIncentives inc{1.0, 0.2};
  const BestResponse br = best_response(c, kPsi, inc);
  EXPECT_DOUBLE_EQ(br.feedback, kPsi(br.effort));
  EXPECT_DOUBLE_EQ(br.compensation, c.pay(br.feedback));
  EXPECT_NEAR(br.utility,
              br.compensation - inc.beta * br.effort + inc.omega * br.feedback,
              1e-12);
}

TEST(BestResponseTest, IntervalIndexMatchesEffort) {
  const Contract c = Contract::on_effort_grid(kPsi, 0.5,
                                              {0.0, 0.2, 0.5, 0.9, 1.4});
  const WorkerIncentives inc{1.0, 0.0};
  const BestResponse br = best_response(c, kPsi, inc);
  if (br.effort > 0.0 && br.interval >= 1 && br.interval <= 4) {
    EXPECT_GE(br.effort, 0.5 * (br.interval - 1) - 1e-9);
    EXPECT_LE(br.effort, 0.5 * br.interval + 1e-9);
  }
}

TEST(BestResponseTest, ValidatesIncentives) {
  EXPECT_THROW(best_response(Contract(), kPsi, WorkerIncentives{0.0, 0.0}),
               Error);
  EXPECT_THROW(best_response(Contract(), kPsi, WorkerIncentives{1.0, -0.1}),
               Error);
}

}  // namespace
}  // namespace ccd::contract
