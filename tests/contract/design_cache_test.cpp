#include "contract/design_cache.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ccd::contract {
namespace {

// A randomized fleet drawn from a few distinct weight-independent specs —
// the pipeline's sharing pattern.
std::vector<SubproblemSpec> random_fleet(std::size_t n, std::uint64_t seed) {
  const struct {
    double r2, r1, r0, beta, omega, mu;
    std::size_t intervals;
  } classes[] = {
      {-1.0, 8.0, 2.0, 1.0, 0.0, 1.0, 20},
      {-0.8, 6.0, 1.5, 1.2, 0.3, 1.0, 20},
      {-1.2, 9.0, 2.5, 0.9, 0.5, 1.5, 16},
      {-0.9, 7.0, 1.0, 1.0, 0.2, 0.8, 24},
      {-1.1, 8.5, 0.5, 1.4, 0.0, 2.0, 12},
  };
  constexpr std::size_t kClasses = sizeof(classes) / sizeof(classes[0]);
  util::Rng rng(seed);
  std::vector<SubproblemSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cls = classes[rng.next_u64() % kClasses];
    SubproblemSpec spec;
    spec.psi = effort::QuadraticEffort(cls.r2, cls.r1, cls.r0);
    spec.incentives = {cls.beta, cls.omega};
    spec.mu = cls.mu;
    spec.intervals = cls.intervals;
    // Mostly positive weights, with some zero/negative (excluded) and some
    // tiny ones that trigger the negative-utility exclusion fallback.
    spec.weight = rng.uniform(-0.2, 3.0);
    specs.push_back(spec);
  }
  return specs;
}

void expect_identical(const DesignResult& a, const DesignResult& b,
                      std::size_t i) {
  EXPECT_EQ(a.excluded, b.excluded) << "spec " << i;
  EXPECT_EQ(a.k_opt, b.k_opt) << "spec " << i;
  EXPECT_EQ(a.requester_utility, b.requester_utility) << "spec " << i;
  EXPECT_EQ(a.upper_bound, b.upper_bound) << "spec " << i;
  EXPECT_EQ(a.lower_bound, b.lower_bound) << "spec " << i;
  EXPECT_EQ(a.response.effort, b.response.effort) << "spec " << i;
  EXPECT_EQ(a.response.utility, b.response.utility) << "spec " << i;
  EXPECT_EQ(a.response.feedback, b.response.feedback) << "spec " << i;
  EXPECT_EQ(a.response.compensation, b.response.compensation) << "spec " << i;
  EXPECT_EQ(a.response.interval, b.response.interval) << "spec " << i;
  EXPECT_EQ(a.utility_by_k, b.utility_by_k) << "spec " << i;
  EXPECT_EQ(a.pay_by_k, b.pay_by_k) << "spec " << i;
  ASSERT_EQ(a.contract.is_zero(), b.contract.is_zero()) << "spec " << i;
  ASSERT_EQ(a.contract.intervals(), b.contract.intervals()) << "spec " << i;
  if (a.contract.is_zero()) return;
  for (std::size_t l = 0; l <= a.contract.intervals(); ++l) {
    EXPECT_EQ(a.contract.payment(l), b.contract.payment(l))
        << "spec " << i << " knot " << l;
    EXPECT_EQ(a.contract.knot(l), b.contract.knot(l))
        << "spec " << i << " knot " << l;
  }
}

TEST(DesignCacheBatchTest, BitwiseIdenticalToPerWorkerPath) {
  // The cache must not change results: batch output == sequential
  // design_contract for every spec, exactly (no tolerance).
  const std::vector<SubproblemSpec> specs = random_fleet(200, 1234);
  const std::vector<DesignResult> batch = design_contracts_batch(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DesignResult direct = design_contract(specs[i]);
    expect_identical(batch[i], direct, i);
  }
}

TEST(DesignCacheBatchTest, IndependentOfThreadCount) {
  const std::vector<SubproblemSpec> specs = random_fleet(300, 99);
  util::ThreadPool serial(1);
  util::ThreadPool wide(7);
  BatchOptions serial_options;
  serial_options.pool = &serial;
  BatchOptions wide_options;
  wide_options.pool = &wide;
  const std::vector<DesignResult> a =
      design_contracts_batch(specs, serial_options);
  const std::vector<DesignResult> b =
      design_contracts_batch(specs, wide_options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i], i);
}

TEST(DesignCacheBatchTest, CountsHitsMissesAndSweeps) {
  std::vector<SubproblemSpec> specs;
  SubproblemSpec spec;  // default spec, intervals = 20
  for (std::size_t i = 0; i < 100; ++i) {
    spec.weight = 0.5 + 0.01 * static_cast<double>(i);
    specs.push_back(spec);
  }
  SubproblemSpec other = spec;
  other.incentives.omega = 0.4;  // second distinct class
  specs.push_back(other);

  DesignCacheStats stats;
  design_contracts_batch(specs, {}, &stats);
  EXPECT_EQ(stats.lookups, 101u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 99u);
  EXPECT_EQ(stats.sweep_steps_computed, 2u * 20u);
  EXPECT_EQ(stats.sweep_steps_avoided, 99u * 20u);
}

TEST(DesignCacheBatchTest, ExcludedWeightsSkipTheCache) {
  std::vector<SubproblemSpec> specs(10);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].weight = i < 4 ? 0.0 : 1.0;  // 4 weight-excluded workers
  }
  DesignCacheStats stats;
  const std::vector<DesignResult> results =
      design_contracts_batch(specs, {}, &stats);
  EXPECT_EQ(stats.lookups, 6u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(results[i].excluded);
    EXPECT_TRUE(results[i].contract.is_zero());
  }
  for (std::size_t i = 4; i < 10; ++i) EXPECT_FALSE(results[i].excluded);
}

TEST(DesignCacheBatchTest, SharedCachePersistsAcrossCalls) {
  const std::vector<SubproblemSpec> specs = random_fleet(64, 7);
  DesignCache cache;
  BatchOptions options;
  options.cache = &cache;

  DesignCacheStats first;
  design_contracts_batch(specs, options, &first);
  EXPECT_GT(first.misses, 0u);

  DesignCacheStats second;
  const std::vector<DesignResult> warm =
      design_contracts_batch(specs, options, &second);
  EXPECT_EQ(second.misses, 0u);  // everything served from the warm cache
  EXPECT_EQ(second.hits, second.lookups);
  EXPECT_EQ(second.sweep_steps_computed, 0u);

  // Warm results still identical to the uncached path.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_identical(warm[i], design_contract(specs[i]), i);
  }

  // Cumulative cache counters cover both calls.
  const DesignCacheStats total = cache.stats();
  EXPECT_EQ(total.lookups, first.lookups + second.lookups);
  EXPECT_EQ(total.misses, first.misses);
  EXPECT_EQ(total.hits, total.lookups - total.misses);
}

TEST(DesignCacheTest, SingleDesignGoesThroughCache) {
  DesignCache cache;
  SubproblemSpec spec;
  spec.weight = 1.3;
  const DesignResult a = cache.design(spec);
  spec.weight = 0.7;  // same table, different scalarization
  const DesignResult b = cache.design(spec);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  expect_identical(a, design_contract([&] {
                     SubproblemSpec s;
                     s.weight = 1.3;
                     return s;
                   }()),
                   0);
  expect_identical(b, design_contract([&] {
                     SubproblemSpec s;
                     s.weight = 0.7;
                     return s;
                   }()),
                   1);
}

TEST(DesignCacheTest, KeyIgnoresWeightButSeesEverythingElse) {
  SubproblemSpec spec;
  const DesignCacheKey base = DesignCacheKey::of(spec);

  SubproblemSpec reweighted = spec;
  reweighted.weight = 17.0;
  EXPECT_EQ(DesignCacheKey::of(reweighted), base);

  SubproblemSpec changed = spec;
  changed.mu = 2.0;
  EXPECT_NE(DesignCacheKey::of(changed), base);
  changed = spec;
  changed.incentives.omega = 0.1;
  EXPECT_NE(DesignCacheKey::of(changed), base);
  changed = spec;
  changed.intervals = 21;
  EXPECT_NE(DesignCacheKey::of(changed), base);

  // An explicit domain equal to the default resolves to the same key.
  SubproblemSpec explicit_domain = spec;
  explicit_domain.effort_domain = spec.psi.usable_domain();
  EXPECT_EQ(DesignCacheKey::of(explicit_domain), base);
}

TEST(DesignCacheTest, EqualKeysHashEqually) {
  // The unordered_map invariant the former defaulted operator== violated:
  // value equality said {-0.0} == {+0.0} while the bitwise hash disagreed.
  // Equality is now bitwise and of() canonicalizes zeros, so whenever two
  // keys compare equal they hash equal.
  SubproblemSpec plus;
  plus.incentives.omega = 0.0;
  SubproblemSpec minus = plus;
  minus.incentives.omega = -0.0;  // passes validate (omega >= 0)

  const DesignCacheKey a = DesignCacheKey::of(plus);
  const DesignCacheKey b = DesignCacheKey::of(minus);
  const DesignCacheKeyHash hash;
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash(a), hash(b));

  // Hand-built keys that of() can never produce must still satisfy the
  // invariant's contrapositive: bitwise-unequal zeros compare unequal.
  DesignCacheKey raw_plus;
  DesignCacheKey raw_minus;
  raw_minus.omega = -0.0;
  EXPECT_FALSE(raw_plus == raw_minus);

  // A NaN field compares equal to itself bitwise, so such a key can be
  // found again (value equality made it permanently unfindable).
  DesignCacheKey nan_key;
  nan_key.domain = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(nan_key == nan_key);
  EXPECT_EQ(hash(nan_key), hash(nan_key));
}

TEST(DesignCacheTest, SignOfZeroTwinsShareOneTable) {
  SubproblemSpec plus;
  plus.incentives.omega = 0.0;
  SubproblemSpec minus = plus;
  minus.incentives.omega = -0.0;

  DesignCache cache;
  cache.table_for(plus);
  cache.table_for(minus);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DesignCacheTest, ClearResetsTablesAndCounters) {
  DesignCache cache;
  cache.design(SubproblemSpec{});
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups, 0u);
}

}  // namespace
}  // namespace ccd::contract
