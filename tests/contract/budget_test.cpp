#include "contract/budget.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::contract {
namespace {

BudgetMenu menu(std::initializer_list<double> pay,
                std::initializer_list<double> utility) {
  BudgetMenu m;
  m.pay = pay;
  m.utility = utility;
  return m;
}

TEST(BudgetTest, SlackBudgetPicksUnconstrainedOptimum) {
  const std::vector<BudgetMenu> menus = {
      menu({1.0, 2.0, 3.0}, {1.0, 2.5, 3.0}),
      menu({0.5, 1.0}, {0.8, 1.0}),
  };
  const BudgetAllocation a = allocate_budget(menus, 100.0);
  EXPECT_FALSE(a.budget_binding);
  EXPECT_EQ(a.choices[0].k, 3u);
  EXPECT_EQ(a.choices[1].k, 2u);
  EXPECT_DOUBLE_EQ(a.total_utility, 4.0);
  EXPECT_DOUBLE_EQ(a.total_pay, 4.0);
}

TEST(BudgetTest, ZeroBudgetOptsEveryoneOut) {
  const std::vector<BudgetMenu> menus = {
      menu({1.0}, {5.0}),
      menu({2.0}, {9.0}),
  };
  const BudgetAllocation a = allocate_budget(menus, 0.0);
  EXPECT_DOUBLE_EQ(a.total_pay, 0.0);
  EXPECT_DOUBLE_EQ(a.total_utility, 0.0);
  for (const BudgetChoice& c : a.choices) EXPECT_EQ(c.k, 0u);
}

TEST(BudgetTest, FreeOptionsSurviveZeroBudget) {
  const std::vector<BudgetMenu> menus = {
      menu({0.0, 1.0}, {0.4, 5.0}),
  };
  const BudgetAllocation a = allocate_budget(menus, 0.0);
  EXPECT_EQ(a.choices[0].k, 1u);
  EXPECT_DOUBLE_EQ(a.total_utility, 0.4);
}

TEST(BudgetTest, BindingBudgetPrefersDenserWorker) {
  // Two workers, each with one option; budget fits only one.
  const std::vector<BudgetMenu> menus = {
      menu({2.0}, {3.0}),  // density 1.5
      menu({2.0}, {5.0}),  // density 2.5  <- should win
  };
  const BudgetAllocation a = allocate_budget(menus, 2.0);
  EXPECT_TRUE(a.budget_binding);
  EXPECT_EQ(a.choices[0].k, 0u);
  EXPECT_EQ(a.choices[1].k, 1u);
  EXPECT_DOUBLE_EQ(a.total_utility, 5.0);
}

TEST(BudgetTest, NeverExceedsBudget) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BudgetMenu> menus;
    const int workers = static_cast<int>(rng.uniform_int(1, 12));
    for (int w = 0; w < workers; ++w) {
      BudgetMenu m;
      double pay = 0.0;
      double utility = 0.0;
      const int options = static_cast<int>(rng.uniform_int(1, 6));
      for (int o = 0; o < options; ++o) {
        pay += rng.uniform(0.1, 2.0);
        utility += rng.uniform(0.0, 2.0);
        m.pay.push_back(pay);
        m.utility.push_back(utility);
      }
      menus.push_back(std::move(m));
    }
    const double budget = rng.uniform(0.0, 10.0);
    const BudgetAllocation a = allocate_budget(menus, budget);
    EXPECT_LE(a.total_pay, budget + 1e-6);
  }
}

TEST(BudgetTest, MatchesExactOnSmallRandomInstances) {
  util::Rng rng(11);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<BudgetMenu> menus;
    const int workers = static_cast<int>(rng.uniform_int(2, 6));
    for (int w = 0; w < workers; ++w) {
      BudgetMenu m;
      double pay = 0.0;
      double utility = 0.0;
      const int options = static_cast<int>(rng.uniform_int(1, 4));
      for (int o = 0; o < options; ++o) {
        pay += rng.uniform(0.2, 1.5);
        utility += rng.uniform(0.1, 1.5);
        m.pay.push_back(pay);
        m.utility.push_back(utility);
      }
      menus.push_back(std::move(m));
    }
    const double budget = rng.uniform(0.5, 4.0);
    const BudgetAllocation approx = allocate_budget(menus, budget);
    const BudgetAllocation exact = allocate_budget_exact(menus, budget);
    EXPECT_LE(approx.total_utility, exact.total_utility + 1e-9);
    if (exact.total_utility > 1e-9) {
      worst_ratio =
          std::min(worst_ratio, approx.total_utility / exact.total_utility);
    }
  }
  // Lagrangian + greedy fill should be near-exact on these instances.
  EXPECT_GT(worst_ratio, 0.9);
}

TEST(BudgetTest, MonotoneInBudget) {
  const std::vector<BudgetMenu> menus = {
      menu({1.0, 2.0, 4.0}, {1.0, 1.8, 2.2}),
      menu({1.5, 3.0}, {2.0, 2.4}),
      menu({0.5}, {0.3}),
  };
  double prev = -1.0;
  for (const double budget : {0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 20.0}) {
    const double utility = allocate_budget(menus, budget).total_utility;
    EXPECT_GE(utility, prev - 1e-9) << "budget=" << budget;
    prev = utility;
  }
}

TEST(BudgetTest, MenuFromDesignCarriesColumns) {
  SubproblemSpec spec;
  spec.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
  spec.weight = 1.0;
  spec.mu = 1.0;
  spec.intervals = 8;
  const DesignResult d = design_contract(spec);
  const BudgetMenu m = menu_from_design(d);
  ASSERT_EQ(m.pay.size(), 8u);
  ASSERT_EQ(m.utility.size(), 8u);
  EXPECT_DOUBLE_EQ(m.utility[d.k_opt - 1], d.requester_utility);
}

TEST(BudgetTest, FleetDesignUnderTightBudget) {
  // End to end: design menus for a small fleet, then squeeze the budget and
  // verify spend obeys it while utility degrades gracefully.
  std::vector<BudgetMenu> menus;
  for (int i = 0; i < 10; ++i) {
    SubproblemSpec spec;
    spec.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
    spec.weight = 0.5 + 0.1 * i;
    spec.mu = 1.0;
    spec.intervals = 12;
    menus.push_back(menu_from_design(design_contract(spec)));
  }
  const BudgetAllocation rich = allocate_budget(menus, 1e9);
  const BudgetAllocation tight =
      allocate_budget(menus, 0.25 * rich.total_pay);
  EXPECT_LE(tight.total_pay, 0.25 * rich.total_pay + 1e-6);
  EXPECT_LT(tight.total_utility, rich.total_utility);
  EXPECT_GT(tight.total_utility, 0.0);
}

TEST(BudgetTest, Validation) {
  EXPECT_THROW(allocate_budget({}, -1.0), Error);
  BudgetMenu bad;
  bad.pay = {1.0};
  bad.utility = {1.0, 2.0};
  EXPECT_THROW(allocate_budget({bad}, 1.0), Error);
  BudgetMenu negative;
  negative.pay = {-1.0};
  negative.utility = {1.0};
  EXPECT_THROW(allocate_budget({negative}, 1.0), Error);
}

TEST(BudgetTest, ExactGuardsAgainstBlowup) {
  std::vector<BudgetMenu> many(20, menu({1.0}, {1.0}));
  EXPECT_THROW(allocate_budget_exact(many, 5.0), ContractError);
}

}  // namespace
}  // namespace ccd::contract
