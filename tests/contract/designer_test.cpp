#include "contract/designer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);

SubproblemSpec base_spec() {
  SubproblemSpec spec;
  spec.psi = kPsi;
  spec.incentives = {1.0, 0.0};
  spec.weight = 1.0;
  spec.mu = 1.0;
  spec.intervals = 20;
  return spec;
}

TEST(SubproblemSpecTest, ResolvedDomainDefaultsToUsable) {
  const SubproblemSpec spec = base_spec();
  EXPECT_DOUBLE_EQ(spec.resolved_domain(), kPsi.usable_domain());
  EXPECT_DOUBLE_EQ(spec.delta(), kPsi.usable_domain() / 20.0);
}

TEST(SubproblemSpecTest, ExplicitDomainWins) {
  SubproblemSpec spec = base_spec();
  spec.effort_domain = 2.0;
  EXPECT_DOUBLE_EQ(spec.resolved_domain(), 2.0);
  EXPECT_DOUBLE_EQ(spec.delta(), 0.1);
}

TEST(SubproblemSpecTest, ValidationCatchesBadFields) {
  SubproblemSpec spec = base_spec();
  spec.mu = 0.0;
  EXPECT_THROW(spec.validate(), Error);

  spec = base_spec();
  spec.intervals = 0;
  EXPECT_THROW(spec.validate(), Error);

  spec = base_spec();
  spec.incentives.beta = 0.0;
  EXPECT_THROW(spec.validate(), Error);

  spec = base_spec();
  spec.effort_domain = 10.0;  // past psi's peak
  EXPECT_THROW(spec.validate(), Error);
}

TEST(DesignContractTest, SelectedKMaximizesRequesterUtility) {
  const DesignResult d = design_contract(base_spec());
  ASSERT_EQ(d.utility_by_k.size(), 20u);
  ASSERT_GE(d.k_opt, 1u);
  for (const double u : d.utility_by_k) {
    EXPECT_LE(u, d.utility_by_k[d.k_opt - 1] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(d.requester_utility, d.utility_by_k[d.k_opt - 1]);
}

TEST(DesignContractTest, ReportedUtilityMatchesResponse) {
  const SubproblemSpec spec = base_spec();
  const DesignResult d = design_contract(spec);
  EXPECT_NEAR(d.requester_utility,
              spec.weight * d.response.feedback -
                  spec.mu * d.response.compensation,
              1e-12);
}

TEST(DesignContractTest, ResponseIsBestResponseToFinalContract) {
  const SubproblemSpec spec = base_spec();
  const DesignResult d = design_contract(spec);
  const BestResponse again = best_response(d.contract, spec.psi,
                                           spec.incentives);
  EXPECT_DOUBLE_EQ(again.effort, d.response.effort);
  EXPECT_DOUBLE_EQ(again.utility, d.response.utility);
}

TEST(DesignContractTest, WorkerUtilityNonNegative) {
  // Participation: the designed contract never leaves the worker below the
  // zero-effort outside option.
  for (const double omega : {0.0, 0.3, 0.8}) {
    SubproblemSpec spec = base_spec();
    spec.incentives.omega = omega;
    const DesignResult d = design_contract(spec);
    const double outside =
        worker_utility(d.contract, spec.psi, spec.incentives, 0.0);
    EXPECT_GE(d.response.utility, outside - 1e-12);
  }
}

TEST(DesignContractTest, NonPositiveWeightExcludes) {
  SubproblemSpec spec = base_spec();
  spec.weight = 0.0;
  const DesignResult d = design_contract(spec);
  EXPECT_TRUE(d.excluded);
  EXPECT_TRUE(d.contract.is_zero());
  EXPECT_DOUBLE_EQ(d.requester_utility, 0.0);
  EXPECT_DOUBLE_EQ(d.response.compensation, 0.0);
  EXPECT_EQ(d.k_opt, 0u);

  spec.weight = -2.0;
  EXPECT_TRUE(design_contract(spec).excluded);
}

TEST(DesignContractTest, AllCandidatesNegativeFallsBackToExclusion) {
  // Regression (§V elimination rule): with a stingy requester (high mu)
  // and a near-worthless worker (low weight) every candidate contract
  // loses money; the designer must prefer the zero contract (utility 0)
  // instead of returning the least-bad losing candidate.
  SubproblemSpec spec = base_spec();
  spec.mu = 50.0;
  spec.weight = 0.1;
  const DesignResult d = design_contract(spec);
  ASSERT_EQ(d.utility_by_k.size(), spec.intervals);
  for (const double u : d.utility_by_k) EXPECT_LT(u, 0.0);
  EXPECT_TRUE(d.excluded);
  EXPECT_TRUE(d.contract.is_zero());
  EXPECT_EQ(d.k_opt, 0u);
  EXPECT_DOUBLE_EQ(d.requester_utility, 0.0);
  EXPECT_DOUBLE_EQ(d.response.compensation, 0.0);
  EXPECT_DOUBLE_EQ(d.upper_bound, 0.0);
  EXPECT_DOUBLE_EQ(d.lower_bound, 0.0);
}

TEST(DesignContractTest, TableResolveMatchesDirectDesign) {
  // design_contract == build_design_table + resolve_design, bitwise.
  for (const double w : {0.1, 0.5, 1.0, 3.0}) {
    SubproblemSpec spec = base_spec();
    spec.incentives.omega = 0.25;
    spec.weight = w;
    const DesignResult direct = design_contract(spec);
    const DesignResult via_table =
        resolve_design(spec, build_design_table(spec));
    EXPECT_EQ(direct.requester_utility, via_table.requester_utility);
    EXPECT_EQ(direct.k_opt, via_table.k_opt);
    EXPECT_EQ(direct.response.effort, via_table.response.effort);
    EXPECT_EQ(direct.response.compensation, via_table.response.compensation);
    EXPECT_EQ(direct.upper_bound, via_table.upper_bound);
    EXPECT_EQ(direct.lower_bound, via_table.lower_bound);
    EXPECT_EQ(direct.utility_by_k, via_table.utility_by_k);
    EXPECT_EQ(direct.pay_by_k, via_table.pay_by_k);
  }
}

TEST(DesignContractTest, HigherWeightNeverLowersUtility) {
  double prev = -1e300;
  for (const double w : {0.3, 0.6, 1.0, 2.0, 4.0}) {
    SubproblemSpec spec = base_spec();
    spec.weight = w;
    const double u = design_contract(spec).requester_utility;
    EXPECT_GE(u, prev - 1e-9) << "w=" << w;
    prev = u;
  }
}

TEST(DesignContractTest, HigherMuLowersCompensation) {
  SubproblemSpec cheap = base_spec();
  cheap.mu = 0.8;
  SubproblemSpec pricey = base_spec();
  pricey.mu = 2.0;
  const DesignResult a = design_contract(cheap);
  const DesignResult b = design_contract(pricey);
  EXPECT_GE(a.response.compensation, b.response.compensation - 1e-9);
}

TEST(DesignContractTest, MaliciousWorkersArePaidLess) {
  // Paper observation (2): self-motivated (omega > 0) workers need less
  // incentive pay for comparable effort.
  SubproblemSpec honest = base_spec();
  SubproblemSpec malicious = base_spec();
  malicious.incentives.omega = 0.5;
  const DesignResult h = design_contract(honest);
  const DesignResult m = design_contract(malicious);
  EXPECT_LT(m.response.compensation, h.response.compensation);
  EXPECT_GT(m.response.effort, 0.0);
}

TEST(DesignContractTest, ContractIsMonotoneNonDecreasing) {
  const DesignResult d = design_contract(base_spec());
  for (std::size_t l = 1; l <= d.contract.intervals(); ++l) {
    EXPECT_GE(d.contract.payment(l), d.contract.payment(l - 1));
  }
}

TEST(DesignContractTest, SmallMStillWorks) {
  SubproblemSpec spec = base_spec();
  spec.intervals = 1;
  const DesignResult d = design_contract(spec);
  EXPECT_EQ(d.k_opt, 1u);
  EXPECT_GE(d.requester_utility, d.lower_bound - 1e-9);
}

}  // namespace
}  // namespace ccd::contract
