#include "contract/bounds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "contract/candidate.hpp"
#include "contract/designer.hpp"
#include "util/error.hpp"

namespace ccd::contract {
namespace {

const effort::QuadraticEffort kPsi(-1.0, 8.0, 2.0);
constexpr double kBeta = 1.0;

TEST(Lemma42Test, UpperBoundsCandidateCompensation) {
  const WorkerIncentives inc{kBeta, 0.0};
  const std::size_t m = 16;
  const double delta = kPsi.usable_domain() / m;
  for (std::size_t k = 1; k <= m; ++k) {
    const Contract c = build_candidate(kPsi, delta, m, k, inc);
    const BestResponse br = best_response(c, kPsi, inc);
    EXPECT_LE(br.compensation,
              lemma42_compensation_upper(kPsi, kBeta, delta, k) + 1e-9)
        << "k=" << k;
  }
}

TEST(Lemma43Test, LowerBoundsCandidateCompensation) {
  const WorkerIncentives inc{kBeta, 0.0};
  const std::size_t m = 16;
  const double delta = kPsi.usable_domain() / m;
  for (std::size_t k = 1; k <= m; ++k) {
    const Contract c = build_candidate(kPsi, delta, m, k, inc);
    const BestResponse br = best_response(c, kPsi, inc);
    EXPECT_GE(br.compensation,
              lemma43_compensation_lower(kPsi, kBeta, delta, k) - 1e-9)
        << "k=" << k;
  }
}

TEST(Lemma42Test, UpperAboveLowerForAllK) {
  const double delta = kPsi.usable_domain() / 20;
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_GT(lemma42_compensation_upper(kPsi, kBeta, delta, k),
              lemma43_compensation_lower(kPsi, kBeta, delta, k));
  }
}

TEST(Lemma43Test, FirstIntervalLowerBoundIsZero) {
  EXPECT_DOUBLE_EQ(lemma43_compensation_lower(kPsi, kBeta, 0.3, 1), 0.0);
}

TEST(Lemma43Test, ScalesWithBetaAndDelta) {
  EXPECT_DOUBLE_EQ(lemma43_compensation_lower(kPsi, 2.0, 0.5, 5), 4.0);
}

TEST(Lemma43Test, OmegaSubsidyReducesTheFloor) {
  // The feedback motive substitutes for pay: the floor shrinks by
  // omega * (psi(k delta) - psi(0)) and clamps at zero.
  const double delta = 0.4;
  const std::size_t k = 4;
  const double base = lemma43_compensation_lower(kPsi, kBeta, delta, k, 0.0);
  const double subsidized =
      lemma43_compensation_lower(kPsi, kBeta, delta, k, 0.1);
  EXPECT_LT(subsidized, base);
  EXPECT_NEAR(subsidized,
              std::max(0.0, base - 0.1 * (kPsi(k * delta) - kPsi(0.0))),
              1e-12);
  // Large omega floors at zero.
  EXPECT_DOUBLE_EQ(lemma43_compensation_lower(kPsi, kBeta, delta, k, 10.0),
                   0.0);
}

TEST(BoundsValidationTest, RejectsBadParameters) {
  EXPECT_THROW(lemma42_compensation_upper(kPsi, 0.0, 0.1, 1), Error);
  EXPECT_THROW(lemma42_compensation_upper(kPsi, 1.0, 0.0, 1), Error);
  EXPECT_THROW(lemma42_compensation_upper(kPsi, 1.0, 0.1, 0), Error);
  EXPECT_THROW(lemma43_compensation_lower(kPsi, 1.0, 0.1, 0), Error);
  EXPECT_THROW(lemma43_compensation_lower(kPsi, 1.0, 0.1, 1, -0.1), Error);
  EXPECT_THROW(theorem41_upper_bound(kPsi, 1.0, 1.0, 1.0, 0.1, 0), Error);
  EXPECT_THROW(theorem41_lower_bound(kPsi, 1.0, 1.0, 1.0, 0.1, 0), Error);
  // Grid past the domain where psi' > 0:
  EXPECT_THROW(lemma42_compensation_upper(kPsi, 1.0, 1.0, 5), Error);
}

TEST(Theorem41Test, BoundsBracketDesignedUtility) {
  for (const std::size_t m : {5ul, 10ul, 20ul, 40ul}) {
    SubproblemSpec spec;
    spec.psi = kPsi;
    spec.weight = 1.0;
    spec.mu = 1.0;
    spec.intervals = m;
    const DesignResult d = design_contract(spec);
    EXPECT_LE(d.requester_utility, d.upper_bound + 1e-9) << "m=" << m;
    EXPECT_GE(d.requester_utility, d.lower_bound - 1e-9) << "m=" << m;
  }
}

TEST(Theorem41Test, GapShrinksWithM) {
  // Fig. 6's message: the designed utility approaches the upper bound as the
  // effort partition gets denser.
  double prev_gap = 1e300;
  for (const std::size_t m : {5ul, 10ul, 20ul, 40ul, 80ul}) {
    SubproblemSpec spec;
    spec.psi = kPsi;
    spec.weight = 1.0;
    spec.mu = 1.0;
    spec.intervals = m;
    const DesignResult d = design_contract(spec);
    const double gap = d.upper_bound - d.requester_utility;
    EXPECT_GE(gap, -1e-9);
    EXPECT_LT(gap, prev_gap + 1e-9) << "m=" << m;
    prev_gap = gap;
  }
}

TEST(Theorem41Test, UpperBoundFormula) {
  // Direct check of max_l { w psi(l d) - mu beta (l-1) d }.
  const double w = 2.0;
  const double mu = 1.5;
  const double delta = 0.5;
  const std::size_t m = 4;
  double expected = -1e300;
  for (std::size_t l = 1; l <= m; ++l) {
    expected = std::max(expected,
                        w * kPsi(delta * l) - mu * kBeta * (l - 1.0) * delta);
  }
  EXPECT_DOUBLE_EQ(theorem41_upper_bound(kPsi, w, mu, kBeta, delta, m),
                   expected);
  // With omega > 0 the bound can only move up (smaller pay floor + the
  // free-rider term).
  EXPECT_GE(theorem41_upper_bound(kPsi, w, mu, kBeta, delta, m, 0.5),
            expected);
}

TEST(Theorem41Test, LowerBoundUsesLemma42) {
  const double w = 2.0;
  const double mu = 1.5;
  const double delta = 0.4;
  const std::size_t k = 3;
  const double expected =
      w * kPsi(delta * (k - 1.0)) -
      mu * lemma42_compensation_upper(kPsi, kBeta, delta, k);
  EXPECT_DOUBLE_EQ(theorem41_lower_bound(kPsi, w, mu, kBeta, delta, k),
                   expected);
}

}  // namespace
}  // namespace ccd::contract
