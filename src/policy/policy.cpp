#include "policy/policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/wire.hpp"

namespace ccd::policy {
namespace {

/// Learner-state frames start with the backend kind and a codec version so
/// a checkpoint restored into the wrong backend fails loudly, not quietly.
constexpr std::uint32_t kStateVersion = 1;

void check_state_header(util::wire::Reader& r, Kind expected) {
  const auto kind = r.u8();
  if (kind != static_cast<std::uint8_t>(expected)) {
    throw DataError(std::string("policy state is for backend '") +
                    to_string(static_cast<Kind>(kind)) + "', expected '" +
                    to_string(expected) + "'");
  }
  const auto version = r.u32();
  if (version != kStateVersion) {
    throw DataError("unsupported policy state version " +
                    std::to_string(version));
  }
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kBip: return "bip";
    case Kind::kZoomingBandit: return "bandit";
    case Kind::kPostedPrice: return "posted";
  }
  return "?";
}

Kind kind_from_string(const std::string& name) {
  if (name == "bip") return Kind::kBip;
  if (name == "bandit") return Kind::kZoomingBandit;
  if (name == "posted") return Kind::kPostedPrice;
  throw ConfigError("unknown policy backend '" + name +
                    "' (expected bip|bandit|posted)");
}

void PolicyConfig::validate() const {
  if (kind != Kind::kBip && kind != Kind::kZoomingBandit &&
      kind != Kind::kPostedPrice) {
    throw ConfigError("policy.kind out of range");
  }
  if (!(payment_cap > 0.0) || !std::isfinite(payment_cap)) {
    throw ConfigError("policy.payment_cap must be finite and > 0");
  }
  if (!(zoom_confidence > 0.0) || !std::isfinite(zoom_confidence)) {
    throw ConfigError("policy.zoom_confidence must be finite and > 0");
  }
  if (zoom_max_depth < 1 || zoom_max_depth > 16) {
    throw ConfigError("policy.zoom_max_depth must be in [1, 16]");
  }
  if (price_levels < 2 || price_levels > 1024) {
    throw ConfigError("policy.price_levels must be in [2, 1024]");
  }
  if (!(peer_tolerance > 0.0) || !(peer_tolerance <= 2.0)) {
    throw ConfigError("policy.peer_tolerance must be in (0, 2]");
  }
}

double invert_psi(const effort::QuadraticEffort& psi, double target) {
  const double hi = psi.usable_domain();
  if (target <= psi(0.0)) return 0.0;
  if (target >= psi(hi)) return hi;
  double lo = 0.0, up = hi;
  for (int i = 0; i < 64; ++i) {  // psi strictly increasing on [0, hi]
    const double mid = 0.5 * (lo + up);
    if (psi(mid) < target) {
      lo = mid;
    } else {
      up = mid;
    }
  }
  return up;
}

contract::Contract threshold_contract(const effort::QuadraticEffort& psi,
                                      double threshold_effort,
                                      double payment) {
  if (payment <= 0.0 || threshold_effort <= 0.0) return contract::Contract{};
  constexpr std::size_t kSteps = 10;  // payment mass on the last knot only
  std::vector<double> payments(kSteps + 1, 0.0);
  payments.back() = payment;
  return contract::Contract::on_effort_grid(
      psi, threshold_effort / static_cast<double>(kSteps),
      std::move(payments));
}

std::unique_ptr<Policy> make_policy(const PolicyConfig& config) {
  config.validate();
  switch (config.kind) {
    case Kind::kBip: return std::make_unique<BipPolicy>(config);
    case Kind::kZoomingBandit:
      return std::make_unique<ZoomingBanditPolicy>(config);
    case Kind::kPostedPrice:
      return std::make_unique<PostedPricePolicy>(config);
  }
  throw ConfigError("policy.kind out of range");
}

// --- BipPolicy ------------------------------------------------------------

BipPolicy::BipPolicy(const PolicyConfig& config) { config.validate(); }

bool BipPolicy::post(std::size_t round, bool redesign,
                     const std::vector<WorkerView>& views,
                     std::vector<contract::Contract>& contracts,
                     util::Rng& rng, const PostEnv& env) {
  (void)round;
  (void)rng;
  if (!redesign) return true;
  std::vector<contract::SubproblemSpec> specs(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    specs[i].psi = views[i].psi;
    specs[i].incentives.beta = views[i].beta;
    specs[i].incentives.omega = views[i].omega;
    specs[i].weight = views[i].weight;
    specs[i].mu = views[i].mu;
    specs[i].intervals = views[i].intervals;
  }
  contract::BatchOptions options;
  options.pool = env.pool;
  options.cache = env.cache;
  options.cancel = env.cancel;
  options.kernel = contract::SweepKernel::kScalar;
  std::vector<std::uint8_t> resolved;
  options.resolved = &resolved;
  auto results = contract::design_contracts_batch(specs, options);
  if (env.cancel != nullptr && env.cancel->cancelled()) {
    // The batch was cut short: tell the caller to drop the round, exactly
    // as the pre-policy inline redesign did.
    return false;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    CCD_CHECK_MSG(resolved[i] != 0, "redesign batch left a worker unsolved");
    contracts[i] = std::move(results[i].contract);
  }
  return true;
}

void BipPolicy::observe(std::size_t, const std::vector<RoundOutcome>&,
                        util::Rng&) {}

std::string BipPolicy::save_state() const { return {}; }

void BipPolicy::load_state(const std::string& payload) {
  if (!payload.empty()) {
    throw DataError("bip policy carries no learner state, got " +
                    std::to_string(payload.size()) + " bytes");
  }
}

// --- ZoomingBanditPolicy --------------------------------------------------

namespace {
/// Half-width of a cell at `depth` in the unit square.
double cell_radius(std::uint32_t depth) {
  return std::ldexp(0.5, -static_cast<int>(depth));
}
}  // namespace

ZoomingBanditPolicy::ZoomingBanditPolicy(const PolicyConfig& config)
    : config_(config) {
  config_.validate();
}

std::size_t ZoomingBanditPolicy::select_cell(const Learner& learner) const {
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t i = 0; i < learner.cells.size(); ++i) {
    const Cell& cell = learner.cells[i];
    if (cell.plays == 0) return i;  // first unplayed cell wins
    const double mean = cell.reward_sum / static_cast<double>(cell.plays);
    const double conf =
        config_.zoom_confidence *
        std::sqrt(std::log(static_cast<double>(learner.plays) + 2.0) /
                  static_cast<double>(cell.plays));
    const double index =
        mean + learner.scale * (conf + 2.0 * cell_radius(cell.depth));
    if (index > best_index) {
      best_index = index;
      best = i;
    }
  }
  return best;
}

void ZoomingBanditPolicy::maybe_split(Learner& learner,
                                      std::size_t cell_index) {
  const Cell cell = learner.cells[cell_index];
  if (cell.depth >= config_.zoom_max_depth) return;
  // Split once the confidence radius shrinks below the geometric radius:
  // zoom_confidence * sqrt(log(T + 2) / n) <= r  (the HSV zooming rule).
  const double r = cell_radius(cell.depth);
  const double needed = config_.zoom_confidence * config_.zoom_confidence *
                        std::log(static_cast<double>(learner.plays) + 2.0) /
                        (r * r);
  if (static_cast<double>(cell.plays) < needed) return;
  learner.cells.erase(learner.cells.begin() +
                      static_cast<std::ptrdiff_t>(cell_index));
  const double step = 0.5 * r;
  for (const double dy : {-step, step}) {
    for (const double dx : {-step, step}) {
      Cell child;
      child.cx = cell.cx + dx;
      child.cy = cell.cy + dy;
      child.depth = cell.depth + 1;
      learner.cells.push_back(child);
    }
  }
}

bool ZoomingBanditPolicy::post(std::size_t round, bool redesign,
                               const std::vector<WorkerView>& views,
                               std::vector<contract::Contract>& contracts,
                               util::Rng& rng, const PostEnv& env) {
  (void)round;
  (void)redesign;
  (void)rng;
  (void)env;
  if (learners_.size() < views.size()) learners_.resize(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    const WorkerView& view = views[i];
    Learner& learner = learners_[i];
    if (!view.active || view.weight <= 0.0) {
      contracts[i] = contract::Contract{};
      learner.pending = kNoPending;
      continue;
    }
    if (learner.cells.empty()) learner.cells.push_back(Cell{});
    const std::size_t chosen = select_cell(learner);
    const Cell& cell = learner.cells[chosen];
    const double payment = clamp01(cell.cx) * config_.payment_cap;
    const double threshold =
        std::clamp(cell.cy, 0.05, 1.0) * view.psi.usable_domain();
    contracts[i] = threshold_contract(view.psi, threshold, payment);
    learner.pending = static_cast<std::uint32_t>(chosen);
  }
  return true;
}

void ZoomingBanditPolicy::observe(std::size_t round,
                                  const std::vector<RoundOutcome>& outcomes,
                                  util::Rng& rng) {
  (void)round;
  (void)rng;
  const std::size_t n = std::min(outcomes.size(), learners_.size());
  for (std::size_t i = 0; i < n; ++i) {
    Learner& learner = learners_[i];
    if (learner.pending == kNoPending) continue;
    const std::size_t idx = learner.pending;
    learner.pending = kNoPending;
    const RoundOutcome& outcome = outcomes[i];
    if (!outcome.active) continue;  // churned out between post and settle
    Cell& cell = learner.cells[idx];
    cell.plays += 1;
    cell.reward_sum += outcome.reward;
    learner.plays += 1;
    learner.scale = std::max(learner.scale, std::fabs(outcome.reward));
    maybe_split(learner, idx);
  }
}

std::string ZoomingBanditPolicy::save_state() const {
  util::wire::Writer w;
  w.u8(static_cast<std::uint8_t>(Kind::kZoomingBandit));
  w.u32(kStateVersion);
  w.u64(learners_.size());
  for (const Learner& learner : learners_) {
    w.u64(learner.plays);
    w.f64(learner.scale);
    w.u32(learner.pending);
    w.u64(learner.cells.size());
    for (const Cell& cell : learner.cells) {
      w.f64(cell.cx);
      w.f64(cell.cy);
      w.u32(cell.depth);
      w.u64(cell.plays);
      w.f64(cell.reward_sum);
    }
  }
  return w.take();
}

void ZoomingBanditPolicy::load_state(const std::string& payload) {
  learners_.clear();
  if (payload.empty()) return;
  util::wire::Reader r(payload);
  check_state_header(r, Kind::kZoomingBandit);
  const std::size_t n = r.count(8);
  learners_.resize(n);
  for (Learner& learner : learners_) {
    learner.plays = r.u64();
    learner.scale = r.f64();
    learner.pending = r.u32();
    const std::size_t cells = r.count(8 + 8 + 4 + 8 + 8);
    learner.cells.resize(cells);
    for (Cell& cell : learner.cells) {
      cell.cx = r.f64();
      cell.cy = r.f64();
      cell.depth = r.u32();
      cell.plays = r.u64();
      cell.reward_sum = r.f64();
    }
    if (learner.pending != kNoPending &&
        learner.pending >= learner.cells.size()) {
      throw DataError("bandit policy state: pending cell out of range");
    }
  }
  r.finish();
}

// --- PostedPricePolicy ----------------------------------------------------

PostedPricePolicy::PostedPricePolicy(const PolicyConfig& config)
    : config_(config) {
  config_.validate();
}

double PostedPricePolicy::price(std::size_t level) const {
  return config_.payment_cap * static_cast<double>(level + 1) /
         static_cast<double>(config_.price_levels);
}

void PostedPricePolicy::maybe_eliminate(Learner& learner) {
  std::size_t active = 0;
  for (const Arm& arm : learner.arms) {
    if (!arm.active) continue;
    ++active;
    if (arm.plays < kEliminationBatch) return;  // still exploring
  }
  if (active < 2) return;
  const double log_t =
      std::log(static_cast<double>(learner.plays) + 2.0);
  double best_lcb = -std::numeric_limits<double>::infinity();
  for (const Arm& arm : learner.arms) {
    if (!arm.active) continue;
    const double mean = arm.reward_sum / static_cast<double>(arm.plays);
    const double conf =
        learner.scale * std::sqrt(log_t / static_cast<double>(arm.plays));
    best_lcb = std::max(best_lcb, mean - conf);
  }
  for (Arm& arm : learner.arms) {
    if (!arm.active) continue;
    const double mean = arm.reward_sum / static_cast<double>(arm.plays);
    const double conf =
        learner.scale * std::sqrt(log_t / static_cast<double>(arm.plays));
    if (mean + conf < best_lcb) arm.active = false;
  }
}

bool PostedPricePolicy::post(std::size_t round, bool redesign,
                             const std::vector<WorkerView>& views,
                             std::vector<contract::Contract>& contracts,
                             util::Rng& rng, const PostEnv& env) {
  (void)round;
  (void)redesign;
  (void)rng;
  (void)env;
  if (learners_.size() < views.size()) learners_.resize(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    const WorkerView& view = views[i];
    Learner& learner = learners_[i];
    if (!view.active || view.weight <= 0.0) {
      contracts[i] = contract::Contract{};
      learner.pending = kNoPending;
      continue;
    }
    if (learner.arms.empty()) learner.arms.resize(config_.price_levels);
    // Least-played surviving price, lowest level on ties (round-robin
    // exploration; collapses to the single survivor after elimination).
    std::size_t chosen = learner.arms.size();
    for (std::size_t j = 0; j < learner.arms.size(); ++j) {
      const Arm& arm = learner.arms[j];
      if (!arm.active) continue;
      if (chosen == learner.arms.size() ||
          arm.plays < learner.arms[chosen].plays) {
        chosen = j;
      }
    }
    CCD_CHECK(chosen < learner.arms.size());
    const double domain = view.psi.usable_domain();
    double threshold = 0.5 * domain;
    if (peer_rounds_ > 0) {
      const double target = config_.peer_tolerance * peer_mean_;
      if (target > view.psi(0.0)) threshold = invert_psi(view.psi, target);
    }
    threshold = std::clamp(threshold, 0.05 * domain, domain);
    contracts[i] = threshold_contract(view.psi, threshold, price(chosen));
    learner.pending = static_cast<std::uint32_t>(chosen);
  }
  return true;
}

void PostedPricePolicy::observe(std::size_t round,
                                const std::vector<RoundOutcome>& outcomes,
                                util::Rng& rng) {
  (void)round;
  (void)rng;
  double feedback_sum = 0.0;
  std::size_t active = 0;
  for (const RoundOutcome& outcome : outcomes) {
    if (!outcome.active) continue;
    feedback_sum += outcome.feedback;
    ++active;
  }
  if (active > 0) {
    const double mean = feedback_sum / static_cast<double>(active);
    peer_mean_ = peer_rounds_ == 0 ? mean : 0.8 * peer_mean_ + 0.2 * mean;
    peer_rounds_ += 1;
  }
  const std::size_t n = std::min(outcomes.size(), learners_.size());
  for (std::size_t i = 0; i < n; ++i) {
    Learner& learner = learners_[i];
    if (learner.pending == kNoPending) continue;
    const std::size_t idx = learner.pending;
    learner.pending = kNoPending;
    const RoundOutcome& outcome = outcomes[i];
    if (!outcome.active) continue;
    Arm& arm = learner.arms[idx];
    arm.plays += 1;
    arm.reward_sum += outcome.reward;
    learner.plays += 1;
    learner.scale = std::max(learner.scale, std::fabs(outcome.reward));
    maybe_eliminate(learner);
  }
}

std::string PostedPricePolicy::save_state() const {
  util::wire::Writer w;
  w.u8(static_cast<std::uint8_t>(Kind::kPostedPrice));
  w.u32(kStateVersion);
  w.f64(peer_mean_);
  w.u64(peer_rounds_);
  w.u64(learners_.size());
  for (const Learner& learner : learners_) {
    w.u64(learner.plays);
    w.f64(learner.scale);
    w.u32(learner.pending);
    w.u64(learner.arms.size());
    for (const Arm& arm : learner.arms) {
      w.u64(arm.plays);
      w.f64(arm.reward_sum);
      w.u8(arm.active ? 1 : 0);
    }
  }
  return w.take();
}

void PostedPricePolicy::load_state(const std::string& payload) {
  learners_.clear();
  peer_mean_ = 0.0;
  peer_rounds_ = 0;
  if (payload.empty()) return;
  util::wire::Reader r(payload);
  check_state_header(r, Kind::kPostedPrice);
  peer_mean_ = r.f64();
  peer_rounds_ = r.u64();
  const std::size_t n = r.count(8);
  learners_.resize(n);
  for (Learner& learner : learners_) {
    learner.plays = r.u64();
    learner.scale = r.f64();
    learner.pending = r.u32();
    const std::size_t arms = r.count(8 + 8 + 1);
    learner.arms.resize(arms);
    for (Arm& arm : learner.arms) {
      arm.plays = r.u64();
      arm.reward_sum = r.f64();
      arm.active = r.u8() != 0;
    }
    if (learner.pending != kNoPending &&
        learner.pending >= learner.arms.size()) {
      throw DataError("posted policy state: pending arm out of range");
    }
  }
  r.finish();
}

}  // namespace ccd::policy
