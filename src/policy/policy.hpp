// Multi-backend contract designers: the per-round policy seam of the
// Stackelberg loop (ROADMAP item 3).
//
// The paper's BiP designer assumes the effort function psi and the worker
// incentives are *known* (fit offline from logged traces); the related work
// drops that assumption and learns contracts online. A Policy closes the
// loop either way: each round the caller hands it what the requester
// currently believes about every worker (WorkerView), the policy posts the
// next round's per-worker contracts, and — for the learning backends — it
// is fed the realized outcomes (RoundOutcome) to update its learner state.
//
// Three backends:
//
//  * BipPolicy — the paper baseline. Wraps the existing
//    contract::design_contracts_batch / DesignCache path verbatim: on each
//    redesign round it solves the bilevel program for the views as given.
//    Stateless; bitwise-identical to the pre-policy simulator.
//
//  * ZoomingBanditPolicy — after Ho–Slivkins–Vaughan, "Adaptive Contract
//    Design for Crowdsourcing Markets" (arXiv:1405.2875). Per worker, an
//    adaptive discretization (a quadtree of cells with per-cell confidence
//    radii) of the normalized (payment, threshold-effort) contract space;
//    each round the cell with the highest optimistic index is played as a
//    near-step threshold contract, and a cell splits into its four
//    quadrants once its confidence radius shrinks below its geometric
//    radius — the zooming rule that refines only near-optimal regions.
//
//  * PostedPricePolicy — after Liu–Chen, "Sequential Peer Prediction:
//    Learning to Elicit Effort using Posted Prices" (arXiv:1611.09219).
//    Per worker, successive elimination over a fixed grid of posted
//    prices; the effort threshold the price is posted against tracks a
//    trailing peer-consistency statistic (the fleet-wide mean feedback),
//    so a worker is paid for clearing what its peers demonstrably deliver.
//
// Determinism contract: post()/observe() may draw randomness *only* from
// the caller-supplied Rng (the simulator passes its checkpointed stream).
// Tie-breaks are by lowest index, never by address or hash order, so a run
// is bitwise-reproducible across thread counts and kill/resume. Learner
// state is serialized by save_state()/load_state() at round boundaries and
// rides the SCKP v3 / ISES v2 checkpoint frames; a posted-but-unobserved
// arm (the ingest flow checkpoints right after posting) is part of that
// state, so a resumed learner still credits it on the next observe().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "contract/contract.hpp"
#include "contract/design_cache.hpp"
#include "effort/effort_model.hpp"
#include "util/rng.hpp"

namespace ccd::util {
class CancellationToken;
class ThreadPool;
}

namespace ccd::policy {

enum class Kind : std::uint8_t {
  kBip = 0,          ///< paper baseline: bilevel-program designer
  kZoomingBandit = 1,  ///< HSV adaptive discretization
  kPostedPrice = 2,  ///< Liu–Chen posted-price elicitation
};

const char* to_string(Kind kind);

/// Parses "bip" | "bandit" | "posted"; throws ccd::ConfigError otherwise.
Kind kind_from_string(const std::string& name);

/// Backend selection plus the learning backends' knobs. A value member of
/// core::SimConfig; serialized into SCKP v3 config sections and the CSRV
/// open frame, so field changes require a version bump there.
struct PolicyConfig {
  Kind kind = Kind::kBip;
  /// Largest per-round payment a learned arm may promise (the learners'
  /// contract space is (payment, threshold) in [0, payment_cap] x (0, 1]).
  double payment_cap = 12.0;
  /// Zooming bandit: confidence-radius scale (larger explores longer).
  double zoom_confidence = 0.8;
  /// Zooming bandit: maximum quadtree depth (cells stop splitting there;
  /// depth 6 resolves the space to ~1.6% per axis).
  std::size_t zoom_max_depth = 6;
  /// Posted price: number of price levels on the grid.
  std::size_t price_levels = 12;
  /// Posted price: fraction of the trailing peer mean feedback a worker
  /// must clear to be paid (the peer-consistency threshold).
  double peer_tolerance = 0.75;

  void validate() const;  ///< throws ccd::ConfigError
};

/// What the requester currently believes about one worker — everything a
/// backend may condition on. The simulator fills these from its running
/// estimates (EMA accuracy/maliciousness, Eq. 5 weight), exactly as the
/// inline redesign block did pre-policy.
struct WorkerView {
  effort::QuadraticEffort psi{-1.0, 8.0, 2.0};
  double beta = 1.0;
  double omega = 0.0;   ///< attributed influence weight (0 = trusted honest)
  double weight = 1.0;  ///< Eq. 5 feedback weight (<= 0 excludes the worker)
  double mu = 1.0;
  std::size_t intervals = 20;
  bool active = true;  ///< false = churned out this round (no contract)
};

/// Realized outcome of one round for one worker, fed back to learning
/// backends. `reward` is the requester's per-worker steady-state utility
/// of the posted arm: weight * feedback - mu * pay(feedback).
struct RoundOutcome {
  bool active = false;
  double feedback = 0.0;
  double reward = 0.0;
};

/// Shared machinery post() may use (all optional).
struct PostEnv {
  util::ThreadPool* pool = nullptr;
  contract::DesignCache* cache = nullptr;
  const util::CancellationToken* cancel = nullptr;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual Kind kind() const = 0;

  /// True for backends whose observe() must be fed every round. The
  /// simulator skips outcome assembly entirely for non-learning backends,
  /// keeping the BiP path's per-round cost (and RNG stream) unchanged.
  virtual bool learns() const = 0;

  /// Post round `round`'s contracts: overwrite `contracts` (sized to
  /// `views`) in place. `redesign` is true on the caller's redesign
  /// cadence (BiP only re-solves then; the learners post fresh arms every
  /// round). Returns false iff cancelled mid-solve via env.cancel — the
  /// caller then discards the round, exactly like the pre-policy batch.
  virtual bool post(std::size_t round, bool redesign,
                    const std::vector<WorkerView>& views,
                    std::vector<contract::Contract>& contracts, util::Rng& rng,
                    const PostEnv& env) = 0;

  /// Feed the realized outcomes of round `round` (same indexing as the
  /// views passed to post). Only called when learns() is true.
  virtual void observe(std::size_t round,
                       const std::vector<RoundOutcome>& outcomes,
                       util::Rng& rng) = 0;

  /// Serialize the learner state (empty for stateless backends), including
  /// any posted-but-unobserved arm, so a checkpoint taken between post()
  /// and observe() still resumes bitwise.
  virtual std::string save_state() const = 0;

  /// Restore state produced by save_state() of the same backend kind.
  /// Empty string = fresh start. Throws ccd::DataError on a foreign or
  /// corrupt payload.
  virtual void load_state(const std::string& payload) = 0;
};

/// Instantiate the configured backend (validates `config`).
std::unique_ptr<Policy> make_policy(const PolicyConfig& config);

/// Smallest effort y in [0, psi.usable_domain()] with psi(y) >= target
/// (clamped to the domain ends). Deterministic bisection; exposed for the
/// posted-price backend and its tests.
double invert_psi(const effort::QuadraticEffort& psi, double target);

/// The learners' arm family: a near-step threshold contract that pays
/// `payment` once feedback clears ~psi(threshold_effort), built as a
/// 10-interval effort grid with all payment mass on the last knot.
/// `payment <= 0` or `threshold_effort <= 0` yields the zero contract.
contract::Contract threshold_contract(const effort::QuadraticEffort& psi,
                                      double threshold_effort, double payment);

// --- Concrete backends (constructible directly in tests; production code
// --- goes through make_policy) -------------------------------------------

class BipPolicy final : public Policy {
 public:
  explicit BipPolicy(const PolicyConfig& config);

  Kind kind() const override { return Kind::kBip; }
  bool learns() const override { return false; }
  bool post(std::size_t round, bool redesign,
            const std::vector<WorkerView>& views,
            std::vector<contract::Contract>& contracts, util::Rng& rng,
            const PostEnv& env) override;
  void observe(std::size_t round, const std::vector<RoundOutcome>& outcomes,
               util::Rng& rng) override;
  std::string save_state() const override;
  void load_state(const std::string& payload) override;
};

class ZoomingBanditPolicy final : public Policy {
 public:
  explicit ZoomingBanditPolicy(const PolicyConfig& config);

  Kind kind() const override { return Kind::kZoomingBandit; }
  bool learns() const override { return true; }
  bool post(std::size_t round, bool redesign,
            const std::vector<WorkerView>& views,
            std::vector<contract::Contract>& contracts, util::Rng& rng,
            const PostEnv& env) override;
  void observe(std::size_t round, const std::vector<RoundOutcome>& outcomes,
               util::Rng& rng) override;
  std::string save_state() const override;
  void load_state(const std::string& payload) override;

 private:
  /// One quadtree cell of a worker's adaptive discretization. (cx, cy) is
  /// the cell center in the normalized contract square, half-width
  /// 0.5 / 2^depth.
  struct Cell {
    double cx = 0.5;
    double cy = 0.5;
    std::uint32_t depth = 0;
    std::uint64_t plays = 0;
    double reward_sum = 0.0;
  };
  struct Learner {
    std::vector<Cell> cells;
    std::uint64_t plays = 0;
    /// Running max |reward| (floor 1): scales confidence radii and the
    /// Lipschitz slack so the index works on unnormalized rewards.
    double scale = 1.0;
    std::uint32_t pending = kNoPending;
  };
  static constexpr std::uint32_t kNoPending = 0xffffffffu;

  std::size_t select_cell(const Learner& learner) const;
  void maybe_split(Learner& learner, std::size_t cell_index);

  PolicyConfig config_;
  std::vector<Learner> learners_;  ///< grown on demand, indexed by worker
};

class PostedPricePolicy final : public Policy {
 public:
  explicit PostedPricePolicy(const PolicyConfig& config);

  Kind kind() const override { return Kind::kPostedPrice; }
  bool learns() const override { return true; }
  bool post(std::size_t round, bool redesign,
            const std::vector<WorkerView>& views,
            std::vector<contract::Contract>& contracts, util::Rng& rng,
            const PostEnv& env) override;
  void observe(std::size_t round, const std::vector<RoundOutcome>& outcomes,
               util::Rng& rng) override;
  std::string save_state() const override;
  void load_state(const std::string& payload) override;

 private:
  struct Arm {
    std::uint64_t plays = 0;
    double reward_sum = 0.0;
    bool active = true;
  };
  struct Learner {
    std::vector<Arm> arms;
    std::uint64_t plays = 0;
    double scale = 1.0;  ///< running max |reward| (floor 1)
    std::uint32_t pending = kNoPending;
  };
  static constexpr std::uint32_t kNoPending = 0xffffffffu;
  /// Plays every surviving arm needs before an elimination sweep runs.
  static constexpr std::uint64_t kEliminationBatch = 4;

  double price(std::size_t level) const;
  void maybe_eliminate(Learner& learner);

  PolicyConfig config_;
  std::vector<Learner> learners_;
  /// Trailing EMA of the fleet-wide mean feedback — the peer-consistency
  /// statistic the posted threshold tracks.
  double peer_mean_ = 0.0;
  std::uint64_t peer_rounds_ = 0;
};

}  // namespace ccd::policy
