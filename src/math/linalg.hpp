// Direct solvers: LU with partial pivoting and Householder QR least squares.
#pragma once

#include <vector>

#include "math/matrix.hpp"

namespace ccd::math {

/// Solve the square system A x = b via LU with partial pivoting.
/// Throws ccd::MathError if A is (numerically) singular.
std::vector<double> solve_lu(const Matrix& a, const std::vector<double>& b);

/// Result of a least-squares solve.
struct LeastSquaresResult {
  std::vector<double> coefficients;  ///< minimizer of ||A x - b||2
  double residual_norm = 0.0;        ///< ||A x* - b||2
};

/// Solve min_x ||A x - b||2 via Householder QR. Requires rows >= cols and
/// full column rank (throws ccd::MathError otherwise).
LeastSquaresResult solve_least_squares(const Matrix& a,
                                       const std::vector<double>& b);

/// Determinant via LU (square matrices).
double determinant(Matrix a);

}  // namespace ccd::math
