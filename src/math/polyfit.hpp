// Least-squares polynomial fitting (the paper's "effort function fitting",
// §IV-B / Table III).
//
// Fits p(x) = c0 + c1 x + ... + c_d x^d to (x, y) samples by Householder QR
// on the Vandermonde system, and reports the norm of residuals (NoR) — the
// same deviation measure the paper tabulates.
#pragma once

#include <cstddef>
#include <vector>

#include "math/polynomial.hpp"

namespace ccd::math {

struct PolyFitResult {
  Polynomial polynomial;
  double norm_of_residuals = 0.0;  ///< ||y - p(x)||2 (MATLAB-style NoR)
};

/// Fit a degree-`degree` polynomial. Requires xs.size() == ys.size() and at
/// least degree+1 samples. For numerical stability the x values are centered
/// and scaled internally; returned coefficients are in the original units.
PolyFitResult polyfit(const std::vector<double>& xs,
                      const std::vector<double>& ys, std::size_t degree);

/// NoR of an existing polynomial against a sample set.
double norm_of_residuals(const Polynomial& p, const std::vector<double>& xs,
                         const std::vector<double>& ys);

/// Fit each degree in [min_degree, max_degree] and return the NoRs, in
/// order — one row of the paper's Table III.
std::vector<double> nor_by_degree(const std::vector<double>& xs,
                                  const std::vector<double>& ys,
                                  std::size_t min_degree,
                                  std::size_t max_degree);

}  // namespace ccd::math
