// Generic continuous piecewise-linear function over sorted knots.
//
// The paper's contract-function approximation (§III-A) is a monotone
// piecewise-linear map from feedback to compensation; this class provides
// the generic machinery (evaluation, slopes, inverse on monotone segments),
// and contract-specific semantics live in ccd::contract.
#pragma once

#include <string>
#include <vector>

namespace ccd::math {

class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// `xs` strictly increasing, `ys` same size (>= 2 knots for a non-trivial
  /// function; a single knot behaves as a constant).
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  std::size_t knots() const { return xs_.size(); }
  const std::vector<double>& x() const { return xs_; }
  const std::vector<double>& y() const { return ys_; }

  double x_min() const;
  double x_max() const;

  /// Evaluation; inputs outside [x_min, x_max] clamp to the boundary value
  /// (the contract semantics: feedback beyond the last knot earns the last
  /// compensation, Eq. 6 with saturation).
  double operator()(double x) const;

  /// Slope of segment i (between knots i and i+1); i < knots()-1.
  double slope(std::size_t segment) const;

  /// Index of the segment containing x (clamped to the valid range).
  std::size_t segment_of(double x) const;

  bool is_monotone_non_decreasing() const;

  /// Inverse for monotone non-decreasing functions: smallest x with
  /// value(x) >= target; throws ccd::MathError if target is out of range
  /// or the function is not monotone.
  double inverse(double target) const;

  std::string to_string(int precision = 4) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace ccd::math
