// Dense row-major matrix for small linear-algebra problems.
//
// Sized for the library's needs — Vandermonde least squares for effort-curve
// fitting (hundreds/thousands of rows, <= 7 columns) — not for HPC.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace ccd::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Matrix transpose() const;

  Matrix operator*(const Matrix& other) const;
  std::vector<double> operator*(const std::vector<double>& v) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Max absolute element difference; matrices must be the same shape.
  double max_abs_diff(const Matrix& other) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& v);

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ccd::math
