#include "math/piecewise.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::math {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  CCD_CHECK_MSG(!xs_.empty(), "PiecewiseLinear needs at least one knot");
  CCD_CHECK_MSG(xs_.size() == ys_.size(),
                "PiecewiseLinear knot/value size mismatch");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    CCD_CHECK_MSG(xs_[i] > xs_[i - 1],
                  "PiecewiseLinear knots must be strictly increasing");
  }
}

double PiecewiseLinear::x_min() const {
  CCD_CHECK(!xs_.empty());
  return xs_.front();
}

double PiecewiseLinear::x_max() const {
  CCD_CHECK(!xs_.empty());
  return xs_.back();
}

double PiecewiseLinear::operator()(double x) const {
  CCD_CHECK(!xs_.empty());
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t seg = segment_of(x);
  const double x0 = xs_[seg];
  const double x1 = xs_[seg + 1];
  const double t = (x - x0) / (x1 - x0);
  return ys_[seg] * (1.0 - t) + ys_[seg + 1] * t;
}

double PiecewiseLinear::slope(std::size_t segment) const {
  CCD_CHECK_MSG(segment + 1 < xs_.size(), "segment index out of range");
  return (ys_[segment + 1] - ys_[segment]) / (xs_[segment + 1] - xs_[segment]);
}

std::size_t PiecewiseLinear::segment_of(double x) const {
  CCD_CHECK_MSG(xs_.size() >= 2, "segment_of requires at least two knots");
  if (x <= xs_.front()) return 0;
  if (x >= xs_.back()) return xs_.size() - 2;
  // First knot strictly greater than x; segment is the one before it.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<std::size_t>(it - xs_.begin()) - 1;
}

bool PiecewiseLinear::is_monotone_non_decreasing() const {
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (ys_[i] < ys_[i - 1]) return false;
  }
  return true;
}

double PiecewiseLinear::inverse(double target) const {
  CCD_CHECK_MSG(is_monotone_non_decreasing(),
                "inverse requires a monotone function");
  if (target < ys_.front() || target > ys_.back()) {
    throw MathError("PiecewiseLinear::inverse: target outside range");
  }
  for (std::size_t seg = 0; seg + 1 < xs_.size(); ++seg) {
    if (target <= ys_[seg + 1]) {
      if (ys_[seg + 1] == ys_[seg]) return xs_[seg];  // flat: smallest x
      const double t = (target - ys_[seg]) / (ys_[seg + 1] - ys_[seg]);
      return xs_[seg] + t * (xs_[seg + 1] - xs_[seg]);
    }
  }
  return xs_.back();
}

std::string PiecewiseLinear::to_string(int precision) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (i > 0) os << " -> ";
    os << '(' << util::format_double(xs_[i], precision) << ", "
       << util::format_double(ys_[i], precision) << ')';
  }
  return os.str();
}

}  // namespace ccd::math
