// Scalar optimization and root finding used by the contract machinery:
// golden-section search for unimodal maxima, refined grid search as a robust
// fallback (the oracle baseline), and bisection for root finding.
#pragma once

#include <functional>

namespace ccd::math {

struct ScalarOptimum {
  double x = 0.0;
  double value = 0.0;
};

/// Maximize a unimodal function on [lo, hi] by golden-section search.
/// `tol` is the absolute x tolerance.
ScalarOptimum golden_section_max(const std::function<double(double)>& f,
                                 double lo, double hi, double tol = 1e-10);

/// Maximize an arbitrary continuous function on [lo, hi] by iteratively
/// refined grid search (`points` samples per level, `levels` refinements).
/// Robust to multimodality at the cost of more evaluations.
ScalarOptimum grid_refine_max(const std::function<double(double)>& f,
                              double lo, double hi, std::size_t points = 257,
                              std::size_t levels = 4);

/// Find a root of f on [lo, hi] by bisection; requires a sign change.
/// Throws ccd::MathError if f(lo) and f(hi) have the same sign.
double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol = 1e-12);

}  // namespace ccd::math
