#include "math/optimize.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ccd::math {

ScalarOptimum golden_section_max(const std::function<double(double)>& f,
                                 double lo, double hi, double tol) {
  CCD_CHECK_MSG(lo <= hi, "golden_section_max requires lo <= hi");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi

  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);

  while (b - a > tol) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
  }
  const double xm = 0.5 * (a + b);
  return {xm, f(xm)};
}

ScalarOptimum grid_refine_max(const std::function<double(double)>& f,
                              double lo, double hi, std::size_t points,
                              std::size_t levels) {
  CCD_CHECK_MSG(lo <= hi, "grid_refine_max requires lo <= hi");
  CCD_CHECK_MSG(points >= 3, "grid_refine_max needs at least 3 points");

  double a = lo;
  double b = hi;
  ScalarOptimum best{lo, f(lo)};
  for (std::size_t level = 0; level < levels; ++level) {
    const double step = (b - a) / static_cast<double>(points - 1);
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < points; ++i) {
      const double x = a + step * static_cast<double>(i);
      const double v = f(x);
      if (v > best.value || (level == 0 && i == 0)) {
        // level 0 / i 0 re-seeds in case f(lo) above was stale
        if (v > best.value) {
          best = {x, v};
          best_idx = i;
        }
      }
    }
    // Zoom one step around the best grid point.
    const double center = a + step * static_cast<double>(best_idx);
    a = std::max(lo, center - step);
    b = std::min(hi, center + step);
    if (b - a <= 0.0) break;
  }
  return best;
}

double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol) {
  CCD_CHECK_MSG(lo <= hi, "bisect_root requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw MathError("bisect_root: no sign change on the interval");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ccd::math
