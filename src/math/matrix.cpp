#include "math/matrix.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    CCD_CHECK_MSG(row.size() == cols_, "ragged initializer for Matrix");
    for (const double v : row) data_.push_back(v);
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  CCD_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  CCD_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  CCD_CHECK_MSG(cols_ == other.rows_, "matrix product shape mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  CCD_CHECK_MSG(cols_ == v.size(), "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  CCD_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                "matrix sum shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  CCD_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                "matrix difference shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  CCD_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (const double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << util::format_double((*this)(r, c), precision);
    }
    os << "]\n";
  }
  return os.str();
}

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return std::sqrt(acc);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  CCD_CHECK_MSG(a.size() == b.size(), "dot product size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace ccd::math
