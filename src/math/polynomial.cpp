#include "math/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::math {
namespace {

void trim_trailing_zeros(std::vector<double>& c) {
  while (c.size() > 1 && c.back() == 0.0) c.pop_back();
}

}  // namespace

Polynomial::Polynomial(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  if (coefficients_.empty()) coefficients_ = {0.0};
  trim_trailing_zeros(coefficients_);
}

Polynomial Polynomial::constant(double c) { return Polynomial({c}); }

Polynomial Polynomial::linear(double intercept, double slope) {
  return Polynomial({intercept, slope});
}

Polynomial Polynomial::quadratic(double c0, double c1, double c2) {
  return Polynomial({c0, c1, c2});
}

std::size_t Polynomial::degree() const { return coefficients_.size() - 1; }

double Polynomial::coefficient(std::size_t power) const {
  return power < coefficients_.size() ? coefficients_[power] : 0.0;
}

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = coefficients_.size(); i > 0; --i) {
    acc = acc * x + coefficients_[i - 1];
  }
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coefficients_.size() <= 1) return Polynomial::constant(0.0);
  std::vector<double> out(coefficients_.size() - 1);
  for (std::size_t i = 1; i < coefficients_.size(); ++i) {
    out[i - 1] = coefficients_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::antiderivative(double constant) const {
  std::vector<double> out(coefficients_.size() + 1);
  out[0] = constant;
  for (std::size_t i = 0; i < coefficients_.size(); ++i) {
    out[i + 1] = coefficients_[i] / static_cast<double>(i + 1);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(
      std::max(coefficients_.size(), other.coefficients_.size()), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = coefficient(i) + other.coefficient(i);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  std::vector<double> out(
      std::max(coefficients_.size(), other.coefficients_.size()), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = coefficient(i) - other.coefficient(i);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> out(
      coefficients_.size() + other.coefficients_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coefficients_.size(); ++i) {
    for (std::size_t j = 0; j < other.coefficients_.size(); ++j) {
      out[i + j] += coefficients_[i] * other.coefficients_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> out = coefficients_;
  for (double& c : out) c *= scalar;
  return Polynomial(std::move(out));
}

std::vector<double> Polynomial::real_roots() const {
  const std::size_t deg = degree();
  if (deg == 0) {
    if (coefficients_[0] == 0.0) {
      throw MathError("real_roots: the zero polynomial has all roots");
    }
    return {};
  }
  if (deg == 1) {
    return {-coefficients_[0] / coefficients_[1]};
  }
  if (deg == 2) {
    const double a = coefficients_[2];
    const double b = coefficients_[1];
    const double c = coefficients_[0];
    const double disc = b * b - 4.0 * a * c;
    if (disc < 0.0) return {};
    if (disc == 0.0) return {-b / (2.0 * a)};
    // Numerically stable quadratic formula.
    const double q = -0.5 * (b + std::copysign(std::sqrt(disc), b));
    std::vector<double> roots = {q / a, c / q};
    std::sort(roots.begin(), roots.end());
    return roots;
  }
  throw MathError("real_roots supports degree <= 2 only");
}

std::string Polynomial::to_string(int precision) const {
  std::ostringstream os;
  for (std::size_t i = coefficients_.size(); i > 0; --i) {
    const std::size_t power = i - 1;
    const double c = coefficients_[power];
    if (i != coefficients_.size()) os << (c >= 0.0 ? " + " : " - ");
    else if (c < 0.0) os << '-';
    os << util::format_double(std::abs(c), precision);
    if (power >= 1) os << "*y";
    if (power >= 2) os << '^' << power;
  }
  return os.str();
}

}  // namespace ccd::math
