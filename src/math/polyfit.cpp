#include "math/polyfit.hpp"

#include <cmath>

#include <cstring>

#include "math/linalg.hpp"
#include "math/matrix.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::math {
namespace {

/// Expand a polynomial in the scaled variable u = (x - shift) / scale back
/// into coefficients of x, by composing with the linear map.
Polynomial unscale(const Polynomial& in_u, double shift, double scale) {
  // x -> u = (x - shift)/scale;  p(u) = sum c_k u^k.
  const Polynomial u = Polynomial::linear(-shift / scale, 1.0 / scale);
  Polynomial result = Polynomial::constant(0.0);
  Polynomial u_power = Polynomial::constant(1.0);
  for (std::size_t k = 0; k < in_u.coefficients().size(); ++k) {
    result = result + u_power * in_u.coefficients()[k];
    u_power = u_power * u;
  }
  return result;
}

/// Stable per-call key for fault injection: mixes the sample count with the
/// bit patterns of the first sample so distinct fits get distinct keys.
std::uint64_t fault_key(const std::vector<double>& xs,
                        const std::vector<double>& ys, std::size_t degree) {
  std::uint64_t bits_x = 0;
  std::uint64_t bits_y = 0;
  if (!xs.empty()) std::memcpy(&bits_x, &xs[0], sizeof(bits_x));
  if (!ys.empty()) std::memcpy(&bits_y, &ys[0], sizeof(bits_y));
  return (static_cast<std::uint64_t>(xs.size()) << 32) ^ bits_x ^
         (bits_y * 0x9e3779b97f4a7c15ULL) ^ degree;
}

}  // namespace

PolyFitResult polyfit(const std::vector<double>& xs,
                      const std::vector<double>& ys, std::size_t degree) {
  CCD_CHECK_MSG(xs.size() == ys.size(), "polyfit sample size mismatch");
  CCD_CHECK_MSG(xs.size() >= degree + 1,
                "polyfit needs at least degree+1 samples");
  CCD_FAULT_POINT("math.polyfit", fault_key(xs, ys, degree), MathError);

  // Center/scale x for Vandermonde conditioning.
  double lo = xs[0];
  double hi = xs[0];
  for (const double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double shift = 0.5 * (lo + hi);
  double scale = 0.5 * (hi - lo);
  if (scale <= 0.0) scale = 1.0;  // all x equal; fit degenerates to constant

  Matrix design(xs.size(), degree + 1);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    const double u = (xs[r] - shift) / scale;
    double power = 1.0;
    for (std::size_t c = 0; c <= degree; ++c) {
      design(r, c) = power;
      power *= u;
    }
  }

  const LeastSquaresResult ls = solve_least_squares(design, ys);
  PolyFitResult out;
  out.polynomial = unscale(Polynomial(ls.coefficients), shift, scale);
  out.norm_of_residuals = ls.residual_norm;
  return out;
}

double norm_of_residuals(const Polynomial& p, const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  CCD_CHECK_MSG(xs.size() == ys.size(), "NoR sample size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - p(xs[i]);
    acc += r * r;
  }
  return std::sqrt(acc);
}

std::vector<double> nor_by_degree(const std::vector<double>& xs,
                                  const std::vector<double>& ys,
                                  std::size_t min_degree,
                                  std::size_t max_degree) {
  CCD_CHECK_MSG(min_degree <= max_degree, "nor_by_degree degree range");
  std::vector<double> out;
  out.reserve(max_degree - min_degree + 1);
  for (std::size_t d = min_degree; d <= max_degree; ++d) {
    out.push_back(polyfit(xs, ys, d).norm_of_residuals);
  }
  return out;
}

}  // namespace ccd::math
