#include "math/linalg.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ccd::math {
namespace {

constexpr double kSingularEps = 1e-12;

}  // namespace

std::vector<double> solve_lu(const Matrix& a, const std::vector<double>& b) {
  CCD_CHECK_MSG(a.rows() == a.cols(), "solve_lu requires a square matrix");
  CCD_CHECK_MSG(a.rows() == b.size(), "solve_lu rhs size mismatch");
  const std::size_t n = a.rows();

  Matrix lu = a;
  std::vector<double> x = b;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in the column at/below the diagonal.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < kSingularEps) {
      throw MathError("solve_lu: matrix is singular to working precision");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu(pivot, c), lu(col, c));
      }
      std::swap(x[pivot], x[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
      x[r] -= factor * x[col];
    }
  }

  // Back substitution on the upper-triangular factor.
  for (std::size_t ri = n; ri > 0; --ri) {
    const std::size_t r = ri - 1;
    double acc = x[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= lu(r, c) * x[c];
    x[r] = acc / lu(r, r);
  }
  return x;
}

LeastSquaresResult solve_least_squares(const Matrix& a,
                                       const std::vector<double>& b) {
  CCD_CHECK_MSG(a.rows() >= a.cols(),
                "least squares requires at least as many rows as columns");
  CCD_CHECK_MSG(a.rows() == b.size(), "least squares rhs size mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Householder QR applied in place to [R | Q^T b].
  Matrix r = a;
  std::vector<double> qtb = b;

  for (std::size_t col = 0; col < n; ++col) {
    // Householder vector for column `col`, rows col..m-1.
    double norm = 0.0;
    for (std::size_t row = col; row < m; ++row) {
      norm += r(row, col) * r(row, col);
    }
    norm = std::sqrt(norm);
    if (norm < kSingularEps) {
      throw MathError("least squares: rank-deficient design matrix");
    }
    const double alpha = r(col, col) >= 0.0 ? -norm : norm;
    std::vector<double> v(m - col, 0.0);
    v[0] = r(col, col) - alpha;
    for (std::size_t row = col + 1; row < m; ++row) {
      v[row - col] = r(row, col);
    }
    double vnorm2 = 0.0;
    for (const double vi : v) vnorm2 += vi * vi;
    if (vnorm2 < kSingularEps * kSingularEps) {
      // Column already in triangular form.
      continue;
    }

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and to qtb.
    for (std::size_t c = col; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t row = col; row < m; ++row) {
        proj += v[row - col] * r(row, c);
      }
      proj = 2.0 * proj / vnorm2;
      for (std::size_t row = col; row < m; ++row) {
        r(row, c) -= proj * v[row - col];
      }
    }
    double proj = 0.0;
    for (std::size_t row = col; row < m; ++row) {
      proj += v[row - col] * qtb[row];
    }
    proj = 2.0 * proj / vnorm2;
    for (std::size_t row = col; row < m; ++row) {
      qtb[row] -= proj * v[row - col];
    }
  }

  // Back substitution: R x = (Q^T b)[0..n).
  LeastSquaresResult result;
  result.coefficients.assign(n, 0.0);
  for (std::size_t ri = n; ri > 0; --ri) {
    const std::size_t row = ri - 1;
    if (std::abs(r(row, row)) < kSingularEps) {
      throw MathError("least squares: rank-deficient design matrix");
    }
    double acc = qtb[row];
    for (std::size_t c = row + 1; c < n; ++c) {
      acc -= r(row, c) * result.coefficients[c];
    }
    result.coefficients[row] = acc / r(row, row);
  }

  // Residual norm is the norm of the bottom part of Q^T b.
  double tail = 0.0;
  for (std::size_t row = n; row < m; ++row) tail += qtb[row] * qtb[row];
  result.residual_norm = std::sqrt(tail);
  return result;
}

double determinant(Matrix a) {
  CCD_CHECK_MSG(a.rows() == a.cols(), "determinant requires a square matrix");
  const std::size_t n = a.rows();
  double det = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < kSingularEps) return 0.0;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      det = -det;
    }
    det *= a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
    }
  }
  return det;
}

}  // namespace ccd::math
