// Polynomials with ascending coefficients: p(x) = c0 + c1 x + c2 x^2 + ...
#pragma once

#include <string>
#include <vector>

namespace ccd::math {

class Polynomial {
 public:
  Polynomial() = default;

  /// Coefficients in ascending order of power; trailing zeros are trimmed.
  explicit Polynomial(std::vector<double> coefficients);

  static Polynomial constant(double c);
  static Polynomial linear(double intercept, double slope);
  static Polynomial quadratic(double c0, double c1, double c2);

  /// Degree; the zero polynomial reports degree 0.
  std::size_t degree() const;

  const std::vector<double>& coefficients() const { return coefficients_; }

  /// coefficient of x^power (0 beyond the stored degree).
  double coefficient(std::size_t power) const;

  /// Horner evaluation.
  double operator()(double x) const;

  Polynomial derivative() const;
  Polynomial antiderivative(double constant = 0.0) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  /// Real roots of degree <= 2 polynomials; throws ccd::MathError for
  /// higher degrees or the zero polynomial.
  std::vector<double> real_roots() const;

  std::string to_string(int precision = 4) const;

 private:
  std::vector<double> coefficients_{0.0};
};

}  // namespace ccd::math
