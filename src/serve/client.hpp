// Client side of the serve protocol: one blocking connection with typed
// helpers over the framed request/response codec. Used by `ccdctl serve`
// / `ccdctl submit` and the serve load bench; embedders can also speak to
// an in-process Engine directly and skip the socket.
//
// Error mapping: a non-ok response rethrows client-side as the matching
// ccd::Error class (throw_status), so `ccdctl` exit codes work unchanged
// over the wire — e.g. a server-side deadline surfaces as
// ccd::CancelledError (exit code 6). The two serve-specific statuses
// (kBackpressure, kShuttingDown) are surfaced on the Response instead of
// thrown where the caller is expected to handle them (advance/ingest/
// call), since retrying is the client's job, not an exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace ccd::serve {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);

  /// Send one request, wait for its response. Throws ccd::DataError on
  /// transport/framing failure. Does NOT throw on error statuses — raw
  /// access for callers that handle backpressure/deadline themselves.
  Response call(const Request& request);

  // Typed helpers. All throw the mapped ccd::Error on error statuses
  // except where documented. `deadline_ms` 0 means no deadline.

  /// Server banner (e.g. "ccd-serve/1").
  std::string ping();

  /// Open (or, with params.allow_existing, attach to) a session.
  SessionStatus open(const std::string& session, const OpenParams& params,
                     std::uint32_t deadline_ms = 0);

  struct AdvanceResult {
    SessionStatus session;
    /// True when the server's deadline expired mid-advance; completed
    /// rounds are retained server-side and the call can be reissued.
    bool deadline_expired = false;
    /// True when the admission queue rejected the request (nothing
    /// happened server-side); retry after a pause.
    bool backpressure = false;
  };
  /// Advance a simulation session by up to `rounds` rounds. Deadline and
  /// backpressure are reported, not thrown; other errors throw.
  AdvanceResult advance(const std::string& session, std::uint64_t rounds,
                        std::uint32_t deadline_ms = 0);

  struct IngestResult {
    SessionStatus session;
    bool redesigned = false;
    bool deadline_expired = false;
    bool backpressure = false;
  };
  /// Feed one observed round into an ingest session.
  IngestResult ingest(const std::string& session,
                      const std::vector<IngestObservation>& observations,
                      std::uint32_t deadline_ms = 0);

  /// Currently posted contracts.
  std::vector<contract::Contract> contracts(const std::string& session,
                                            std::uint32_t deadline_ms = 0);

  SessionStatus status(const std::string& session,
                       std::uint32_t deadline_ms = 0);

  /// Close and forget the session (removes its checkpoint).
  SessionStatus close_session(const std::string& session,
                              std::uint32_t deadline_ms = 0);

  /// Server metrics dump (JSON or Prometheus exposition text).
  std::string metrics(bool prometheus = false);

  /// Ask the daemon to drain and exit.
  void shutdown_server();

 private:
  explicit Client(util::Socket socket);
  Response roundtrip(Request request);

  util::Socket socket_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace ccd::serve
