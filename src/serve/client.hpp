// Client side of the serve protocol: one blocking connection with typed
// helpers over the framed request/response codec. Used by `ccdctl serve`
// / `ccdctl submit` and the serve load bench; embedders can also speak to
// an in-process Engine directly and skip the socket.
//
// Error mapping: a non-ok response rethrows client-side as the matching
// ccd::Error class (throw_status), so `ccdctl` exit codes work unchanged
// over the wire — e.g. a server-side deadline surfaces as
// ccd::CancelledError (exit code 6). The two serve-specific statuses
// (kBackpressure, kShuttingDown) are surfaced on the Response instead of
// thrown where the caller is expected to handle them (advance/ingest/
// call), since retrying is the client's job, not an exception.
//
// Reconnect-and-reattach: the client remembers its dial target, and a
// transport failure (daemon restarted, connection reset, stalled I/O past
// the timeout) redials with exponential backoff and reissues the request,
// up to ClientOptions::max_reconnects times per call. Successful redials
// count in `ccd.serve.client.reconnects`. Semantics are at-least-once: a
// request whose connection died between server execution and the response
// is re-executed after reconnecting. Session ops are designed for this —
// advance is budget-capped (re-advancing a finished session is a no-op),
// open with allow_existing re-attaches — but a retried close can report
// "no open session" when the first close already landed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace ccd::serve {

struct ClientOptions {
  /// Per-transfer deadline on the connection (a stalled server surfaces
  /// as ccd::DataError instead of blocking forever). <= 0 disables.
  int io_timeout_ms = 0;
  /// Redial attempts per call after a transport failure; 0 disables
  /// reconnecting (the first DataError propagates).
  std::size_t max_reconnects = 3;
  /// Exponential redial backoff: first wait, then * multiplier each try.
  double reconnect_backoff_s = 0.05;
  double reconnect_multiplier = 2.0;
  /// Shared secret for the CSRV v3 token handshake, run on every
  /// (re)connect before any other frame. Empty skips the handshake; a
  /// server that requires one then rejects with Status::kAuth, which the
  /// typed helpers surface as ccd::AuthError (ccdctl exit code 7).
  std::string auth_token;
};

class Client {
 public:
  static Client connect_unix(const std::string& path,
                             ClientOptions options = {});
  static Client connect_tcp(const std::string& host, int port,
                            ClientOptions options = {});

  /// Send one request, wait for its response, transparently reconnecting
  /// per ClientOptions. Throws ccd::DataError once transport/framing
  /// failures exhaust the redial budget. Does NOT throw on error statuses
  /// — raw access for callers that handle backpressure/deadline
  /// themselves.
  Response call(const Request& request);

  // Typed helpers. All throw the mapped ccd::Error on error statuses
  // except where documented. `deadline_ms` 0 means no deadline.

  /// Server banner (e.g. "ccd-serve/1").
  std::string ping();

  /// Open (or, with params.allow_existing, attach to) a session.
  SessionStatus open(const std::string& session, const OpenParams& params,
                     std::uint32_t deadline_ms = 0);

  struct AdvanceResult {
    SessionStatus session;
    /// True when the server's deadline expired mid-advance; completed
    /// rounds are retained server-side and the call can be reissued.
    bool deadline_expired = false;
    /// True when the admission queue rejected the request (nothing
    /// happened server-side); retry after a pause.
    bool backpressure = false;
    /// True when the gateway had no alive shard to route to (nothing
    /// happened server-side); retry once a shard rejoins.
    bool unavailable = false;
  };
  /// Advance a simulation session by up to `rounds` rounds. Deadline and
  /// backpressure are reported, not thrown; other errors throw.
  AdvanceResult advance(const std::string& session, std::uint64_t rounds,
                        std::uint32_t deadline_ms = 0);

  struct IngestResult {
    SessionStatus session;
    bool redesigned = false;
    bool deadline_expired = false;
    bool backpressure = false;
    bool unavailable = false;
  };
  /// Feed one observed round into an ingest session.
  IngestResult ingest(const std::string& session,
                      const std::vector<IngestObservation>& observations,
                      std::uint32_t deadline_ms = 0);

  /// Currently posted contracts.
  std::vector<contract::Contract> contracts(const std::string& session,
                                            std::uint32_t deadline_ms = 0);

  SessionStatus status(const std::string& session,
                       std::uint32_t deadline_ms = 0);

  /// Close and forget the session (removes its checkpoint).
  SessionStatus close_session(const std::string& session,
                              std::uint32_t deadline_ms = 0);

  /// Server metrics dump (JSON or Prometheus exposition text).
  std::string metrics(bool prometheus = false);

  /// Load/liveness snapshot (kHealth).
  HealthInfo health();

  /// Install a session from raw checkpoint-frame bytes (kRestore) — the
  /// gateway handoff path. Idempotent on the server side.
  SessionStatus restore(const std::string& session,
                        const std::string& checkpoint_blob,
                        std::uint32_t deadline_ms = 0);

  /// Ask the daemon to drain and exit.
  void shutdown_server();

  // Gateway membership admin (kJoin / kRetire). Return the gateway's
  // summary text ("ring_version=... sessions_moved=..."); errors throw
  // (an admin race — unknown retire target, name conflict — surfaces as
  // the retryable ccd::Error mapped from Status::kUnavailable).

  /// Admit (or rejoin) a shard into a gateway's ring at runtime.
  std::string join_shard(const ShardTarget& shard);
  /// Retire a shard by name (graceful leave; idempotent).
  std::string retire_shard(const std::string& name);

 private:
  struct Target {
    bool unix_domain = true;
    std::string path_or_host;
    int port = -1;
  };

  Client(util::Socket socket, Target target, ClientOptions options);
  Response roundtrip(Request request);
  util::Socket dial() const;

  util::Socket socket_;
  Target target_;
  ClientOptions options_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace ccd::serve
