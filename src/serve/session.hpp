// One long-lived campaign session — the serving unit of the paper's
// repeated principal-agent loop (contracts for round t are a function of
// round t−1 feedback, Eq. 4/5).
//
// Two modes share the lifecycle:
//  * Simulation sessions own a core::StackelbergSimulator and advance it
//    round-by-round on request. Determinism contract: driving a session
//    for T rounds over any number of requests leaves contracts bitwise-
//    identical to one StackelbergSimulator::run of T rounds on the same
//    seed (tested end-to-end over the socket).
//  * Ingest sessions are fed observed per-round feedback
//    (effort, feedback, accuracy sample) per worker. The session keeps
//    EMA estimates of accuracy/maliciousness exactly like the simulator's
//    requester, accumulates a bounded sliding window of effort samples,
//    re-fits each worker's effort curve (effort::fit_effort_function)
//    every `refit_every` rounds, and re-designs all contracts through the
//    engine-shared contract::DesignCache on util::shared_pool().
//
// Durability: when a checkpoint directory is configured every completed
// round snapshots crash-safely. Simulation sessions reuse core/checkpoint
// verbatim (SimConfig::checkpoint_path pointed into the directory, frame
// tag "SCKP"); ingest sessions serialize their own state under frame tag
// "ISES" with the same util/wire + util/atomic_file primitives. A killed
// daemon restores every open session bitwise-identically from these files.
//
// Thread safety: none here — the engine serializes operations per session
// via mutex() while allowing different sessions to proceed in parallel.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/stackelberg.hpp"
#include "data/metrics.hpp"
#include "serve/protocol.hpp"

namespace ccd::contract {
class DesignCache;
}

namespace ccd::serve {

/// True when `id` is usable as a session name (and thus a checkpoint file
/// stem): 1..64 chars from [A-Za-z0-9_-].
bool valid_session_id(const std::string& id);

class Session {
 public:
  /// Engine-provided environment shared by all sessions.
  struct Env {
    /// Directory for per-session checkpoint files; empty disables
    /// durability.
    std::string checkpoint_dir;
    /// Snapshot cadence in completed rounds (>= 1).
    std::size_t checkpoint_every = 1;
    /// Engine-shared design cache for ingest-mode redesigns (may be null:
    /// each redesign then uses a private cache).
    contract::DesignCache* cache = nullptr;
  };

  /// Open a fresh session. Throws ccd::ConfigError on bad id or params.
  Session(std::string id, const OpenParams& params, Env env);
  ~Session();  // out-of-line: IngestState is incomplete here

  /// Restore a session from its checkpoint file (either mode; the mode is
  /// recovered from the frame tag). Throws ccd::DataError on corruption.
  static std::unique_ptr<Session> restore(const std::string& id,
                                          const std::string& path, Env env);

  /// Restore a session from an in-memory checkpoint-frame image (the exact
  /// bytes of a .sim.ckpt / .ingest.ckpt file) — the gateway's failover
  /// handoff path: checkpoints travel over the wire, never through a
  /// shared filesystem. The mode is recovered from the frame tag. Throws
  /// ccd::DataError on corruption.
  static std::unique_ptr<Session> restore_blob(const std::string& id,
                                               const std::string& blob,
                                               Env env);

  /// Checkpoint-file suffix for `mode` (".sim.ckpt" / ".ingest.ckpt") —
  /// how gateways and engines recognize session checkpoints on disk.
  static const char* checkpoint_suffix(SessionMode mode);

  const std::string& id() const { return id_; }
  SessionMode mode() const { return mode_; }
  SessionStatus status() const;

  /// Advance a simulation session by up to `rounds` rounds. Throws
  /// ccd::ConfigError on an ingest session.
  core::StepStatus advance(std::size_t rounds,
                           const util::CancellationToken* cancel);

  /// Ingest one observed round (one observation per worker) into an
  /// ingest session; returns true when a redesign ran. A cancelled
  /// redesign leaves the previous contracts posted and reports via
  /// `cancel`. Throws ccd::ConfigError on a simulation session or a
  /// wrong-sized observation vector.
  bool ingest(const std::vector<IngestObservation>& observations,
              const util::CancellationToken* cancel);

  /// Currently posted contracts (zero contracts before the first design).
  std::vector<contract::Contract> contracts() const;

  /// Force a snapshot now (no-op without a checkpoint directory).
  void checkpoint() const;
  /// Delete the session's checkpoint file (on close; no-op when absent).
  void remove_checkpoint() const;
  /// Path of this session's checkpoint file ("" without a directory).
  std::string checkpoint_path() const;

  /// Per-session operation lock (held by the engine around every op).
  std::mutex& mutex() { return mutex_; }

  /// Record a use now (engine calls this on every session-scoped op);
  /// feeds the idle-TTL eviction clock.
  void touch() {
    last_used_.store(std::chrono::steady_clock::now().time_since_epoch().count(),
                     std::memory_order_relaxed);
  }

  /// Time since the last touch() (or construction).
  std::chrono::nanoseconds idle_for() const {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::nanoseconds(
        now.count() - last_used_.load(std::memory_order_relaxed));
  }

 private:
  struct IngestState;

  Session(std::string id, Env env, SessionMode mode);
  void ingest_checkpoint() const;
  void ingest_refit();
  void ingest_redesign(const util::CancellationToken* cancel);
  bool ingest_post(const util::CancellationToken* cancel);
  static std::unique_ptr<IngestState> decode_ingest_payload(
      const std::string& payload, std::uint32_t version);

  std::string id_;
  Env env_;
  SessionMode mode_;
  std::mutex mutex_;
  std::atomic<std::chrono::steady_clock::duration::rep> last_used_{
      std::chrono::steady_clock::now().time_since_epoch().count()};

  // kSimulation
  std::unique_ptr<core::StackelbergSimulator> sim_;

  // kIngest
  std::unique_ptr<IngestState> ingest_;
};

}  // namespace ccd::serve
