// Wire protocol of the ccd serving layer (`ccdd` daemon + serve::Client).
//
// Every message — request or response — is one frame: the 28-byte "CCDF"
// header from util/wire.hpp under tag "CSRV" (version kProtocolVersion,
// FNV-1a payload checksum), followed by a util::wire byte payload. The
// framing is byte-identical to the on-disk framed-file format, so a
// message captured off the wire validates with the same code path as a
// checkpoint file, and corruption anywhere surfaces as ccd::DataError
// before any field is decoded.
//
// The protocol is session-oriented, mirroring the paper's repeated
// principal-agent structure: a requester opens a campaign session, streams
// round activity into it (advance for simulated rounds, ingest for
// observed per-round feedback), fetches the currently posted contracts,
// and closes. Requests carry a client-chosen request_id (echoed verbatim)
// and an optional deadline in milliseconds that the engine maps onto a
// util::CancellationToken.
//
// Responses always carry a Status. kOk..kDeadline mirror ccd::ErrorCode
// (so a client can rethrow the exact error class); kBackpressure is the
// explicit overload signal — the admission queue was full, nothing was
// enqueued, retry later; kShuttingDown means the daemon is draining.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "contract/contract.hpp"
#include "util/error.hpp"

namespace ccd::util {
class Socket;
}

namespace ccd::serve {

inline constexpr const char* kFrameTag = "CSRV";
/// v2: adds restore (checkpoint handoff) and health ops plus the
/// checkpoint_blob / HealthInfo fields carrying them.
inline constexpr std::uint32_t kProtocolVersion = 2;
/// Hard cap on a single message payload; a header announcing more is
/// rejected before any allocation (garbage/torn streams, never OOM).
inline constexpr std::uint64_t kMaxMessageBytes = 16ull << 20;

enum class Op : std::uint8_t {
  kPing = 0,
  kOpen = 1,
  kAdvance = 2,
  kIngest = 3,
  kContracts = 4,
  kStatus = 5,
  kClose = 6,
  kMetrics = 7,
  kShutdown = 8,
  /// Install a session from raw checkpoint-frame bytes (SCKP/ISES) carried
  /// in Request::checkpoint_blob — the gateway's failover handoff path.
  /// Idempotent: restoring an id that is already open returns its status.
  kRestore = 9,
  /// Lightweight load/liveness probe; the response carries HealthInfo.
  kHealth = 10,
};

const char* to_string(Op op);

enum class Status : std::uint8_t {
  kOk = 0,
  // 1..6 mirror ccd::ErrorCode — see util/error.hpp.
  kGenericError = 1,
  kConfigError = 2,
  kDataError = 3,
  kMathError = 4,
  kContractError = 5,
  kDeadline = 6,
  /// Admission queue full: the request was NOT enqueued. Explicit
  /// backpressure — the client owns the retry.
  kBackpressure = 7,
  /// The engine is draining; no new work is admitted.
  kShuttingDown = 8,
};

const char* to_string(Status status);
inline bool is_error(Status status) { return status != Status::kOk; }

/// Status for an error escaping a handler (ErrorCode -> matching Status).
Status status_for(const ccd::Error& error);

/// Rethrow a non-ok response client-side as the matching ccd::Error class
/// (kBackpressure / kShuttingDown map to ccd::Error with kGeneric).
[[noreturn]] void throw_status(Status status, const std::string& message);

/// Session kind: simulation sessions run the Stackelberg physics
/// server-side (seeded, bitwise-reproducible); ingest sessions are fed
/// observed per-round feedback and re-fit/re-design from it.
enum class SessionMode : std::uint8_t {
  kSimulation = 0,
  kIngest = 1,
};

struct OpenParams {
  SessionMode mode = SessionMode::kSimulation;
  /// Round budget (simulation: total rounds; ingest: unlimited when 0).
  std::uint64_t rounds = 40;
  std::uint64_t workers = 6;
  std::uint64_t malicious = 2;  ///< simulation fleet only
  std::uint64_t seed = 1;       ///< simulation only
  double mu = 1.0;
  /// Ingest mode: re-fit effort curves and re-design contracts every this
  /// many ingested rounds.
  std::uint64_t refit_every = 4;
  double ema_alpha = 0.3;
  /// Opening an already-open session returns its status instead of a
  /// config error (idempotent `ccdctl submit`).
  bool allow_existing = false;
};

/// One worker's observed round in an ingest session.
struct IngestObservation {
  double effort = 0.0;
  double feedback = 0.0;
  /// Observed |score - consensus| sample feeding the EMA estimates.
  double accuracy_sample = 0.0;
};

struct Request {
  Op op = Op::kPing;
  std::uint64_t request_id = 0;
  std::string session;  ///< empty for server-wide ops (ping/metrics/shutdown)
  /// Wall-clock budget including queue wait; 0 = none.
  std::uint32_t deadline_ms = 0;
  OpenParams open;                                ///< kOpen
  std::uint64_t advance_rounds = 1;               ///< kAdvance
  std::vector<IngestObservation> observations;    ///< kIngest
  bool metrics_prometheus = false;                ///< kMetrics format
  /// kRestore: raw framed checkpoint bytes (a .sim.ckpt / .ingest.ckpt
  /// file image); the engine decodes the frame tag to pick the mode.
  std::string checkpoint_blob;
};

struct SessionStatus {
  std::uint64_t next_round = 0;  ///< completed rounds == next round index
  std::uint64_t rounds = 0;      ///< configured budget (0 = unbounded ingest)
  std::uint64_t workers = 0;
  double cumulative_requester_utility = 0.0;
  bool finished = false;
};

/// Snapshot of engine load for kHealth — what a gateway needs to route and
/// to notice a shard drowning or draining.
struct HealthInfo {
  std::uint64_t sessions_open = 0;
  std::uint64_t max_sessions = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  bool draining = false;
};

struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::string message;  ///< error text; empty when ok
  /// Filled for session-scoped ops (open/advance/ingest/status/close).
  SessionStatus session;
  std::vector<contract::Contract> contracts;  ///< kContracts
  std::string text;                           ///< kPing banner / kMetrics dump
  bool redesigned = false;                    ///< kIngest: redesign ran
  HealthInfo health;                          ///< kHealth
};

/// Payload codecs (the bytes inside the frame). Decoders throw
/// ccd::DataError on malformed input.
std::string encode_request(const Request& request);
Request decode_request(const std::string& payload);
std::string encode_response(const Response& response);
Response decode_response(const std::string& payload);

/// Framed message transport: header + checksummed payload, one frame per
/// message. recv_message returns nullopt on a clean peer close between
/// messages and throws ccd::DataError on corruption or mid-frame EOF.
///
/// The deadline variants bound how long a stalled peer can pin the caller:
/// `idle_timeout_ms` caps the wait for a frame header (how long between
/// messages), `io_timeout_ms` caps each transfer once a frame has started
/// (header bytes mid-read, payload, or an outbound frame). Expiry throws
/// ccd::DataError; <= 0 disables that deadline. Both carry deterministic
/// fault-injection sites `serve.frame_write` / `serve.frame_read` keyed by
/// the frame checksum.
void send_message(util::Socket& socket, const std::string& payload,
                  int io_timeout_ms = 0);
std::optional<std::string> recv_message(util::Socket& socket,
                                        int idle_timeout_ms = 0,
                                        int io_timeout_ms = 0);

}  // namespace ccd::serve
