// Wire protocol of the ccd serving layer (`ccdd` daemon + serve::Client).
//
// Every message — request or response — is one frame: the 28-byte "CCDF"
// header from util/wire.hpp under tag "CSRV" (version kProtocolVersion,
// FNV-1a payload checksum), followed by a util::wire byte payload. The
// framing is byte-identical to the on-disk framed-file format, so a
// message captured off the wire validates with the same code path as a
// checkpoint file, and corruption anywhere surfaces as ccd::DataError
// before any field is decoded.
//
// The protocol is session-oriented, mirroring the paper's repeated
// principal-agent structure: a requester opens a campaign session, streams
// round activity into it (advance for simulated rounds, ingest for
// observed per-round feedback), fetches the currently posted contracts,
// and closes. Requests carry a client-chosen request_id (echoed verbatim)
// and an optional deadline in milliseconds that the engine maps onto a
// util::CancellationToken.
//
// Responses always carry a Status. kOk..kDeadline mirror ccd::ErrorCode
// (so a client can rethrow the exact error class); kBackpressure is the
// explicit overload signal — the admission queue was full, nothing was
// enqueued, retry later; kShuttingDown means the daemon is draining.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "contract/contract.hpp"
#include "policy/policy.hpp"
#include "util/error.hpp"

namespace ccd::util {
class Socket;
}

namespace ccd::serve {

inline constexpr const char* kFrameTag = "CSRV";
/// v2 added restore (checkpoint handoff) and health ops. v3 adds the
/// token handshake (kAuth + Status::kAuth), dynamic membership admin ops
/// (kJoin / kRetire), the rebalance primitives (kExport / kListSessions),
/// and the retryable Status::kUnavailable. v4 adds the contract-designer
/// policy backend selector to OpenParams (ccd::policy — BiP / zooming
/// bandit / posted-price).
inline constexpr std::uint32_t kProtocolVersion = 4;
/// Hard cap on a single message payload; a header announcing more is
/// rejected before any allocation (garbage/torn streams, never OOM).
inline constexpr std::uint64_t kMaxMessageBytes = 16ull << 20;

enum class Op : std::uint8_t {
  kPing = 0,
  kOpen = 1,
  kAdvance = 2,
  kIngest = 3,
  kContracts = 4,
  kStatus = 5,
  kClose = 6,
  kMetrics = 7,
  kShutdown = 8,
  /// Install a session from raw checkpoint-frame bytes (SCKP/ISES) carried
  /// in Request::checkpoint_blob — the gateway's failover handoff path.
  /// Idempotent: restoring an id that is already open returns its status.
  kRestore = 9,
  /// Lightweight load/liveness probe; the response carries HealthInfo.
  kHealth = 10,
  /// Token handshake (v3). First kAuth with an empty proof is a challenge
  /// request — the response carries a per-connection nonce in `text`
  /// (empty when the server has no token configured). Second kAuth carries
  /// hex(HMAC-SHA256(token, nonce)) in Request::auth_proof. A wrong or
  /// replayed proof gets Status::kAuth and the connection is closed.
  kAuth = 11,
  /// Gateway admin (v3): admit a shard described by Request::shard into
  /// the ring at runtime (join, or rejoin of a retired name). Rebalances
  /// by moving only sessions whose ring owner changed.
  kJoin = 12,
  /// Gateway admin (v3): drain a live shard out of the ring by name
  /// (Request::shard.name). Idempotent; unknown names are a race
  /// (Status::kUnavailable), not a config error.
  kRetire = 13,
  /// Checkpoint a session, remove it from this shard, and return the raw
  /// framed checkpoint bytes in Response::checkpoint_blob — the rebalance
  /// counterpart of kRestore. Works on idle-evicted sessions too.
  kExport = 14,
  /// List the session ids this shard holds (in memory or idle-evicted to
  /// its checkpoint dir) in Response::session_ids.
  kListSessions = 15,
};

const char* to_string(Op op);

enum class Status : std::uint8_t {
  kOk = 0,
  // 1..6 mirror ccd::ErrorCode — see util/error.hpp.
  kGenericError = 1,
  kConfigError = 2,
  kDataError = 3,
  kMathError = 4,
  kContractError = 5,
  kDeadline = 6,
  /// Admission queue full: the request was NOT enqueued. Explicit
  /// backpressure — the client owns the retry.
  kBackpressure = 7,
  /// The engine is draining; no new work is admitted.
  kShuttingDown = 8,
  /// Transient routing outage (no alive shard, or an admin op raced a
  /// membership change). Retryable — clients back off like backpressure
  /// instead of failing with a config error.
  kUnavailable = 9,
  /// Authentication required/failed; the server closes the connection.
  /// Maps to ccd::AuthError (ccdctl exit code 7). Not retryable.
  kAuth = 10,
};

const char* to_string(Status status);
inline bool is_error(Status status) { return status != Status::kOk; }

/// Statuses a client should back off and retry rather than fail on:
/// explicit backpressure and transient membership outages.
inline bool is_retryable(Status status) {
  return status == Status::kBackpressure || status == Status::kUnavailable;
}

/// Status for an error escaping a handler (ErrorCode -> matching Status).
Status status_for(const ccd::Error& error);

/// Rethrow a non-ok response client-side as the matching ccd::Error class
/// (kBackpressure / kShuttingDown map to ccd::Error with kGeneric).
[[noreturn]] void throw_status(Status status, const std::string& message);

/// Session kind: simulation sessions run the Stackelberg physics
/// server-side (seeded, bitwise-reproducible); ingest sessions are fed
/// observed per-round feedback and re-fit/re-design from it.
enum class SessionMode : std::uint8_t {
  kSimulation = 0,
  kIngest = 1,
};

struct OpenParams {
  SessionMode mode = SessionMode::kSimulation;
  /// Round budget (simulation: total rounds; ingest: unlimited when 0).
  std::uint64_t rounds = 40;
  std::uint64_t workers = 6;
  std::uint64_t malicious = 2;  ///< simulation fleet only
  std::uint64_t seed = 1;  ///< simulation fleet; also the learner RNG seed
  double mu = 1.0;
  /// Ingest mode: re-fit effort curves and re-design contracts every this
  /// many ingested rounds.
  std::uint64_t refit_every = 4;
  double ema_alpha = 0.3;
  /// Opening an already-open session returns its status instead of a
  /// config error (idempotent `ccdctl submit`).
  bool allow_existing = false;
  /// Contract-designer backend (v4): the paper's BiP, or one of the online
  /// learners (see policy/policy.hpp). Applies to both modes; learner
  /// state rides the session's checkpoint frames.
  policy::Kind policy = policy::Kind::kBip;
};

/// One worker's observed round in an ingest session.
struct IngestObservation {
  double effort = 0.0;
  double feedback = 0.0;
  /// Observed |score - consensus| sample feeding the EMA estimates.
  double accuracy_sample = 0.0;
};

/// Wire description of a shard endpoint for the kJoin admin op (kRetire
/// uses only `name`). Mirrors serve::ShardSpec, which owns validation.
struct ShardTarget {
  std::string name;
  std::string unix_socket;           ///< non-empty: Unix-domain transport
  std::string host = "127.0.0.1";    ///< TCP transport when tcp_port >= 0
  std::int32_t tcp_port = -1;
  std::string checkpoint_dir;        ///< scavenged on shard death
};

struct Request {
  Op op = Op::kPing;
  std::uint64_t request_id = 0;
  std::string session;  ///< empty for server-wide ops (ping/metrics/shutdown)
  /// Wall-clock budget including queue wait; 0 = none.
  std::uint32_t deadline_ms = 0;
  OpenParams open;                                ///< kOpen
  std::uint64_t advance_rounds = 1;               ///< kAdvance
  std::vector<IngestObservation> observations;    ///< kIngest
  bool metrics_prometheus = false;                ///< kMetrics format
  /// kRestore: raw framed checkpoint bytes (a .sim.ckpt / .ingest.ckpt
  /// file image); the engine decodes the frame tag to pick the mode.
  std::string checkpoint_blob;
  /// kAuth: hex(HMAC-SHA256(token, nonce)); empty requests a challenge.
  std::string auth_proof;
  ShardTarget shard;                              ///< kJoin / kRetire
};

struct SessionStatus {
  std::uint64_t next_round = 0;  ///< completed rounds == next round index
  std::uint64_t rounds = 0;      ///< configured budget (0 = unbounded ingest)
  std::uint64_t workers = 0;
  double cumulative_requester_utility = 0.0;
  bool finished = false;
};

/// Snapshot of engine load for kHealth — what a gateway needs to route and
/// to notice a shard drowning or draining.
struct HealthInfo {
  std::uint64_t sessions_open = 0;
  std::uint64_t max_sessions = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  bool draining = false;
};

struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::string message;  ///< error text; empty when ok
  /// Filled for session-scoped ops (open/advance/ingest/status/close).
  SessionStatus session;
  std::vector<contract::Contract> contracts;  ///< kContracts
  std::string text;  ///< kPing banner / kMetrics dump / kAuth nonce
  bool redesigned = false;                    ///< kIngest: redesign ran
  HealthInfo health;                          ///< kHealth
  std::string checkpoint_blob;                ///< kExport
  std::vector<std::string> session_ids;       ///< kListSessions
};

/// Payload codecs (the bytes inside the frame). Decoders throw
/// ccd::DataError on malformed input.
std::string encode_request(const Request& request);
Request decode_request(const std::string& payload);
std::string encode_response(const Response& response);
Response decode_response(const std::string& payload);

/// Framed message transport: header + checksummed payload, one frame per
/// message. recv_message returns nullopt on a clean peer close between
/// messages and throws ccd::DataError on corruption or mid-frame EOF.
///
/// The deadline variants bound how long a stalled peer can pin the caller:
/// `idle_timeout_ms` caps the wait for a frame header (how long between
/// messages), `io_timeout_ms` caps each transfer once a frame has started
/// (header bytes mid-read, payload, or an outbound frame). Expiry throws
/// ccd::DataError; <= 0 disables that deadline. Both carry deterministic
/// fault-injection sites `serve.frame_write` / `serve.frame_read` keyed by
/// the frame checksum.
void send_message(util::Socket& socket, const std::string& payload,
                  int io_timeout_ms = 0);
std::optional<std::string> recv_message(util::Socket& socket,
                                        int idle_timeout_ms = 0,
                                        int io_timeout_ms = 0);

/// Per-connection server-side state for the v3 token handshake. A server
/// thread creates one per accepted connection:
///
///   AuthGate gate;
///   gate.token = config.auth_token;
///   gate.require = !gate.token.empty() &&
///                  (config.require_auth || !socket.peer_is_loopback());
///
/// and routes every decoded request through auth_intercept() before its
/// normal dispatch.
struct AuthGate {
  std::string token;          ///< shared secret; empty = auth not configured
  bool require = false;       ///< this connection must authenticate
  bool authenticated = false;
  std::string nonce;          ///< outstanding challenge, one proof attempt
};

/// Handle the handshake + enforcement for one request. Returns the
/// response to send when the gate consumes the request (any Op::kAuth, or
/// a rejected unauthenticated request); nullopt means the request may
/// proceed to normal dispatch. Sets `close_connection` when the server
/// must drop the connection after responding (failed or replayed proof,
/// unauthenticated request on a requiring connection).
std::optional<Response> auth_intercept(AuthGate& gate, const Request& request,
                                       bool& close_connection);

/// Client side of the handshake, run once per (re)connect before any other
/// frame. No-op when `token` is empty or the server has no token
/// configured. Throws ccd::AuthError when the server rejects the proof.
void client_handshake(util::Socket& socket, const std::string& token,
                      int io_timeout_ms);

}  // namespace ccd::serve
