#include "serve/engine.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace ccd::serve {

namespace metrics = util::metrics;

namespace {

/// All `ccd.serve.*` instruments, registered once. The reconciliation
/// invariant (tested): submitted == responses + in-flight, and
/// responses == admitted-and-answered + backpressure + shutdown
/// rejections — a client can account for every request it ever sent.
struct ServeMetrics {
  metrics::Counter& submitted;
  metrics::Counter& responses;
  metrics::Counter& backpressure;
  metrics::Counter& shutdown_rejected;
  metrics::Counter& errors;
  metrics::Counter& deadline_expired;
  metrics::Counter& rounds;
  metrics::Counter& sessions_opened;
  metrics::Counter& sessions_closed;
  metrics::Counter& sessions_resumed;
  metrics::Counter& sessions_restored;
  metrics::Counter& sessions_exported;
  metrics::Counter& sessions_evicted;
  metrics::Counter& sessions_reloaded;
  metrics::Counter& resume_skipped;
  metrics::Gauge& queue_depth;
  metrics::Gauge& sessions_open;
  metrics::Histogram& queue_wait_us;
  metrics::Histogram& request_us;

  static ServeMetrics& instance() {
    static ServeMetrics m = [] {
      metrics::MetricsRegistry& reg = metrics::registry();
      return ServeMetrics{reg.counter("ccd.serve.submitted"),
                          reg.counter("ccd.serve.responses"),
                          reg.counter("ccd.serve.backpressure"),
                          reg.counter("ccd.serve.shutdown_rejected"),
                          reg.counter("ccd.serve.errors"),
                          reg.counter("ccd.serve.deadline_expired"),
                          reg.counter("ccd.serve.rounds"),
                          reg.counter("ccd.serve.sessions_opened"),
                          reg.counter("ccd.serve.sessions_closed"),
                          reg.counter("ccd.serve.sessions_resumed"),
                          reg.counter("ccd.serve.sessions_restored"),
                          reg.counter("ccd.serve.sessions_exported"),
                          reg.counter("ccd.serve.sessions_evicted"),
                          reg.counter("ccd.serve.sessions_reloaded"),
                          reg.counter("ccd.serve.resume_skipped"),
                          reg.gauge("ccd.serve.queue_depth"),
                          reg.gauge("ccd.serve.sessions_open"),
                          reg.histogram("ccd.serve.queue_wait_us"),
                          reg.histogram("ccd.serve.request_us")};
    }();
    return m;
  }
};

bool strip_suffix(const std::string& name, const std::string& suffix,
                  std::string* stem) {
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  *stem = name.substr(0, name.size() - suffix.size());
  return true;
}

}  // namespace

void EngineConfig::validate() const {
  CCD_CHECK_MSG(worker_threads >= 1, "engine needs at least one executor");
  CCD_CHECK_MSG(queue_capacity >= 1, "admission queue capacity must be >= 1");
  CCD_CHECK_MSG(max_sessions >= 1, "max_sessions must be >= 1");
  CCD_CHECK_MSG(checkpoint_every >= 1, "checkpoint_every must be >= 1");
  CCD_CHECK_MSG(idle_ttl_ms == 0 || !checkpoint_dir.empty(),
                "idle_ttl_ms requires a checkpoint_dir (evicting without "
                "durability would discard campaign state)");
}

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  config_.validate();
  ServeMetrics::instance();  // register instruments eagerly
  executors_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
  if (config_.idle_ttl_ms > 0) {
    reaper_ = std::thread([this] { reaper_loop(); });
  }
}

Engine::~Engine() { stop(); }

Session::Env Engine::session_env() {
  Session::Env env;
  env.checkpoint_dir = config_.checkpoint_dir;
  env.checkpoint_every = config_.checkpoint_every;
  env.cache = &cache_;
  return env;
}

ResumeReport Engine::resume_sessions() {
  ResumeReport report;
  if (config_.checkpoint_dir.empty()) return report;
  DIR* dir = opendir(config_.checkpoint_dir.c_str());
  if (dir == nullptr) {
    throw ConfigError("cannot open checkpoint directory '" +
                      config_.checkpoint_dir + "'");
  }
  std::vector<std::pair<std::string, std::string>> found;  // id, path
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    std::string stem;
    if (strip_suffix(name, ".sim.ckpt", &stem) ||
        strip_suffix(name, ".ingest.ckpt", &stem)) {
      found.emplace_back(stem, config_.checkpoint_dir + "/" + name);
    }
  }
  closedir(dir);
  // Deterministic restore order (readdir order is filesystem-dependent).
  std::sort(found.begin(), found.end());

  for (const auto& [id, path] : found) {
    try {
      std::unique_ptr<Session> session =
          Session::restore(id, path, session_env());
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      if (sessions_.count(id) != 0) {
        throw DataError("duplicate checkpoints for session '" + id + "'");
      }
      sessions_.emplace(id, std::shared_ptr<Session>(std::move(session)));
      ServeMetrics::instance().sessions_resumed.add(1);
      ServeMetrics::instance().sessions_open.set(
          static_cast<double>(sessions_.size()));
      ++report.restored;
    } catch (const DataError& e) {
      // One corrupt/truncated/ambiguous checkpoint must not block every
      // other campaign from resuming: record it and move on.
      report.skipped.push_back({id, path, e.what()});
      ServeMetrics::instance().resume_skipped.add(1);
    }
  }
  return report;
}

bool Engine::submit(Request request, std::function<void(Response)> done) {
  ServeMetrics& m = ServeMetrics::instance();
  m.submitted.add(1);

  Job job;
  job.request = std::move(request);
  job.done = std::move(done);
  if (job.request.deadline_ms > 0) {
    job.token.set_deadline(util::Deadline::after(
        static_cast<double>(job.request.deadline_ms) / 1000.0));
  }
  job.admitted_at = std::chrono::steady_clock::now();

  bool draining;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining = stopping_;
    if (!stopping_ && queue_.size() < config_.queue_capacity) {
      queue_.push_back(std::move(job));
      m.queue_depth.set(static_cast<double>(queue_.size()));
      queue_cv_.notify_one();
      return true;
    }
  }

  // Rejected — answer immediately, nothing was enqueued.
  Response response;
  response.request_id = job.request.request_id;
  if (draining || shutdown_requested_.load(std::memory_order_relaxed)) {
    response.status = Status::kShuttingDown;
    response.message = "engine is draining; no new work admitted";
    m.shutdown_rejected.add(1);
  } else {
    response.status = Status::kBackpressure;
    response.message = "admission queue full (capacity " +
                       std::to_string(config_.queue_capacity) + "); retry";
    m.backpressure.add(1);
  }
  m.responses.add(1);
  job.done(std::move(response));
  return false;
}

Response Engine::call(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  submit(std::move(request),
         [&promise](Response r) { promise.set_value(std::move(r)); });
  return future.get();
}

void Engine::executor_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ServeMetrics::instance().queue_depth.set(
          static_cast<double>(queue_.size()));
    }

    ServeMetrics& m = ServeMetrics::instance();
    const auto start = std::chrono::steady_clock::now();
    m.queue_wait_us.record(
        std::chrono::duration<double, std::micro>(start - job.admitted_at)
            .count());

    Response response;
    if (job.token.poll()) {
      // The whole budget burned in the queue: answer without touching the
      // session.
      response.request_id = job.request.request_id;
      response.status = Status::kDeadline;
      response.message = "deadline expired while queued";
      m.deadline_expired.add(1);
    } else {
      try {
        response = handle(job.request, job.token);
      } catch (const ccd::Error& e) {
        response = Response{};
        response.request_id = job.request.request_id;
        response.status = status_for(e);
        response.message = e.what();
      }
      if (response.status == Status::kDeadline) m.deadline_expired.add(1);
      if (is_error(response.status)) m.errors.add(1);
    }

    m.request_us.record(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    finish(job, std::move(response));
  }
}

void Engine::finish(Job& job, Response response) {
  ServeMetrics::instance().responses.add(1);
  job.done(std::move(response));
}

std::shared_ptr<Session> Engine::reload_locked(const std::string& id) {
  if (config_.checkpoint_dir.empty() || !valid_session_id(id)) return nullptr;
  for (const SessionMode mode :
       {SessionMode::kSimulation, SessionMode::kIngest}) {
    const std::string path =
        config_.checkpoint_dir + "/" + id + Session::checkpoint_suffix(mode);
    if (::access(path.c_str(), F_OK) != 0) continue;
    if (sessions_.size() >= config_.max_sessions) {
      throw ConfigError("session limit reached (" +
                        std::to_string(config_.max_sessions) +
                        "); cannot reload evicted session '" + id + "'");
    }
    // Corruption surfaces as DataError to the caller — an existing file
    // means the session logically exists, so "no open session" would lie.
    std::shared_ptr<Session> session = Session::restore(id, path,
                                                        session_env());
    sessions_.emplace(id, session);
    ServeMetrics::instance().sessions_reloaded.add(1);
    ServeMetrics::instance().sessions_open.set(
        static_cast<double>(sessions_.size()));
    return session;
  }
  return nullptr;
}

std::shared_ptr<Session> Engine::find_session(const std::string& id) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    it->second->touch();
    return it->second;
  }
  // Evicted-but-checkpointed sessions transparently resurrect: eviction
  // frees the slot, not the campaign.
  std::shared_ptr<Session> reloaded = reload_locked(id);
  if (reloaded != nullptr) {
    reloaded->touch();
    return reloaded;
  }
  throw ConfigError("no open session '" + id + "'");
}

Response Engine::handle(const Request& request,
                        const util::CancellationToken& token) {
  Response response;
  response.request_id = request.request_id;

  switch (request.op) {
    case Op::kPing:
      response.text = "ccd-serve/" + std::to_string(kProtocolVersion);
      return response;

    case Op::kMetrics:
      response.text = request.metrics_prometheus ? metrics::to_prometheus()
                                                 : metrics::to_json();
      return response;

    case Op::kShutdown:
      shutdown_requested_.store(true, std::memory_order_relaxed);
      response.text = "draining";
      return response;

    case Op::kOpen:
      return handle_open(request);

    case Op::kClose:
      return handle_close(request);

    case Op::kRestore:
      return handle_restore(request);

    case Op::kHealth:
      return handle_health(request);

    case Op::kExport:
      return handle_export(request);

    case Op::kListSessions:
      return handle_list(request);

    case Op::kAuth:
    case Op::kJoin:
    case Op::kRetire:
      // Connection-level (auth) and gateway-level (membership) ops never
      // reach the engine; a server without a gateway reports them cleanly.
      throw ConfigError(std::string("op '") + serve::to_string(request.op) +
                        "' is not handled by this endpoint");

    case Op::kAdvance: {
      std::shared_ptr<Session> session = find_session(request.session);
      std::lock_guard<std::mutex> lock(session->mutex());
      const core::StepStatus step =
          session->advance(request.advance_rounds, &token);
      ServeMetrics::instance().rounds.add(step.completed_rounds);
      response.session = session->status();
      if (step.cancelled) {
        response.status = Status::kDeadline;
        response.message = "deadline expired after " +
                           std::to_string(step.completed_rounds) +
                           " completed round(s); progress is retained";
      }
      return response;
    }

    case Op::kIngest: {
      std::shared_ptr<Session> session = find_session(request.session);
      std::lock_guard<std::mutex> lock(session->mutex());
      response.redesigned = session->ingest(request.observations, &token);
      ServeMetrics::instance().rounds.add(1);
      response.session = session->status();
      if (token.cancelled()) {
        response.status = Status::kDeadline;
        response.message =
            "deadline expired during redesign; previous contracts remain "
            "posted";
      }
      return response;
    }

    case Op::kContracts: {
      std::shared_ptr<Session> session = find_session(request.session);
      std::lock_guard<std::mutex> lock(session->mutex());
      response.contracts = session->contracts();
      response.session = session->status();
      return response;
    }

    case Op::kStatus: {
      std::shared_ptr<Session> session = find_session(request.session);
      std::lock_guard<std::mutex> lock(session->mutex());
      response.session = session->status();
      return response;
    }
  }
  throw DataError("unhandled serve op");
}

Response Engine::handle_open(const Request& request) {
  Response response;
  response.request_id = request.request_id;

  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    std::shared_ptr<Session> existing;
    auto it = sessions_.find(request.session);
    if (it != sessions_.end()) {
      existing = it->second;
    } else {
      // An evicted session still owns its id: open must resume it from
      // the checkpoint, never shadow it with a fresh campaign.
      existing = reload_locked(request.session);
    }
    if (existing != nullptr) {
      if (!request.open.allow_existing) {
        throw ConfigError("session '" + request.session + "' already open");
      }
      existing->touch();
      std::lock_guard<std::mutex> session_lock(existing->mutex());
      response.session = existing->status();
      return response;
    }
    if (sessions_.size() >= config_.max_sessions) {
      throw ConfigError("session limit reached (" +
                        std::to_string(config_.max_sessions) + ")");
    }
  }

  // Construct outside the map lock (fleet setup does real work), then
  // insert; a racing open of the same id loses and reports already-open.
  auto session = std::make_shared<Session>(request.session, request.open,
                                           session_env());
  session->checkpoint();  // durable from the moment it is acknowledged
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (!sessions_.emplace(request.session, session).second) {
      session->remove_checkpoint();
      throw ConfigError("session '" + request.session + "' already open");
    }
    ServeMetrics::instance().sessions_open.set(
        static_cast<double>(sessions_.size()));
  }
  ServeMetrics::instance().sessions_opened.add(1);
  response.session = session->status();
  return response;
}

Response Engine::handle_close(const Request& request) {
  Response response;
  response.request_id = request.request_id;

  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.session);
    if (it == sessions_.end()) {
      // Close of an evicted session must still discard its checkpoint.
      session = reload_locked(request.session);
      if (session == nullptr) {
        throw ConfigError("no open session '" + request.session + "'");
      }
      it = sessions_.find(request.session);
    }
    session = std::move(it->second);
    sessions_.erase(it);
    ServeMetrics::instance().sessions_open.set(
        static_cast<double>(sessions_.size()));
  }
  std::lock_guard<std::mutex> session_lock(session->mutex());
  response.session = session->status();
  session->remove_checkpoint();
  ServeMetrics::instance().sessions_closed.add(1);
  return response;
}

Response Engine::handle_restore(const Request& request) {
  Response response;
  response.request_id = request.request_id;

  // Idempotent for gateway retries: a restore that already landed (in
  // memory or as a reloadable checkpoint) reports the session's status
  // instead of failing, so a retried handoff cannot double-install.
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    std::shared_ptr<Session> existing;
    auto it = sessions_.find(request.session);
    existing = it != sessions_.end() ? it->second
                                     : reload_locked(request.session);
    if (existing != nullptr) {
      existing->touch();
      std::lock_guard<std::mutex> session_lock(existing->mutex());
      response.session = existing->status();
      return response;
    }
    if (sessions_.size() >= config_.max_sessions) {
      throw ConfigError("session limit reached (" +
                        std::to_string(config_.max_sessions) +
                        "); cannot restore '" + request.session + "'");
    }
  }
  if (request.checkpoint_blob.empty()) {
    throw ConfigError("restore of '" + request.session +
                      "' carries no checkpoint blob");
  }

  auto session = std::shared_ptr<Session>(
      Session::restore_blob(request.session, request.checkpoint_blob,
                            session_env()));
  session->checkpoint();  // durable on this shard before acknowledging
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (!sessions_.emplace(request.session, session).second) {
      // A racing restore of the same id won; both carried the same frame.
      std::shared_ptr<Session> winner = sessions_.at(request.session);
      std::lock_guard<std::mutex> session_lock(winner->mutex());
      response.session = winner->status();
      return response;
    }
    ServeMetrics::instance().sessions_open.set(
        static_cast<double>(sessions_.size()));
  }
  ServeMetrics::instance().sessions_restored.add(1);
  {
    std::lock_guard<std::mutex> session_lock(session->mutex());
    response.session = session->status();
  }
  return response;
}

Response Engine::handle_export(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  if (config_.checkpoint_dir.empty()) {
    throw ConfigError("export requires a checkpoint_dir (session state "
                      "leaves this shard as checkpoint bytes)");
  }

  // sessions_mutex_ is held for the whole export so no concurrent request
  // can resurrect the id from its checkpoint file between the snapshot
  // and the erase — once we answer, this shard no longer owns the session.
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  std::shared_ptr<Session> session;
  auto it = sessions_.find(request.session);
  session = it != sessions_.end() ? it->second : reload_locked(request.session);
  if (session == nullptr) {
    throw ConfigError("no open session '" + request.session + "'");
  }
  {
    // Lock order (sessions_mutex_ then session mutex) matches handle_open.
    // A racing op that already holds the session pointer finishes first;
    // the snapshot below then includes its round.
    std::lock_guard<std::mutex> session_lock(session->mutex());
    session->checkpoint();
    response.checkpoint_blob = util::read_file(session->checkpoint_path());
    response.session = session->status();
    session->remove_checkpoint();
  }
  sessions_.erase(request.session);
  ServeMetrics::instance().sessions_exported.add(1);
  ServeMetrics::instance().sessions_open.set(
      static_cast<double>(sessions_.size()));
  return response;
}

Response Engine::handle_list(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  std::set<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& [id, session] : sessions_) ids.insert(id);
  }
  // Idle-evicted sessions live only as checkpoint files but are still
  // owned by this shard; a rebalance that missed them would strand them.
  if (!config_.checkpoint_dir.empty()) {
    DIR* dir = opendir(config_.checkpoint_dir.c_str());
    if (dir == nullptr) {
      throw ConfigError("cannot open checkpoint directory '" +
                        config_.checkpoint_dir + "'");
    }
    while (dirent* entry = readdir(dir)) {
      const std::string name = entry->d_name;
      std::string stem;
      if (strip_suffix(name, ".sim.ckpt", &stem) ||
          strip_suffix(name, ".ingest.ckpt", &stem)) {
        ids.insert(stem);
      }
    }
    closedir(dir);
  }
  response.session_ids.assign(ids.begin(), ids.end());
  return response;
}

Response Engine::handle_health(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    response.health.sessions_open = sessions_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    response.health.queue_depth = queue_.size();
    response.health.draining =
        stopping_ || shutdown_requested_.load(std::memory_order_relaxed);
  }
  response.health.max_sessions = config_.max_sessions;
  response.health.queue_capacity = config_.queue_capacity;
  return response;
}

void Engine::reaper_loop() {
  const auto ttl = std::chrono::milliseconds(config_.idle_ttl_ms);
  // Scan a few times per TTL so eviction lag stays a fraction of the TTL
  // without busy-polling tiny intervals.
  const auto scan_every =
      std::max<std::chrono::milliseconds>(ttl / 4,
                                          std::chrono::milliseconds(10));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(reaper_mutex_);
      reaper_cv_.wait_for(lock, scan_every, [this] { return reaper_stop_; });
      if (reaper_stop_) return;
    }
    // Keep evicted sessions alive past the map erase: their mutexes must
    // not be destroyed while this thread still holds the unlock.
    std::vector<std::shared_ptr<Session>> evicted;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        std::shared_ptr<Session>& session = it->second;
        // use_count == 1: only the map holds it — no executor is mid-op
        // (find_session copies under sessions_mutex_, which we hold).
        if (session.use_count() == 1 && session->idle_for() >= ttl) {
          std::unique_lock<std::mutex> session_lock(session->mutex(),
                                                    std::try_to_lock);
          if (session_lock.owns_lock()) {
            session->checkpoint();
            session_lock.unlock();
            evicted.push_back(std::move(session));
            it = sessions_.erase(it);
            continue;
          }
        }
        ++it;
      }
      if (!evicted.empty()) {
        ServeMetrics::instance().sessions_open.set(
            static_cast<double>(sessions_.size()));
      }
    }
    if (!evicted.empty()) {
      ServeMetrics::instance().sessions_evicted.add(evicted.size());
    }
  }
}

void Engine::checkpoint_all() {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  for (const std::shared_ptr<Session>& session : sessions) {
    std::lock_guard<std::mutex> lock(session->mutex());
    session->checkpoint();
  }
}

void Engine::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && executors_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
  executors_.clear();
  if (reaper_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reaper_mutex_);
      reaper_stop_ = true;
    }
    reaper_cv_.notify_all();
    reaper_.join();
  }
  ServeMetrics::instance().queue_depth.set(0.0);
  checkpoint_all();
}

bool Engine::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_relaxed);
}

std::size_t Engine::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

}  // namespace ccd::serve
