#include "serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "contract/design_cache.hpp"
#include "core/checkpoint.hpp"
#include "core/requester.hpp"
#include "effort/fitting.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace ccd::serve {

namespace {

constexpr const char* kIngestTag = "ISES";
constexpr const char* kSimSuffix = ".sim.ckpt";
constexpr const char* kIngestSuffix = ".ingest.ckpt";

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string checkpoint_file(const std::string& dir, const std::string& id,
                            SessionMode mode) {
  if (dir.empty()) return {};
  return dir + "/" + id +
         (mode == SessionMode::kSimulation ? kSimSuffix : kIngestSuffix);
}

}  // namespace

const char* Session::checkpoint_suffix(SessionMode mode) {
  return mode == SessionMode::kSimulation ? kSimSuffix : kIngestSuffix;
}

bool valid_session_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Ingest-mode dynamic state. The estimate updates are the simulator's
/// requester verbatim (EMA accuracy, sigmoid maliciousness signal); the
/// effort curves start at the library default and are re-fit from the
/// observed sample window.
struct Session::IngestState {
  /// v2 appends the contract-designer policy section (backend config,
  /// opaque learner state, learner RNG). v1 files still load and restore a
  /// default-BiP session.
  static constexpr std::uint32_t kVersion = 2;
  static constexpr std::uint32_t kMinReadVersion = 1;
  /// Sliding window of retained (effort, feedback) samples per worker —
  /// bounds session memory no matter how long the campaign runs.
  static constexpr std::size_t kSampleWindow = 256;

  core::RequesterConfig requester;
  double ema_alpha = 0.3;
  std::size_t refit_every = 4;
  double suspicion_threshold = 0.5;
  std::uint64_t rounds_budget = 0;  ///< 0 = unbounded
  std::uint64_t round = 0;
  double cumulative_requester_utility = 0.0;

  std::vector<double> est_accuracy;
  std::vector<double> est_malicious;
  std::vector<effort::QuadraticEffort> psi;
  std::vector<std::vector<data::EffortSample>> samples;
  std::vector<contract::Contract> contracts;

  /// Contract-designer backend. BiP keeps the historical refit-boundary
  /// redesign path; learners post fresh contracts every ingested round and
  /// observe every round's rewards. The RNG exists purely for the Policy
  /// interface's RNG discipline (current learners draw nothing) and is
  /// checkpointed so any future drawing backend stays resume-safe.
  policy::PolicyConfig policy_config;
  std::unique_ptr<policy::Policy> policy;
  util::Rng rng{1};

  std::size_t workers() const { return est_accuracy.size(); }
  bool finished() const { return rounds_budget > 0 && round >= rounds_budget; }
};

Session::~Session() = default;

Session::Session(std::string id, Env env, SessionMode mode)
    : id_(std::move(id)), env_(std::move(env)), mode_(mode) {
  CCD_CHECK_MSG(env_.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  if (!valid_session_id(id_)) {
    throw ConfigError("invalid session id '" + id_ +
                      "' (1-64 chars of [A-Za-z0-9_-])");
  }
}

Session::Session(std::string id, const OpenParams& params, Env env)
    : Session(std::move(id), std::move(env), params.mode) {
  if (params.workers == 0) {
    throw ConfigError("session needs at least one worker");
  }
  if (mode_ == SessionMode::kSimulation) {
    if (params.rounds == 0) {
      throw ConfigError("simulation session needs rounds >= 1");
    }
    core::SimConfig config;
    config.rounds = params.rounds;
    config.seed = params.seed;
    config.requester.mu = params.mu;
    config.ema_alpha = params.ema_alpha;
    config.policy.kind = params.policy;
    config.checkpoint_path = checkpoint_file(env_.checkpoint_dir, id_, mode_);
    config.checkpoint_every =
        config.checkpoint_path.empty() ? 0 : env_.checkpoint_every;
    sim_ = std::make_unique<core::StackelbergSimulator>(
        core::preset_fleet(params.workers, params.malicious),
        std::move(config));
  } else {
    if (params.refit_every == 0) {
      throw ConfigError("ingest session needs refit_every >= 1");
    }
    ingest_ = std::make_unique<IngestState>();
    ingest_->requester.mu = params.mu;
    ingest_->requester.validate();
    ingest_->ema_alpha = params.ema_alpha;
    CCD_CHECK_MSG(ingest_->ema_alpha > 0.0 && ingest_->ema_alpha <= 1.0,
                  "ema_alpha must be in (0, 1]");
    ingest_->refit_every = params.refit_every;
    ingest_->rounds_budget = params.rounds;
    const std::size_t n = params.workers;
    ingest_->est_accuracy.assign(n, ingest_->requester.accuracy_floor);
    ingest_->est_malicious.assign(n, 0.05);
    ingest_->psi.assign(n, effort::QuadraticEffort(-1.0, 8.0, 2.0));
    ingest_->samples.assign(n, {});
    ingest_->contracts.assign(n, contract::Contract{});
    ingest_->policy_config.kind = params.policy;
    ingest_->policy = policy::make_policy(ingest_->policy_config);
    ingest_->rng = util::Rng(params.seed);
  }
}

SessionStatus Session::status() const {
  SessionStatus s;
  if (mode_ == SessionMode::kSimulation) {
    s.next_round = sim_->next_round();
    s.rounds = sim_->config().rounds;
    s.workers = sim_->worker_count();
    s.cumulative_requester_utility =
        sim_->history().cumulative_requester_utility;
    s.finished = sim_->finished();
  } else {
    s.next_round = ingest_->round;
    s.rounds = ingest_->rounds_budget;
    s.workers = ingest_->workers();
    s.cumulative_requester_utility = ingest_->cumulative_requester_utility;
    s.finished = ingest_->finished();
  }
  return s;
}

core::StepStatus Session::advance(std::size_t rounds,
                                  const util::CancellationToken* cancel) {
  if (mode_ != SessionMode::kSimulation) {
    throw ConfigError("session '" + id_ +
                      "' is an ingest session; advance applies to "
                      "simulation sessions");
  }
  // The simulator writes its own crash-safe checkpoint every completed
  // round (SimConfig::checkpoint_every), so a kill mid-advance loses at
  // most the in-flight round.
  return sim_->step(rounds, cancel);
}

bool Session::ingest(const std::vector<IngestObservation>& observations,
                     const util::CancellationToken* cancel) {
  if (mode_ != SessionMode::kIngest) {
    throw ConfigError("session '" + id_ +
                      "' is a simulation session; ingest applies to "
                      "ingest sessions");
  }
  IngestState& state = *ingest_;
  if (state.finished()) {
    throw ConfigError("session '" + id_ + "' round budget exhausted (" +
                      std::to_string(state.rounds_budget) + " rounds)");
  }
  const std::size_t n = state.workers();
  if (observations.size() != n) {
    throw ConfigError("ingest round carries " +
                      std::to_string(observations.size()) +
                      " observations, session has " + std::to_string(n) +
                      " workers");
  }

  const bool learner = state.policy->learns();
  std::vector<policy::RoundOutcome> outcomes;
  if (learner) outcomes.resize(n);
  double weighted_feedback = 0.0;
  double total_pay = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const IngestObservation& obs = observations[i];
    if (!std::isfinite(obs.effort) || !std::isfinite(obs.feedback) ||
        !std::isfinite(obs.accuracy_sample) || obs.effort < 0.0 ||
        obs.feedback < 0.0 || obs.accuracy_sample < 0.0) {
      throw DataError("ingest observation for worker " + std::to_string(i) +
                      " is not finite and non-negative");
    }
    std::vector<data::EffortSample>& window = state.samples[i];
    data::EffortSample sample;
    sample.worker = static_cast<data::WorkerId>(i);
    sample.review = static_cast<data::ReviewId>(state.round);
    sample.effort = obs.effort;
    sample.feedback = obs.feedback;
    window.push_back(sample);
    if (window.size() > IngestState::kSampleWindow) {
      window.erase(window.begin());
    }

    // Requester-side estimation, exactly as in the simulator (EMA over
    // the accuracy sample; sigmoid deviation signal for maliciousness).
    state.est_accuracy[i] = (1.0 - state.ema_alpha) * state.est_accuracy[i] +
                            state.ema_alpha * obs.accuracy_sample;
    const double signal =
        1.0 / (1.0 + std::exp(-4.0 * (obs.accuracy_sample - 0.9)));
    state.est_malicious[i] = (1.0 - state.ema_alpha) * state.est_malicious[i] +
                             state.ema_alpha * signal;

    const double weight =
        core::feedback_weight(state.requester, state.est_accuracy[i],
                              state.est_malicious[i], 0);
    weighted_feedback += weight * obs.feedback;
    total_pay += state.contracts[i].pay(obs.feedback);
    if (learner) {
      outcomes[i].active = true;
      outcomes[i].feedback = obs.feedback;
      outcomes[i].reward = weight * obs.feedback -
                           state.requester.mu *
                               state.contracts[i].pay(obs.feedback);
    }
  }
  if (learner) state.policy->observe(state.round, outcomes, state.rng);
  state.cumulative_requester_utility +=
      weighted_feedback - state.requester.mu * total_pay;
  state.round += 1;

  bool redesigned = false;
  if (state.round % state.refit_every == 0) {
    if (learner) {
      // Learners consume the re-fit effort curves through their next
      // post(); the BiP redesign below would overwrite their arms.
      ingest_refit();
    } else {
      ingest_redesign(cancel);
      redesigned = cancel == nullptr || !cancel->cancelled();
    }
  }
  if (learner) redesigned = ingest_post(cancel);
  if (!env_.checkpoint_dir.empty() &&
      state.round % env_.checkpoint_every == 0) {
    ingest_checkpoint();
  }
  return redesigned;
}

void Session::ingest_refit() {
  IngestState& state = *ingest_;
  const std::size_t n = state.workers();
  // Incremental re-fit: workers with enough observed samples get a fresh
  // concave-quadratic effort curve; sparse or degenerate windows keep the
  // previous fit (quarantine-style degradation, never a dead session).
  for (std::size_t i = 0; i < n; ++i) {
    if (state.samples[i].size() < 3) continue;
    try {
      state.psi[i] = effort::fit_effort_function(state.samples[i]).model;
    } catch (const ccd::Error&) {
      // Keep the previous curve.
    }
  }
}

void Session::ingest_redesign(const util::CancellationToken* cancel) {
  ingest_refit();
  IngestState& state = *ingest_;
  const std::size_t n = state.workers();

  std::vector<contract::SubproblemSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    contract::SubproblemSpec& spec = specs[i];
    spec.psi = state.psi[i];
    spec.incentives.beta = state.requester.beta;
    spec.incentives.omega =
        state.est_malicious[i] >= state.suspicion_threshold
            ? state.requester.omega_malicious
            : 0.0;
    spec.weight = core::feedback_weight(state.requester, state.est_accuracy[i],
                                        state.est_malicious[i], 0);
    spec.mu = state.requester.mu;
    spec.intervals = state.requester.intervals;
  }
  contract::BatchOptions options;
  options.cache = env_.cache;
  options.cancel = cancel;
  // Scalar kernel deliberately: session snapshots and replays promise
  // bitwise-stable contracts, which only the scalar path guarantees
  // across builds.
  options.kernel = contract::SweepKernel::kScalar;
  std::vector<std::uint8_t> resolved;
  options.resolved = &resolved;
  std::vector<contract::DesignResult> designs =
      contract::design_contracts_batch(specs, options);
  if (cancel != nullptr && cancel->cancelled()) {
    // Cut short: keep the previous contracts posted; the next refit round
    // redesigns from scratch.
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    CCD_CHECK_MSG(resolved[i] != 0, "redesign batch left a worker unsolved");
    state.contracts[i] = std::move(designs[i].contract);
  }
}

bool Session::ingest_post(const util::CancellationToken* cancel) {
  IngestState& state = *ingest_;
  const std::size_t n = state.workers();
  std::vector<policy::WorkerView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    policy::WorkerView& view = views[i];
    view.psi = state.psi[i];
    view.beta = state.requester.beta;
    view.omega = state.est_malicious[i] >= state.suspicion_threshold
                     ? state.requester.omega_malicious
                     : 0.0;
    view.weight = core::feedback_weight(state.requester, state.est_accuracy[i],
                                        state.est_malicious[i], 0);
    view.mu = state.requester.mu;
    view.intervals = state.requester.intervals;
    view.active = true;
  }
  policy::PostEnv env;
  env.cache = env_.cache;
  env.cancel = cancel;
  // A cancelled post keeps the previous contracts; the learner re-posts on
  // the next ingested round.
  return state.policy->post(state.round, true, views, state.contracts,
                            state.rng, env);
}

std::vector<contract::Contract> Session::contracts() const {
  return mode_ == SessionMode::kSimulation ? sim_->contracts()
                                           : ingest_->contracts;
}

std::string Session::checkpoint_path() const {
  return checkpoint_file(env_.checkpoint_dir, id_, mode_);
}

void Session::checkpoint() const {
  const std::string path = checkpoint_path();
  if (path.empty()) return;
  if (mode_ == SessionMode::kSimulation) {
    core::save_checkpoint(path, sim_->snapshot());
  } else {
    ingest_checkpoint();
  }
}

void Session::ingest_checkpoint() const {
  const IngestState& state = *ingest_;
  util::wire::Writer w;
  w.u64(state.round);
  w.u64(state.rounds_budget);
  w.f64(state.cumulative_requester_utility);
  w.f64(state.ema_alpha);
  w.u64(state.refit_every);
  w.f64(state.suspicion_threshold);
  w.f64(state.requester.rho);
  w.f64(state.requester.kappa);
  w.f64(state.requester.gamma);
  w.f64(state.requester.mu);
  w.f64(state.requester.beta);
  w.f64(state.requester.omega_malicious);
  w.u64(state.requester.intervals);
  w.f64(state.requester.accuracy_floor);
  w.f64(state.requester.weight_cap);
  const std::size_t n = state.workers();
  w.u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.f64(state.est_accuracy[i]);
    w.f64(state.est_malicious[i]);
    w.f64(state.psi[i].r2());
    w.f64(state.psi[i].r1());
    w.f64(state.psi[i].r0());
    w.u64(state.samples[i].size());
    for (const data::EffortSample& sample : state.samples[i]) {
      w.u64(sample.review);
      w.f64(sample.effort);
      w.f64(sample.feedback);
    }
    core::encode_contract(w, state.contracts[i]);
  }
  // v2: the contract-designer policy section.
  w.u8(static_cast<std::uint8_t>(state.policy_config.kind));
  w.f64(state.policy_config.payment_cap);
  w.f64(state.policy_config.zoom_confidence);
  w.u64(state.policy_config.zoom_max_depth);
  w.u64(state.policy_config.price_levels);
  w.f64(state.policy_config.peer_tolerance);
  w.str(state.policy->save_state());
  const util::RngState rng_state = state.rng.state();
  for (const std::uint64_t word : rng_state.words) w.u64(word);
  w.u8(rng_state.has_cached_normal ? 1 : 0);
  w.f64(rng_state.cached_normal);
  util::write_framed_file(checkpoint_path(), kIngestTag, IngestState::kVersion,
                          w.take());
}

std::unique_ptr<Session> Session::restore(const std::string& id,
                                          const std::string& path, Env env) {
  const SessionMode mode = ends_with(path, kSimSuffix)
                               ? SessionMode::kSimulation
                               : SessionMode::kIngest;
  auto session =
      std::unique_ptr<Session>(new Session(id, std::move(env), mode));
  if (mode == SessionMode::kSimulation) {
    core::SimCheckpoint checkpoint = core::load_checkpoint(path);
    // Re-point durability at the engine's directory: the checkpoint may
    // have been written under another daemon instance's configuration.
    checkpoint.config.checkpoint_path =
        checkpoint_file(session->env_.checkpoint_dir, id, mode);
    checkpoint.config.checkpoint_every =
        checkpoint.config.checkpoint_path.empty()
            ? 0
            : session->env_.checkpoint_every;
    session->sim_ = std::make_unique<core::StackelbergSimulator>(checkpoint);
    return session;
  }

  const util::FramedPayload framed = util::read_framed_file(
      path, kIngestTag, IngestState::kMinReadVersion, IngestState::kVersion);
  session->ingest_ = decode_ingest_payload(framed.payload, framed.version);
  return session;
}

std::unique_ptr<Session::IngestState> Session::decode_ingest_payload(
    const std::string& payload, std::uint32_t version) {
  CCD_CHECK_MSG(version >= IngestState::kMinReadVersion &&
                    version <= IngestState::kVersion,
                "unsupported ingest checkpoint payload version " +
                    std::to_string(version));
  try {
    util::wire::Reader r(payload);
    auto state = std::make_unique<IngestState>();
    state->round = r.u64();
    state->rounds_budget = r.u64();
    state->cumulative_requester_utility = r.f64();
    state->ema_alpha = r.f64();
    state->refit_every = r.u64();
    state->suspicion_threshold = r.f64();
    state->requester.rho = r.f64();
    state->requester.kappa = r.f64();
    state->requester.gamma = r.f64();
    state->requester.mu = r.f64();
    state->requester.beta = r.f64();
    state->requester.omega_malicious = r.f64();
    state->requester.intervals = r.u64();
    state->requester.accuracy_floor = r.f64();
    state->requester.weight_cap = r.f64();
    const std::size_t n = r.count(48);
    CCD_CHECK_MSG(n >= 1, "ingest checkpoint has no workers");
    CCD_CHECK_MSG(state->refit_every >= 1,
                  "ingest checkpoint refit_every must be >= 1");
    for (std::size_t i = 0; i < n; ++i) {
      state->est_accuracy.push_back(r.f64());
      state->est_malicious.push_back(r.f64());
      const double r2 = r.f64();
      const double r1 = r.f64();
      const double r0 = r.f64();
      state->psi.emplace_back(r2, r1, r0);
      const std::size_t samples = r.count(24);
      std::vector<data::EffortSample> window;
      window.reserve(samples);
      for (std::size_t s = 0; s < samples; ++s) {
        data::EffortSample sample;
        sample.worker = static_cast<data::WorkerId>(i);
        sample.review = static_cast<data::ReviewId>(r.u64());
        sample.effort = r.f64();
        sample.feedback = r.f64();
        window.push_back(sample);
      }
      state->samples.push_back(std::move(window));
      state->contracts.push_back(core::decode_contract(r));
    }
    std::string policy_state;
    util::RngState rng_state;
    bool have_rng = false;
    if (version >= 2) {
      const std::uint8_t raw_kind = r.u8();
      CCD_CHECK_MSG(
          raw_kind <= static_cast<std::uint8_t>(policy::Kind::kPostedPrice),
          "ingest checkpoint names an unknown policy backend");
      state->policy_config.kind = static_cast<policy::Kind>(raw_kind);
      state->policy_config.payment_cap = r.f64();
      state->policy_config.zoom_confidence = r.f64();
      state->policy_config.zoom_max_depth = r.u64();
      state->policy_config.price_levels = r.u64();
      state->policy_config.peer_tolerance = r.f64();
      policy_state = r.str();
      for (std::uint64_t& word : rng_state.words) word = r.u64();
      rng_state.has_cached_normal = r.u8() != 0;
      rng_state.cached_normal = r.f64();
      have_rng = true;
    }
    r.finish();
    state->requester.validate();
    state->policy_config.validate();
    state->policy = policy::make_policy(state->policy_config);
    state->policy->load_state(policy_state);
    if (have_rng) state->rng.set_state(rng_state);
    return state;
  } catch (const DataError&) {
    throw;
  } catch (const Error& e) {
    throw DataError(std::string("invalid ingest-session checkpoint: ") +
                    e.what());
  }
}

std::unique_ptr<Session> Session::restore_blob(const std::string& id,
                                               const std::string& blob,
                                               Env env) {
  if (blob.size() < util::wire::kFrameHeaderSize) {
    throw DataError("checkpoint blob shorter than a frame header (" +
                    std::to_string(blob.size()) + " bytes)");
  }
  // The frame tag (bytes 4..8) names the session mode; full header and
  // checksum validation happens below under the tag-specific version.
  const std::string tag = blob.substr(4, 4);
  SessionMode mode;
  std::uint32_t min_version;
  std::uint32_t max_version;
  if (tag == "SCKP") {
    mode = SessionMode::kSimulation;
    min_version = core::SimCheckpoint::kMinReadVersion;
    max_version = core::SimCheckpoint::kVersion;
  } else if (tag == kIngestTag) {
    mode = SessionMode::kIngest;
    min_version = IngestState::kMinReadVersion;
    max_version = IngestState::kVersion;
  } else {
    throw DataError("checkpoint blob has unknown frame tag '" + tag + "'");
  }
  const util::wire::FrameHeader header = util::wire::decode_frame_header(
      blob, tag, min_version, max_version, blob.size(), "checkpoint blob");
  if (blob.size() != util::wire::kFrameHeaderSize + header.payload_size) {
    throw DataError("checkpoint blob size mismatch (header announces " +
                    std::to_string(header.payload_size) + " payload bytes, " +
                    std::to_string(blob.size() - util::wire::kFrameHeaderSize) +
                    " present)");
  }
  const std::string payload = blob.substr(util::wire::kFrameHeaderSize);
  util::wire::verify_frame_payload(header, payload, "checkpoint blob");

  auto session =
      std::unique_ptr<Session>(new Session(id, std::move(env), mode));
  if (mode == SessionMode::kSimulation) {
    core::SimCheckpoint checkpoint =
        core::decode_checkpoint(payload, header.version);
    checkpoint.config.checkpoint_path =
        checkpoint_file(session->env_.checkpoint_dir, id, mode);
    checkpoint.config.checkpoint_every =
        checkpoint.config.checkpoint_path.empty()
            ? 0
            : session->env_.checkpoint_every;
    session->sim_ = std::make_unique<core::StackelbergSimulator>(checkpoint);
  } else {
    session->ingest_ = decode_ingest_payload(payload, header.version);
  }
  return session;
}

void Session::remove_checkpoint() const {
  const std::string path = checkpoint_path();
  if (!path.empty()) std::remove(path.c_str());
}

}  // namespace ccd::serve
