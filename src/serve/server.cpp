#include "serve/server.hpp"

#include <unistd.h>

#include <atomic>
#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace ccd::serve {

namespace {
/// Accept poll granularity: how quickly stop() is observed.
constexpr int kAcceptPollMs = 200;
}  // namespace

void ServerConfig::validate() const {
  CCD_CHECK_MSG(!unix_socket.empty() || tcp_port >= 0,
                "server needs a unix socket path or a tcp port");
}

struct Server::Connection {
  util::Socket socket;
  /// Accepted on the Unix listener: the token handshake is never required
  /// there (filesystem permissions are the access control).
  bool via_unix = false;
  /// Serializes response frames: the engine answers from executor threads
  /// concurrently and frames must never interleave on the stream.
  std::mutex write_mutex;
  std::atomic<bool> finished{false};
};

Server::Server(ServerConfig config, Engine& engine)
    : config_(std::move(config)), engine_(engine) {
  config_.validate();
  if (!config_.unix_socket.empty()) {
    unix_listener_ = util::Socket::listen_unix(config_.unix_socket);
  }
  if (config_.tcp_port >= 0) {
    tcp_listener_ =
        util::Socket::listen_tcp(config_.tcp_host, config_.tcp_port);
    tcp_port_ = tcp_listener_.local_port();
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
  }
}

Server::~Server() { stop(); }

void Server::accept_loop(util::Socket* listener) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<util::Socket> accepted;
    try {
      accepted = listener->accept(kAcceptPollMs);
    } catch (const ccd::Error&) {
      // Listener torn down (stop()) or transient failure; exit when
      // stopping, otherwise keep serving.
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    if (!accepted) continue;  // poll timeout

    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connection->via_unix = (listener == &unix_listener_);
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    reap_finished_handlers_locked();
    Handler handler;
    handler.connection = connection;
    handler.thread =
        std::thread([this, connection] { handle_connection(connection); });
    handlers_.push_back(std::move(handler));
  }
}

void Server::handle_connection(std::shared_ptr<Connection> connection) {
  AuthGate gate;
  gate.token = config_.auth_token;
  // Unix sockets are guarded by filesystem permissions and loopback TCP
  // is trusted by default; everything else must prove the token (when one
  // is configured). require_auth extends the gate to loopback TCP.
  gate.require = !gate.token.empty() && !connection->via_unix &&
                 (config_.require_auth ||
                  !connection->socket.peer_is_loopback());
  try {
    for (;;) {
      const std::optional<std::string> payload = recv_message(
          connection->socket, config_.idle_timeout_ms, config_.io_timeout_ms);
      if (!payload) break;  // clean peer close
      Request request = decode_request(*payload);
      bool close_connection = false;
      if (const std::optional<Response> intercepted =
              auth_intercept(gate, request, close_connection)) {
        const std::string encoded = encode_response(*intercepted);
        std::lock_guard<std::mutex> lock(connection->write_mutex);
        send_message(connection->socket, encoded, config_.io_timeout_ms);
        if (close_connection) break;
        continue;
      }
      // The response callback may fire on an executor thread long after
      // this loop moved on (pipelining) — the shared_ptr keeps the
      // connection alive until the last pending response is written.
      const int io_timeout_ms = config_.io_timeout_ms;
      engine_.submit(std::move(request),
                     [connection, io_timeout_ms](Response response) {
        try {
          const std::string encoded = encode_response(response);
          std::lock_guard<std::mutex> lock(connection->write_mutex);
          send_message(connection->socket, encoded, io_timeout_ms);
        } catch (const ccd::Error&) {
          // Peer gone or stalled mid-response. A timeout may have left a
          // partial frame on the stream, so the connection is unusable:
          // shut it down to unblock the read loop too.
          connection->socket.shutdown_both();
        }
      });
    }
  } catch (const ccd::Error&) {
    // Corrupt frame or transport failure: framing is unrecoverable on a
    // byte stream, drop the connection.
  }
  connection->socket.shutdown_both();
  connection->finished.store(true, std::memory_order_release);
}

void Server::reap_finished_handlers_locked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->connection->finished.load(std::memory_order_acquire)) {
      it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  // Wake the accept loops, then the connection read loops.
  unix_listener_.shutdown_both();
  tcp_listener_.shutdown_both();
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();

  std::vector<Handler> handlers;
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (Handler& handler : handlers) {
    handler.connection->socket.shutdown_both();
    handler.thread.join();
  }
  if (!config_.unix_socket.empty()) {
    ::unlink(config_.unix_socket.c_str());
  }
}

}  // namespace ccd::serve
