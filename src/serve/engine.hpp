// The embeddable serving core: a bounded admission queue in front of a
// pool of executor threads and a manager of concurrent campaign sessions.
//
// Admission control is the backpressure story of the subsystem: submit()
// either enqueues the request (bounded deque, never grows past
// queue_capacity — overload cannot OOM the daemon) or responds
// kBackpressure / kShuttingDown immediately without enqueuing. Every
// admitted request is answered exactly once, including during stop(),
// which drains the queue before joining — an acknowledged request is
// never dropped.
//
// Deadlines are measured from admission: the request's deadline_ms arms a
// util::CancellationToken when the request enters the queue, so queue
// wait counts against the budget and an expired request is answered
// kDeadline without ever touching its session.
//
// Sessions execute under a per-session mutex — operations on one session
// serialize, distinct sessions proceed in parallel across the executor
// threads, and all redesign work funnels through one engine-shared
// contract::DesignCache on util::shared_pool().
//
// Everything observable lands in `ccd.serve.*` metrics, and the counters
// reconcile exactly with what clients see: submitted == responses, and
// every rejection is itemized (tested).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "contract/design_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "util/cancellation.hpp"

namespace ccd::serve {

struct EngineConfig {
  /// Executor threads draining the admission queue.
  std::size_t worker_threads = 4;
  /// Bounded admission queue; a full queue rejects with kBackpressure.
  std::size_t queue_capacity = 128;
  /// Open-session cap; exceeding it is a config error on open.
  std::size_t max_sessions = 256;
  /// Directory for per-session checkpoints; empty disables durability.
  std::string checkpoint_dir;
  /// Snapshot cadence in completed rounds (>= 1).
  std::size_t checkpoint_every = 1;
  /// Idle-session TTL in milliseconds: a session untouched this long is
  /// checkpointed to disk and evicted from memory (the slot frees up; a
  /// later op or open on the same id reloads it bitwise-identically).
  /// 0 disables eviction. Requires a checkpoint_dir — evicting without
  /// durability would silently discard campaign state.
  std::size_t idle_ttl_ms = 0;

  void validate() const;
};

/// Outcome of Engine::resume_sessions(): how many checkpoints restored,
/// and which files were skipped (corrupt / truncated / ambiguous) with the
/// error that condemned them. One bad file never blocks the rest.
struct ResumeReport {
  struct Skipped {
    std::string id;
    std::string path;
    std::string error;
  };
  std::size_t restored = 0;
  std::vector<Skipped> skipped;
};

class Engine {
 public:
  explicit Engine(EngineConfig config);
  ~Engine();  ///< stop()s.

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Restore every session checkpoint found in checkpoint_dir. A corrupt
  /// or truncated file is skipped — recorded in the report (and the
  /// `ccd.serve.resume_skipped` counter) with its DataError — so one bad
  /// file cannot hold every other campaign hostage. No-op without a
  /// checkpoint directory.
  ResumeReport resume_sessions();

  /// Submit a request. Invokes `done` exactly once — immediately with
  /// kBackpressure (queue full) or kShuttingDown (engine draining), or
  /// later from an executor thread with the operation's response. Returns
  /// true when the request was admitted to the queue.
  bool submit(Request request, std::function<void(Response)> done);

  /// Synchronous submit-and-wait (in-process embedding and tests).
  Response call(Request request);

  /// Force a snapshot of every open session (clean-shutdown path).
  void checkpoint_all();

  /// Drain the queue (answering everything already admitted), then join
  /// the executors and checkpoint all sessions. Idempotent. New
  /// submissions during and after stop() get kShuttingDown.
  void stop();

  /// True once a kShutdown request has been accepted; the daemon's main
  /// loop polls this to exit.
  bool shutdown_requested() const;

  std::size_t session_count() const;
  const EngineConfig& config() const { return config_; }

 private:
  struct Job {
    Request request;
    std::function<void(Response)> done;
    util::CancellationToken token;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void executor_loop();
  void reaper_loop();
  void finish(Job& job, Response response);
  Response handle(const Request& request,
                  const util::CancellationToken& token);
  Response handle_open(const Request& request);
  Response handle_close(const Request& request);
  Response handle_restore(const Request& request);
  Response handle_health(const Request& request);
  Response handle_export(const Request& request);
  Response handle_list(const Request& request);
  std::shared_ptr<Session> find_session(const std::string& id);
  /// Under sessions_mutex_: reload an evicted session from its checkpoint
  /// file if one exists; returns nullptr when there is none.
  std::shared_ptr<Session> reload_locked(const std::string& id);
  Session::Env session_env();

  EngineConfig config_;
  contract::DesignCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::atomic<bool> shutdown_requested_{false};
  std::vector<std::thread> executors_;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  // Idle-TTL reaper (only started when config_.idle_ttl_ms > 0).
  std::mutex reaper_mutex_;
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;
  std::thread reaper_;
};

}  // namespace ccd::serve
