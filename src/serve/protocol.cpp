#include "serve/protocol.hpp"

#include <utility>

#include "core/checkpoint.hpp"
#include "util/atomic_file.hpp"
#include "util/auth.hpp"
#include "util/fault_injection.hpp"
#include "util/socket.hpp"
#include "util/wire.hpp"

namespace ccd::serve {

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kOpen: return "open";
    case Op::kAdvance: return "advance";
    case Op::kIngest: return "ingest";
    case Op::kContracts: return "contracts";
    case Op::kStatus: return "status";
    case Op::kClose: return "close";
    case Op::kMetrics: return "metrics";
    case Op::kShutdown: return "shutdown";
    case Op::kRestore: return "restore";
    case Op::kHealth: return "health";
    case Op::kAuth: return "auth";
    case Op::kJoin: return "join";
    case Op::kRetire: return "retire";
    case Op::kExport: return "export";
    case Op::kListSessions: return "list-sessions";
  }
  return "?";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kGenericError: return "error";
    case Status::kConfigError: return "config-error";
    case Status::kDataError: return "data-error";
    case Status::kMathError: return "math-error";
    case Status::kContractError: return "contract-error";
    case Status::kDeadline: return "deadline";
    case Status::kBackpressure: return "backpressure";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kUnavailable: return "unavailable";
    case Status::kAuth: return "auth-required";
  }
  return "?";
}

Status status_for(const ccd::Error& error) {
  switch (error.code()) {
    case ErrorCode::kConfig: return Status::kConfigError;
    case ErrorCode::kData: return Status::kDataError;
    case ErrorCode::kMath: return Status::kMathError;
    case ErrorCode::kContract: return Status::kContractError;
    case ErrorCode::kDeadline: return Status::kDeadline;
    case ErrorCode::kAuth: return Status::kAuth;
    case ErrorCode::kGeneric: return Status::kGenericError;
  }
  return Status::kGenericError;
}

void throw_status(Status status, const std::string& message) {
  switch (status) {
    case Status::kConfigError: throw ConfigError(message);
    case Status::kDataError: throw DataError(message);
    case Status::kMathError: throw MathError(message);
    case Status::kContractError: throw ContractError(message);
    case Status::kDeadline: throw CancelledError(message);
    case Status::kBackpressure:
      throw Error("server backpressure: " + message);
    case Status::kShuttingDown:
      throw Error("server shutting down: " + message);
    case Status::kUnavailable:
      throw Error("service unavailable: " + message);
    case Status::kAuth: throw AuthError(message);
    case Status::kOk:
    case Status::kGenericError:
      throw Error(message);
  }
  throw Error(message);
}

namespace {

Op decode_op(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Op::kListSessions)) {
    throw DataError("unknown serve op " + std::to_string(raw));
  }
  return static_cast<Op>(raw);
}

Status decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Status::kAuth)) {
    throw DataError("unknown serve status " + std::to_string(raw));
  }
  return static_cast<Status>(raw);
}

SessionMode decode_mode(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(SessionMode::kIngest)) {
    throw DataError("unknown session mode " + std::to_string(raw));
  }
  return static_cast<SessionMode>(raw);
}

policy::Kind decode_policy(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(policy::Kind::kPostedPrice)) {
    throw DataError("unknown policy backend " + std::to_string(raw));
  }
  return static_cast<policy::Kind>(raw);
}

void encode_session_status(util::wire::Writer& w, const SessionStatus& s) {
  w.u64(s.next_round);
  w.u64(s.rounds);
  w.u64(s.workers);
  w.f64(s.cumulative_requester_utility);
  w.u8(s.finished ? 1 : 0);
}

SessionStatus decode_session_status(util::wire::Reader& r) {
  SessionStatus s;
  s.next_round = r.u64();
  s.rounds = r.u64();
  s.workers = r.u64();
  s.cumulative_requester_utility = r.f64();
  s.finished = r.u8() != 0;
  return s;
}

}  // namespace

std::string encode_request(const Request& request) {
  util::wire::Writer w;
  w.u8(static_cast<std::uint8_t>(request.op));
  w.u64(request.request_id);
  w.str(request.session);
  w.u32(request.deadline_ms);
  w.u8(static_cast<std::uint8_t>(request.open.mode));
  w.u64(request.open.rounds);
  w.u64(request.open.workers);
  w.u64(request.open.malicious);
  w.u64(request.open.seed);
  w.f64(request.open.mu);
  w.u64(request.open.refit_every);
  w.f64(request.open.ema_alpha);
  w.u8(request.open.allow_existing ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(request.open.policy));
  w.u64(request.advance_rounds);
  w.u64(request.observations.size());
  for (const IngestObservation& obs : request.observations) {
    w.f64(obs.effort);
    w.f64(obs.feedback);
    w.f64(obs.accuracy_sample);
  }
  w.u8(request.metrics_prometheus ? 1 : 0);
  w.str(request.checkpoint_blob);
  w.str(request.auth_proof);
  w.str(request.shard.name);
  w.str(request.shard.unix_socket);
  w.str(request.shard.host);
  w.u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(request.shard.tcp_port)));
  w.str(request.shard.checkpoint_dir);
  return w.take();
}

Request decode_request(const std::string& payload) {
  util::wire::Reader r(payload);
  Request request;
  request.op = decode_op(r.u8());
  request.request_id = r.u64();
  request.session = r.str();
  request.deadline_ms = r.u32();
  request.open.mode = decode_mode(r.u8());
  request.open.rounds = r.u64();
  request.open.workers = r.u64();
  request.open.malicious = r.u64();
  request.open.seed = r.u64();
  request.open.mu = r.f64();
  request.open.refit_every = r.u64();
  request.open.ema_alpha = r.f64();
  request.open.allow_existing = r.u8() != 0;
  request.open.policy = decode_policy(r.u8());
  request.advance_rounds = r.u64();
  const std::size_t observations = r.count(24);
  request.observations.reserve(observations);
  for (std::size_t i = 0; i < observations; ++i) {
    IngestObservation obs;
    obs.effort = r.f64();
    obs.feedback = r.f64();
    obs.accuracy_sample = r.f64();
    request.observations.push_back(obs);
  }
  request.metrics_prometheus = r.u8() != 0;
  request.checkpoint_blob = r.str();
  request.auth_proof = r.str();
  request.shard.name = r.str();
  request.shard.unix_socket = r.str();
  request.shard.host = r.str();
  request.shard.tcp_port = static_cast<std::int32_t>(
      static_cast<std::int64_t>(r.u64()));
  request.shard.checkpoint_dir = r.str();
  r.finish();
  return request;
}

std::string encode_response(const Response& response) {
  util::wire::Writer w;
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.str(response.message);
  encode_session_status(w, response.session);
  w.u64(response.contracts.size());
  for (const contract::Contract& c : response.contracts) {
    core::encode_contract(w, c);
  }
  w.str(response.text);
  w.u8(response.redesigned ? 1 : 0);
  w.u64(response.health.sessions_open);
  w.u64(response.health.max_sessions);
  w.u64(response.health.queue_depth);
  w.u64(response.health.queue_capacity);
  w.u8(response.health.draining ? 1 : 0);
  w.str(response.checkpoint_blob);
  w.u64(response.session_ids.size());
  for (const std::string& id : response.session_ids) w.str(id);
  return w.take();
}

Response decode_response(const std::string& payload) {
  util::wire::Reader r(payload);
  Response response;
  response.request_id = r.u64();
  response.status = decode_status(r.u8());
  response.message = r.str();
  response.session = decode_session_status(r);
  const std::size_t contracts = r.count(8);
  response.contracts.reserve(contracts);
  for (std::size_t i = 0; i < contracts; ++i) {
    response.contracts.push_back(core::decode_contract(r));
  }
  response.text = r.str();
  response.redesigned = r.u8() != 0;
  response.health.sessions_open = r.u64();
  response.health.max_sessions = r.u64();
  response.health.queue_depth = r.u64();
  response.health.queue_capacity = r.u64();
  response.health.draining = r.u8() != 0;
  response.checkpoint_blob = r.str();
  const std::size_t session_ids = r.count(8);
  response.session_ids.reserve(session_ids);
  for (std::size_t i = 0; i < session_ids; ++i) {
    response.session_ids.push_back(r.str());
  }
  r.finish();
  return response;
}

void send_message(util::Socket& socket, const std::string& payload,
                  int io_timeout_ms) {
  CCD_FAULT_POINT("serve.frame_write",
                  util::fnv1a64(payload.data(), payload.size()), DataError);
  const std::string frame =
      util::wire::encode_frame(kFrameTag, kProtocolVersion, payload);
  socket.write_exact(frame.data(), frame.size(), io_timeout_ms);
}

std::optional<std::string> recv_message(util::Socket& socket,
                                        int idle_timeout_ms,
                                        int io_timeout_ms) {
  char header_bytes[util::wire::kFrameHeaderSize];
  if (!socket.read_exact(header_bytes, sizeof(header_bytes),
                         idle_timeout_ms)) {
    return std::nullopt;
  }
  const util::wire::FrameHeader header = util::wire::decode_frame_header(
      std::string_view(header_bytes, sizeof(header_bytes)), kFrameTag,
      kProtocolVersion, kProtocolVersion, kMaxMessageBytes, "socket");
  CCD_FAULT_POINT("serve.frame_read", header.checksum, DataError);
  std::string payload(header.payload_size, '\0');
  if (header.payload_size > 0 &&
      !socket.read_exact(payload.data(), payload.size(), io_timeout_ms)) {
    throw DataError("peer closed between frame header and payload");
  }
  util::wire::verify_frame_payload(header, payload, "socket");
  return payload;
}

std::optional<Response> auth_intercept(AuthGate& gate, const Request& request,
                                       bool& close_connection) {
  close_connection = false;
  if (request.op == Op::kAuth) {
    Response response;
    response.request_id = request.request_id;
    if (request.auth_proof.empty()) {
      // Challenge request. An empty nonce tells the client the server has
      // no token configured, so there is nothing to prove.
      if (!gate.token.empty()) {
        gate.nonce = util::auth::make_nonce();
        response.text = gate.nonce;
      }
      return response;
    }
    // Proof. The outstanding nonce is consumed before verification, so a
    // second attempt (replay on this connection) never verifies, and a
    // proof captured from another connection is bound to that
    // connection's nonce.
    const std::string nonce = gate.nonce;
    gate.nonce.clear();
    if (gate.token.empty() || nonce.empty() ||
        !util::auth::constant_time_equal(
            request.auth_proof,
            util::auth::handshake_proof(gate.token, nonce))) {
      response.status = Status::kAuth;
      response.message = nonce.empty()
                             ? "authentication proof without a challenge"
                             : "authentication failed";
      close_connection = true;
      return response;
    }
    gate.authenticated = true;
    response.text = "authenticated";
    return response;
  }
  if (gate.require && !gate.authenticated) {
    Response response;
    response.request_id = request.request_id;
    response.status = Status::kAuth;
    response.message =
        "authentication required on non-loopback connections (token "
        "handshake, see serve/protocol.hpp)";
    close_connection = true;
    return response;
  }
  return std::nullopt;
}

void client_handshake(util::Socket& socket, const std::string& token,
                      int io_timeout_ms) {
  if (token.empty()) return;
  Request challenge;
  challenge.op = Op::kAuth;
  send_message(socket, encode_request(challenge), io_timeout_ms);
  auto payload = recv_message(socket, io_timeout_ms, io_timeout_ms);
  if (!payload) throw DataError("peer closed during auth challenge");
  Response response = decode_response(*payload);
  if (is_error(response.status)) {
    throw_status(response.status, response.message);
  }
  if (response.text.empty()) return;  // server has no token configured

  Request proof;
  proof.op = Op::kAuth;
  proof.auth_proof = util::auth::handshake_proof(token, response.text);
  send_message(socket, encode_request(proof), io_timeout_ms);
  payload = recv_message(socket, io_timeout_ms, io_timeout_ms);
  if (!payload) throw AuthError("peer closed during auth proof");
  response = decode_response(*payload);
  if (is_error(response.status)) {
    throw_status(response.status, response.message);
  }
}

}  // namespace ccd::serve
