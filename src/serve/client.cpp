#include "serve/client.hpp"

#include <utility>

#include "util/error.hpp"

namespace ccd::serve {

Client::Client(util::Socket socket) : socket_(std::move(socket)) {}

Client Client::connect_unix(const std::string& path) {
  return Client(util::Socket::connect_unix(path));
}

Client Client::connect_tcp(const std::string& host, int port) {
  return Client(util::Socket::connect_tcp(host, port));
}

Response Client::call(const Request& request) {
  send_message(socket_, encode_request(request));
  std::optional<std::string> payload = recv_message(socket_);
  if (!payload) {
    throw DataError("server closed the connection before responding");
  }
  Response response = decode_response(*payload);
  if (response.request_id != request.request_id) {
    throw DataError("response correlation mismatch (sent " +
                    std::to_string(request.request_id) + ", got " +
                    std::to_string(response.request_id) + ")");
  }
  return response;
}

Response Client::roundtrip(Request request) {
  request.request_id = next_request_id_++;
  return call(request);
}

namespace {
/// Throw the mapped error class unless the status is in `tolerated`.
void check(const Response& response) {
  if (is_error(response.status)) {
    throw_status(response.status, response.message);
  }
}
}  // namespace

std::string Client::ping() {
  Request request;
  request.op = Op::kPing;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.text;
}

SessionStatus Client::open(const std::string& session,
                           const OpenParams& params,
                           std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kOpen;
  request.session = session;
  request.open = params;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

Client::AdvanceResult Client::advance(const std::string& session,
                                      std::uint64_t rounds,
                                      std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kAdvance;
  request.session = session;
  request.advance_rounds = rounds;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.status != Status::kDeadline &&
      response.status != Status::kBackpressure) {
    check(response);
  }
  AdvanceResult result;
  result.session = response.session;
  result.deadline_expired = response.status == Status::kDeadline;
  result.backpressure = response.status == Status::kBackpressure;
  return result;
}

Client::IngestResult Client::ingest(
    const std::string& session,
    const std::vector<IngestObservation>& observations,
    std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kIngest;
  request.session = session;
  request.observations = observations;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.status != Status::kDeadline &&
      response.status != Status::kBackpressure) {
    check(response);
  }
  IngestResult result;
  result.session = response.session;
  result.redesigned = response.redesigned;
  result.deadline_expired = response.status == Status::kDeadline;
  result.backpressure = response.status == Status::kBackpressure;
  return result;
}

std::vector<contract::Contract> Client::contracts(const std::string& session,
                                                  std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kContracts;
  request.session = session;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return std::move(response.contracts);
}

SessionStatus Client::status(const std::string& session,
                             std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kStatus;
  request.session = session;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

SessionStatus Client::close_session(const std::string& session,
                                    std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kClose;
  request.session = session;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

std::string Client::metrics(bool prometheus) {
  Request request;
  request.op = Op::kMetrics;
  request.metrics_prometheus = prometheus;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.text;
}

void Client::shutdown_server() {
  Request request;
  request.op = Op::kShutdown;
  Response response = roundtrip(std::move(request));
  check(response);
}

}  // namespace ccd::serve
