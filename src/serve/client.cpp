#include "serve/client.hpp"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace ccd::serve {

namespace {
util::metrics::Counter& reconnects_counter() {
  static util::metrics::Counter& c =
      util::metrics::registry().counter("ccd.serve.client.reconnects");
  return c;
}
}  // namespace

Client::Client(util::Socket socket, Target target, ClientOptions options)
    : socket_(std::move(socket)),
      target_(std::move(target)),
      options_(options) {}

Client Client::connect_unix(const std::string& path, ClientOptions options) {
  Target target;
  target.unix_domain = true;
  target.path_or_host = path;
  util::Socket socket = util::Socket::connect_unix(path);
  client_handshake(socket, options.auth_token, options.io_timeout_ms);
  return Client(std::move(socket), std::move(target), options);
}

Client Client::connect_tcp(const std::string& host, int port,
                           ClientOptions options) {
  Target target;
  target.unix_domain = false;
  target.path_or_host = host;
  target.port = port;
  util::Socket socket = util::Socket::connect_tcp(host, port);
  client_handshake(socket, options.auth_token, options.io_timeout_ms);
  return Client(std::move(socket), std::move(target), options);
}

util::Socket Client::dial() const {
  util::Socket socket =
      target_.unix_domain
          ? util::Socket::connect_unix(target_.path_or_host)
          : util::Socket::connect_tcp(target_.path_or_host, target_.port);
  // Re-run the token handshake on every redial: authentication is
  // per-connection (each connection gets a fresh server nonce).
  client_handshake(socket, options_.auth_token, options_.io_timeout_ms);
  return socket;
}

Response Client::call(const Request& request) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (!socket_.valid()) {
        socket_ = dial();
        if (attempt > 0) reconnects_counter().add(1);
      }
      send_message(socket_, encode_request(request), options_.io_timeout_ms);
      std::optional<std::string> payload =
          recv_message(socket_, 0, options_.io_timeout_ms);
      if (!payload) {
        throw DataError("server closed the connection before responding");
      }
      Response response = decode_response(*payload);
      if (response.request_id != request.request_id) {
        throw DataError("response correlation mismatch (sent " +
                        std::to_string(request.request_id) + ", got " +
                        std::to_string(response.request_id) + ")");
      }
      return response;
    } catch (const DataError&) {
      // Transport or framing failure: the stream is unusable. Drop the
      // connection and (within budget) back off, redial, and reissue —
      // at-least-once semantics, see the header comment.
      socket_ = util::Socket();
      if (attempt >= options_.max_reconnects) throw;
      const double delay_s =
          options_.reconnect_backoff_s *
          std::pow(options_.reconnect_multiplier, static_cast<double>(attempt));
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
    }
  }
}

Response Client::roundtrip(Request request) {
  request.request_id = next_request_id_++;
  return call(request);
}

namespace {
/// Throw the mapped error class unless the status is in `tolerated`.
void check(const Response& response) {
  if (is_error(response.status)) {
    throw_status(response.status, response.message);
  }
}
}  // namespace

std::string Client::ping() {
  Request request;
  request.op = Op::kPing;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.text;
}

SessionStatus Client::open(const std::string& session,
                           const OpenParams& params,
                           std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kOpen;
  request.session = session;
  request.open = params;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

Client::AdvanceResult Client::advance(const std::string& session,
                                      std::uint64_t rounds,
                                      std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kAdvance;
  request.session = session;
  request.advance_rounds = rounds;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.status != Status::kDeadline &&
      response.status != Status::kBackpressure &&
      response.status != Status::kUnavailable) {
    check(response);
  }
  AdvanceResult result;
  result.session = response.session;
  result.deadline_expired = response.status == Status::kDeadline;
  result.backpressure = response.status == Status::kBackpressure;
  result.unavailable = response.status == Status::kUnavailable;
  return result;
}

Client::IngestResult Client::ingest(
    const std::string& session,
    const std::vector<IngestObservation>& observations,
    std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kIngest;
  request.session = session;
  request.observations = observations;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.status != Status::kDeadline &&
      response.status != Status::kBackpressure &&
      response.status != Status::kUnavailable) {
    check(response);
  }
  IngestResult result;
  result.session = response.session;
  result.redesigned = response.redesigned;
  result.deadline_expired = response.status == Status::kDeadline;
  result.backpressure = response.status == Status::kBackpressure;
  result.unavailable = response.status == Status::kUnavailable;
  return result;
}

std::vector<contract::Contract> Client::contracts(const std::string& session,
                                                  std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kContracts;
  request.session = session;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return std::move(response.contracts);
}

SessionStatus Client::status(const std::string& session,
                             std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kStatus;
  request.session = session;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

SessionStatus Client::close_session(const std::string& session,
                                    std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kClose;
  request.session = session;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

std::string Client::metrics(bool prometheus) {
  Request request;
  request.op = Op::kMetrics;
  request.metrics_prometheus = prometheus;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.text;
}

HealthInfo Client::health() {
  Request request;
  request.op = Op::kHealth;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.health;
}

SessionStatus Client::restore(const std::string& session,
                              const std::string& checkpoint_blob,
                              std::uint32_t deadline_ms) {
  Request request;
  request.op = Op::kRestore;
  request.session = session;
  request.checkpoint_blob = checkpoint_blob;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.session;
}

void Client::shutdown_server() {
  Request request;
  request.op = Op::kShutdown;
  Response response = roundtrip(std::move(request));
  check(response);
}

std::string Client::join_shard(const ShardTarget& shard) {
  Request request;
  request.op = Op::kJoin;
  request.shard = shard;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.text;
}

std::string Client::retire_shard(const std::string& name) {
  Request request;
  request.op = Op::kRetire;
  request.shard.name = name;
  Response response = roundtrip(std::move(request));
  check(response);
  return response.text;
}

}  // namespace ccd::serve
