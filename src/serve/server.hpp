// Socket front end of the serve engine: the accept loop and connection
// handlers that `ccdd` (and in-process tests/benches) run.
//
// One thread accepts (poll-based, so stop() is observed within
// kAcceptPollMs without signals); each connection gets a handler thread
// that reads framed requests and submits them to the engine. Responses
// are written under a per-connection mutex — the engine may answer out of
// executor threads concurrently, and frames must never interleave.
// Request pipelining falls out naturally: a client may send several
// requests before reading responses; each response carries the echoed
// request_id for correlation.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "util/socket.hpp"

namespace ccd::serve {

struct ServerConfig {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_socket;
  /// TCP port; negative disables, 0 picks an ephemeral port.
  int tcp_port = -1;
  /// IPv4 address the TCP listener binds. The loopback default keeps the
  /// daemon private to the host; binding wider pairs with auth_token.
  std::string tcp_host = "127.0.0.1";
  /// Shared secret for the CSRV v3 token handshake. When set, non-loopback
  /// TCP peers must authenticate before any other op. Empty disables.
  std::string auth_token;
  /// Require the handshake on every TCP connection, loopback included
  /// (deployments where localhost is not trusted; also the testable knob).
  bool require_auth = false;
  /// Per-transfer deadline once a frame has started (header mid-read,
  /// payload bytes, or an outbound response): a half-dead peer can pin a
  /// handler thread at most this long before only its connection is
  /// dropped. <= 0 disables.
  int io_timeout_ms = 10'000;
  /// Idle deadline between frames: how long a connected-but-silent client
  /// may hold its handler thread. <= 0 (default) keeps connections open
  /// indefinitely — idle clients are cheap; stalled transfers are not.
  int idle_timeout_ms = 0;

  void validate() const;
};

class Server {
 public:
  /// Binds listeners immediately (so callers can read tcp_port() before
  /// start()) and starts accepting. Throws ccd::ConfigError /
  /// ccd::DataError on bad config or bind failure.
  Server(ServerConfig config, Engine& engine);
  ~Server();  ///< stop()s.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stop accepting, close all connections, join handler threads. Does
  /// NOT stop the engine (the owner decides when to drain it). Idempotent.
  void stop();

  /// Bound TCP port (resolved when config asked for port 0); -1 when the
  /// TCP listener is disabled.
  int tcp_port() const { return tcp_port_; }

 private:
  struct Connection;
  struct Handler {
    std::thread thread;
    std::shared_ptr<Connection> connection;
  };

  void accept_loop(util::Socket* listener);
  void handle_connection(std::shared_ptr<Connection> connection);
  void reap_finished_handlers_locked();

  ServerConfig config_;
  Engine& engine_;
  util::Socket unix_listener_;
  util::Socket tcp_listener_;
  int tcp_port_ = -1;

  std::atomic<bool> stopping_{false};
  std::vector<std::thread> accept_threads_;

  std::mutex handlers_mutex_;
  std::vector<Handler> handlers_;
};

}  // namespace ccd::serve
