// serve::Gateway — fault-tolerant front end for a fleet of ccdd shards.
//
// The gateway speaks the same CSRV framed protocol on both sides: clients
// connect to it exactly as they would to a single ccdd, and it
// consistent-hashes each session id onto one of N shards (FNV-1a ring
// with virtual nodes), forwarding session-scoped requests over pooled
// shard connections. Server-wide ops answer locally: ping identifies the
// gateway, metrics dumps the gateway process registry (ccd.gateway.*),
// health aggregates the latest per-shard probes, shutdown broadcasts to
// every live shard and then drains the gateway itself.
//
// Failure handling is the point of the layer:
//  * Liveness — a background prober sends a lightweight health frame to
//    every shard on a cadence; shard dials go through util::with_retry
//    (bounded attempts, exponential backoff, deterministic jitter) and
//    carry the `gateway.shard_connect` fault-injection site.
//  * Failover — when a shard dies (kill -9, crash, or an operator
//    retire), its ring points are dropped and every session checkpoint in
//    its checkpoint directory is scavenged: the raw SCKP/ISES frame bytes
//    are shipped to the surviving owner via the restore op, which installs
//    the session bitwise-identically (the checkpoint frames make sessions
//    fully portable). In-flight requests to the dead shard retry and land
//    on the new owner; advance is budget-capped, so replay after an
//    ambiguous failure cannot over-run a campaign (ingest replay is
//    at-least-once — see docs/API.md).
//  * Backpressure — at most max_inflight forwarded requests run at once;
//    beyond that the gateway answers kBackpressure immediately without
//    buffering, so overload degrades throughput, never memory. Shard-side
//    backpressure passes through untouched.
//
// Every observable lands under `ccd.gateway.*`, and the counters
// reconcile exactly (tested in bench_gateway_chaos): requests ==
// responses, and responses == local + backpressure + rejected +
// (forwards - forward_retries) + forward_failures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "util/retry.hpp"
#include "util/socket.hpp"

namespace ccd::serve {

/// One backend ccdd shard: where to dial it and where it keeps its
/// session checkpoints (scavenged on failover).
struct ShardSpec {
  /// Unique label, used in routing, errors, and retire_shard().
  std::string name;
  /// Dial target: Unix-domain socket path, or loopback TCP when empty.
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
  /// The shard's checkpoint_dir. Required for failover handoff; empty
  /// means this shard's sessions die with it.
  std::string checkpoint_dir;

  void validate() const;
};

struct GatewayConfig {
  std::vector<ShardSpec> shards;

  /// Gateway's own listeners (same semantics as ServerConfig).
  std::string unix_socket;
  int tcp_port = -1;

  /// Concurrent forwarded requests beyond which the gateway answers
  /// kBackpressure immediately (overload degrades throughput, not memory).
  std::size_t max_inflight = 256;
  /// Ring points per shard; more points smooth the key distribution.
  std::size_t virtual_nodes = 64;
  /// Per-transfer deadline on downstream (client) connections and shard
  /// frame payloads. <= 0 disables.
  int io_timeout_ms = 10'000;
  /// Idle deadline between frames on client connections. <= 0 disables.
  int idle_timeout_ms = 0;
  /// How long to wait for a shard's response to a forwarded request (the
  /// shard may be legitimately busy simulating). <= 0 disables.
  int forward_timeout_ms = 60'000;
  /// Shard health-probe cadence; <= 0 disables the prober thread (death
  /// is then detected only by failing traffic).
  int health_interval_ms = 500;
  /// Retry/backoff for shard dials (util::with_retry).
  util::RetryPolicy connect_retry;

  void validate() const;
};

class Gateway {
 public:
  /// Binds listeners, connects nothing eagerly, starts accepting and
  /// (when configured) probing. Throws ccd::ConfigError / ccd::DataError
  /// on bad config or bind failure.
  explicit Gateway(GatewayConfig config);
  ~Gateway();  ///< stop()s.

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Stop accepting, close client connections and shard pools, join all
  /// threads. Does not touch the shards themselves. Idempotent.
  void stop();

  /// Handle one decoded request exactly as a connection would (in-process
  /// embedding and tests; also the transport-independent core of the
  /// socket path).
  Response handle(const Request& request);

  /// Operator-driven graceful leave: `name` must already have drained and
  /// checkpointed (its daemon stopped); its sessions are handed off to
  /// the surviving shards. Throws ccd::ConfigError on an unknown name.
  void retire_shard(const std::string& name);

  /// Name of the shard a session id currently routes to (tests/tools).
  std::string shard_for(const std::string& session) const;

  std::size_t alive_shard_count() const;
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Bound TCP port (resolved when config asked for port 0); -1 when the
  /// TCP listener is disabled.
  int tcp_port() const { return tcp_port_; }

 private:
  struct Shard;
  struct Connection;
  struct Handler {
    std::thread thread;
    std::shared_ptr<Connection> connection;
  };

  void accept_loop(util::Socket* listener);
  void handle_connection(std::shared_ptr<Connection> connection);
  void reap_finished_handlers_locked();
  void prober_loop();

  void rebuild_ring_locked();
  Shard* route(const std::string& session) const;
  util::Socket acquire(Shard& shard);
  void release(Shard& shard, util::Socket socket);
  util::Socket dial(Shard& shard);
  /// One synchronous request/response on a pooled shard connection.
  Response roundtrip(Shard& shard, const Request& request);

  Response forward(const Request& request);
  Response local_health();
  /// kHealth roundtrip; caches the result on the shard. False on failure.
  bool probe_shard(Shard& shard);
  void broadcast_shutdown();
  /// Declare a shard dead and hand its checkpointed sessions to the
  /// survivors. Serialized by failover_mutex_; concurrent detections of
  /// the same death collapse into one failover.
  void on_shard_down(Shard& shard, const std::string& reason);
  void handoff_locked(Shard& dead);

  GatewayConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex ring_mutex_;
  std::map<std::uint64_t, Shard*> ring_;
  /// Bumped after each completed failover; forwards use it to tell a
  /// genuinely unknown session from one that just moved shards.
  std::atomic<std::uint64_t> ring_version_{0};
  std::mutex failover_mutex_;

  util::Socket unix_listener_;
  util::Socket tcp_listener_;
  int tcp_port_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> internal_request_id_{1};
  std::atomic<std::size_t> inflight_{0};
  std::vector<std::thread> accept_threads_;

  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;

  std::mutex handlers_mutex_;
  std::vector<Handler> handlers_;
};

}  // namespace ccd::serve
