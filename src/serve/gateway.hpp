// serve::Gateway — fault-tolerant front end for a fleet of ccdd shards.
//
// The gateway speaks the same CSRV framed protocol on both sides: clients
// connect to it exactly as they would to a single ccdd, and it
// consistent-hashes each session id onto one of N shards (FNV-1a ring
// with virtual nodes), forwarding session-scoped requests over pooled
// shard connections. Server-wide ops answer locally: ping identifies the
// gateway, metrics dumps the gateway process registry (ccd.gateway.*),
// health aggregates the latest per-shard probes, shutdown broadcasts to
// every live shard and then drains the gateway itself.
//
// Failure handling is the point of the layer:
//  * Liveness — a background prober sends a lightweight health frame to
//    every shard on a cadence; shard dials go through util::with_retry
//    (bounded attempts, exponential backoff, deterministic jitter) and
//    carry the `gateway.shard_connect` fault-injection site.
//  * Failover — when a shard dies (kill -9, crash, or an operator
//    retire), its ring points are dropped and every session checkpoint in
//    its checkpoint directory is scavenged: the raw SCKP/ISES frame bytes
//    are shipped to the surviving owner via the restore op, which installs
//    the session bitwise-identically (the checkpoint frames make sessions
//    fully portable). In-flight requests to the dead shard retry and land
//    on the new owner; advance is budget-capped, so replay after an
//    ambiguous failure cannot over-run a campaign (ingest replay is
//    at-least-once — see docs/API.md).
//  * Backpressure — at most max_inflight forwarded requests run at once;
//    beyond that the gateway answers kBackpressure immediately without
//    buffering, so overload degrades throughput, never memory. Shard-side
//    backpressure passes through untouched.
//
// Every observable lands under `ccd.gateway.*`, and the counters
// reconcile exactly (tested in bench_gateway_chaos): requests ==
// responses, and responses == local + backpressure + rejected +
// (forwards - forward_retries) + forward_failures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "util/retry.hpp"
#include "util/socket.hpp"

namespace ccd::serve {

/// One backend ccdd shard: where to dial it and where it keeps its
/// session checkpoints (scavenged on failover).
struct ShardSpec {
  /// Unique label, used in routing, errors, and retire_shard().
  std::string name;
  /// Dial target: Unix-domain socket path, or loopback TCP when empty.
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int tcp_port = -1;
  /// The shard's checkpoint_dir. Required for failover handoff; empty
  /// means this shard's sessions die with it.
  std::string checkpoint_dir;

  void validate() const;

  /// True when two specs dial the same endpoint with the same checkpoint
  /// directory (the idempotence test for a repeated join).
  bool same_target(const ShardSpec& other) const;

  /// Parse the tools' shard grammar:
  ///   NAME=unix:SOCKET[@CKPT_DIR]  |  NAME=tcp:HOST:PORT[@CKPT_DIR]
  /// Shared by ccd-gateway (startup flags) and ccdctl (op=join). Throws
  /// ccd::ConfigError on malformed input.
  static ShardSpec parse(const std::string& text);

  /// Wire conversions for the kJoin admin frame.
  ShardTarget to_target() const;
  static ShardSpec from_target(const ShardTarget& target);
};

struct GatewayConfig {
  std::vector<ShardSpec> shards;

  /// Gateway's own listeners (same semantics as ServerConfig).
  std::string unix_socket;
  int tcp_port = -1;

  /// Concurrent forwarded requests beyond which the gateway answers
  /// kBackpressure immediately (overload degrades throughput, not memory).
  std::size_t max_inflight = 256;
  /// Ring points per shard; more points smooth the key distribution.
  std::size_t virtual_nodes = 64;
  /// Per-transfer deadline on downstream (client) connections and shard
  /// frame payloads. <= 0 disables.
  int io_timeout_ms = 10'000;
  /// Idle deadline between frames on client connections. <= 0 disables.
  int idle_timeout_ms = 0;
  /// How long to wait for a shard's response to a forwarded request (the
  /// shard may be legitimately busy simulating). <= 0 disables.
  int forward_timeout_ms = 60'000;
  /// Shard health-probe cadence; <= 0 disables the prober thread (death
  /// is then detected only by failing traffic).
  int health_interval_ms = 500;
  /// Retry/backoff for shard dials (util::with_retry).
  util::RetryPolicy connect_retry;
  /// Shared secret for the CSRV v3 token handshake. When set, non-loopback
  /// TCP clients must authenticate, and shard dials run the client side of
  /// the handshake (so shards may require the same token). Empty disables.
  std::string auth_token;
  /// Require the handshake on every TCP connection, loopback included
  /// (deployments where localhost is not trusted; also the testable knob).
  bool require_auth = false;

  void validate() const;
};

class Gateway {
 public:
  /// Binds listeners, connects nothing eagerly, starts accepting and
  /// (when configured) probing. Throws ccd::ConfigError / ccd::DataError
  /// on bad config or bind failure.
  explicit Gateway(GatewayConfig config);
  ~Gateway();  ///< stop()s.

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Stop accepting, close client connections and shard pools, join all
  /// threads. Does not touch the shards themselves. Idempotent.
  void stop();

  /// Handle one decoded request exactly as a connection would (in-process
  /// embedding and tests; also the transport-independent core of the
  /// socket path).
  Response handle(const Request& request);

  /// Outcome of a membership admin op (join / retire). Admin races —
  /// retiring an unknown name, joining a name that is live on a different
  /// endpoint — report Status::kUnavailable rather than throwing: under
  /// dynamic membership they are races with other operators, not config
  /// errors.
  struct AdminResult {
    Status status = Status::kOk;
    std::string message;
    std::uint64_t ring_version = 0;  ///< ring version after the op
    std::size_t sessions_moved = 0;  ///< join: sessions whose owner changed
  };

  /// Admit a shard into the ring at runtime — a brand-new name, a rejoin
  /// of a retired one (possibly on a new endpoint), or an idempotent
  /// repeat of a live one. The spec runs the same validation as startup
  /// shards (throws ccd::ConfigError; the kJoin frame path reports it as
  /// a status). On success the ring version is bumped and only the
  /// sessions whose ring owner changed are moved (export on the old
  /// owner, restore on the new one); campaigns continue bitwise.
  AdminResult admit_shard(const ShardSpec& spec);

  /// Operator-driven graceful leave: `name` should have drained and
  /// checkpointed (its daemon stopped); its sessions are handed off to
  /// the surviving shards. Idempotent: retiring an already-retired shard
  /// is kOk, an unknown name reports kUnavailable (a race, not an error).
  AdminResult retire_shard(const std::string& name);

  /// Name of the shard a session id currently routes to (tests/tools).
  /// Throws ccd::ConfigError when no shard is alive.
  std::string shard_for(const std::string& session) const;

  /// Current routing-table version (bumped by every failover, join, and
  /// retire). Exposed for ring-ownership accounting in tests.
  std::uint64_t ring_version() const {
    return ring_version_.load(std::memory_order_acquire);
  }

  std::size_t alive_shard_count() const;
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  /// Bound TCP port (resolved when config asked for port 0); -1 when the
  /// TCP listener is disabled.
  int tcp_port() const { return tcp_port_; }

 private:
  struct Shard;
  struct Connection;
  struct Handler {
    std::thread thread;
    std::shared_ptr<Connection> connection;
  };

  void accept_loop(util::Socket* listener);
  void handle_connection(std::shared_ptr<Connection> connection);
  void reap_finished_handlers_locked();
  void prober_loop();

  void rebuild_ring_locked();
  /// Current ring owner for a session id; nullptr when no shard is alive
  /// (a transient outage — callers answer Status::kUnavailable).
  Shard* route(const std::string& session) const;
  /// Stable raw pointers to every shard (shards are created-only; the
  /// vector may grow concurrently under admit_shard, so iteration goes
  /// through this lock-protected copy).
  std::vector<Shard*> shard_snapshot() const;
  Shard* find_shard(const std::string& name) const;
  util::Socket acquire(Shard& shard);
  void release(Shard& shard, util::Socket socket);
  util::Socket dial(Shard& shard);
  /// One synchronous request/response on a pooled shard connection.
  Response roundtrip(Shard& shard, const Request& request);

  Response forward(const Request& request);
  Response local_health();
  /// kHealth roundtrip; caches the result on the shard. False on failure.
  bool probe_shard(Shard& shard);
  void broadcast_shutdown();
  /// Declare a shard dead and hand its checkpointed sessions to the
  /// survivors. Serialized by failover_mutex_; concurrent detections of
  /// the same death collapse into one failover.
  void on_shard_down(Shard& shard, const std::string& reason);
  void handoff_locked(Shard& dead);
  /// Move one session between shards (kExport old owner, kRestore new
  /// owner). Failover-mutex holder only. Throws on failure after trying
  /// to put the exported session back.
  void move_session_locked(const std::string& id, Shard& from, Shard& to);
  /// Last-resort routing repair: a session answering "no open session" at
  /// its ring owner may be stranded on another shard (e.g. an open that
  /// raced a membership change). Scan the other live shards and pull it
  /// to the current ring owner. Returns true when found and moved.
  bool recover_stray(const std::string& session);

  GatewayConfig config_;
  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex ring_mutex_;
  std::map<std::uint64_t, Shard*> ring_;
  /// Bumped after each completed failover / join / retire; forwards use
  /// it to tell a genuinely unknown session from one that just moved.
  std::atomic<std::uint64_t> ring_version_{0};
  /// True while a join/failover is re-homing sessions: forwards treat
  /// "no open session" as retryable and serialize behind failover_mutex_
  /// so every in-flight request lands exactly once on the new owner.
  std::atomic<bool> rebalance_active_{false};
  std::mutex failover_mutex_;

  util::Socket unix_listener_;
  util::Socket tcp_listener_;
  int tcp_port_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> internal_request_id_{1};
  std::atomic<std::size_t> inflight_{0};
  std::vector<std::thread> accept_threads_;

  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;

  std::mutex handlers_mutex_;
  std::vector<Handler> handlers_;
};

}  // namespace ccd::serve
