#include "serve/gateway.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <utility>

#include "serve/session.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"

namespace ccd::serve {

namespace metrics = util::metrics;

namespace {

/// Accept poll granularity: how quickly stop() is observed.
constexpr int kAcceptPollMs = 200;
/// Route-and-forward attempts per request. Each retry re-routes, so an
/// attempt after a failover lands on the session's new owner.
constexpr std::size_t kMaxForwardAttempts = 4;
constexpr const char* kBanner = "ccd-gateway/3";

/// All `ccd.gateway.*` instruments. The reconciliation invariant (tested
/// by bench_gateway_chaos): requests == responses, and
/// responses == local + backpressure + rejected
///              + (forwards - forward_retries) + forward_failures —
/// every admitted request is answered exactly once, and every answer is
/// attributable.
struct GatewayMetrics {
  metrics::Counter& requests;
  metrics::Counter& responses;
  metrics::Counter& local;
  metrics::Counter& backpressure;
  metrics::Counter& rejected;
  metrics::Counter& forwards;
  metrics::Counter& forward_retries;
  metrics::Counter& forward_failures;
  metrics::Counter& failovers;
  metrics::Counter& joins;
  metrics::Counter& sessions_handed_off;
  metrics::Counter& sessions_restored;
  metrics::Counter& handoff_failures;
  metrics::Counter& strays_recovered;
  metrics::Gauge& shards_alive;
  metrics::Gauge& inflight;
  metrics::Histogram& forward_us;

  static GatewayMetrics& instance() {
    static GatewayMetrics m = [] {
      metrics::MetricsRegistry& reg = metrics::registry();
      return GatewayMetrics{reg.counter("ccd.gateway.requests"),
                            reg.counter("ccd.gateway.responses"),
                            reg.counter("ccd.gateway.local"),
                            reg.counter("ccd.gateway.backpressure"),
                            reg.counter("ccd.gateway.rejected"),
                            reg.counter("ccd.gateway.forwards"),
                            reg.counter("ccd.gateway.forward_retries"),
                            reg.counter("ccd.gateway.forward_failures"),
                            reg.counter("ccd.gateway.failovers"),
                            reg.counter("ccd.gateway.joins"),
                            reg.counter("ccd.gateway.sessions_handed_off"),
                            reg.counter("ccd.gateway.sessions_restored"),
                            reg.counter("ccd.gateway.handoff_failures"),
                            reg.counter("ccd.gateway.strays_recovered"),
                            reg.gauge("ccd.gateway.shards_alive"),
                            reg.gauge("ccd.gateway.inflight"),
                            reg.histogram("ccd.gateway.forward_us")};
    }();
    return m;
  }
};

/// 64-bit finalizer (murmur3) on top of FNV-1a: FNV's high bits avalanche
/// poorly on short similar strings ("shard0#1" vs "shard1#1"), which
/// clusters ring points by shard instead of interleaving them. The mix
/// spreads them uniformly over the key space.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t ring_hash(const std::string& key) {
  return mix64(util::fnv1a64(key.data(), key.size()));
}

bool strip_suffix(const std::string& name, const std::string& suffix,
                  std::string* stem) {
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  *stem = name.substr(0, name.size() - suffix.size());
  return true;
}

}  // namespace

void ShardSpec::validate() const {
  if (name.empty()) throw ConfigError("every shard needs a name");
  if (unix_socket.empty() && tcp_port < 0) {
    throw ConfigError("shard '" + name +
                      "' needs a unix socket path or a tcp port");
  }
}

bool ShardSpec::same_target(const ShardSpec& other) const {
  return unix_socket == other.unix_socket && host == other.host &&
         tcp_port == other.tcp_port && checkpoint_dir == other.checkpoint_dir;
}

ShardSpec ShardSpec::parse(const std::string& text) {
  ShardSpec shard;
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ConfigError("bad shard spec '" + text + "' (want NAME=TARGET)");
  }
  shard.name = text.substr(0, eq);
  std::string target = text.substr(eq + 1);
  const std::size_t at = target.rfind('@');
  if (at != std::string::npos) {
    shard.checkpoint_dir = target.substr(at + 1);
    target = target.substr(0, at);
  }
  if (target.rfind("unix:", 0) == 0) {
    shard.unix_socket = target.substr(5);
  } else if (target.rfind("tcp:", 0) == 0) {
    const std::string addr = target.substr(4);
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      throw ConfigError("bad shard spec '" + text + "' (want tcp:HOST:PORT)");
    }
    shard.host = addr.substr(0, colon);
    char* end = nullptr;
    shard.tcp_port =
        static_cast<int>(std::strtol(addr.c_str() + colon + 1, &end, 10));
    if (end == nullptr || *end != '\0' || shard.tcp_port < 0) {
      throw ConfigError("bad shard port in '" + text + "'");
    }
  } else {
    throw ConfigError("bad shard spec '" + text +
                      "' (target must start with unix: or tcp:)");
  }
  shard.validate();
  return shard;
}

ShardTarget ShardSpec::to_target() const {
  ShardTarget target;
  target.name = name;
  target.unix_socket = unix_socket;
  target.host = host;
  target.tcp_port = tcp_port;
  target.checkpoint_dir = checkpoint_dir;
  return target;
}

ShardSpec ShardSpec::from_target(const ShardTarget& target) {
  ShardSpec spec;
  spec.name = target.name;
  spec.unix_socket = target.unix_socket;
  spec.host = target.host.empty() ? "127.0.0.1" : target.host;
  spec.tcp_port = target.tcp_port;
  spec.checkpoint_dir = target.checkpoint_dir;
  return spec;
}

void GatewayConfig::validate() const {
  CCD_CHECK_MSG(!shards.empty(), "gateway needs at least one shard");
  CCD_CHECK_MSG(!unix_socket.empty() || tcp_port >= 0,
                "gateway needs a unix socket path or a tcp port");
  CCD_CHECK_MSG(max_inflight >= 1, "max_inflight must be >= 1");
  CCD_CHECK_MSG(virtual_nodes >= 1, "virtual_nodes must be >= 1");
  connect_retry.validate();
  std::set<std::string> names;
  for (const ShardSpec& shard : shards) {
    shard.validate();
    CCD_CHECK_MSG(names.insert(shard.name).second,
                  "duplicate shard name '" + shard.name + "'");
  }
}

struct Gateway::Shard {
  ShardSpec spec;
  std::size_t index = 0;
  std::atomic<bool> alive{true};

  /// Idle connections to this shard, reused across forwards.
  std::mutex pool_mutex;
  std::vector<util::Socket> pool;

  /// Latest health probe result (prober thread or synchronous probe).
  std::mutex health_mutex;
  HealthInfo last_health;
  bool health_valid = false;
};

struct Gateway::Connection {
  util::Socket socket;
  /// Accepted on the Unix listener: the token handshake is never required
  /// there (filesystem permissions are the access control).
  bool via_unix = false;
  std::atomic<bool> finished{false};
};

Gateway::Gateway(GatewayConfig config) : config_(std::move(config)) {
  config_.validate();
  GatewayMetrics& m = GatewayMetrics::instance();
  shards_.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->spec = config_.shards[i];
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    rebuild_ring_locked();
  }
  m.shards_alive.set(static_cast<double>(shards_.size()));

  if (!config_.unix_socket.empty()) {
    unix_listener_ = util::Socket::listen_unix(config_.unix_socket);
  }
  if (config_.tcp_port >= 0) {
    tcp_listener_ = util::Socket::listen_tcp(config_.tcp_port);
    tcp_port_ = tcp_listener_.local_port();
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&unix_listener_); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { accept_loop(&tcp_listener_); });
  }
  if (config_.health_interval_ms > 0) {
    prober_ = std::thread([this] { prober_loop(); });
  }
}

Gateway::~Gateway() { stop(); }

void Gateway::stop() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();

  unix_listener_.shutdown_both();
  tcp_listener_.shutdown_both();
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();

  std::vector<Handler> handlers;
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (Handler& handler : handlers) {
    handler.connection->socket.shutdown_both();
    handler.thread.join();
  }
  for (Shard* shard : shard_snapshot()) {
    std::lock_guard<std::mutex> lock(shard->pool_mutex);
    shard->pool.clear();
  }
  if (!config_.unix_socket.empty()) {
    ::unlink(config_.unix_socket.c_str());
  }
}

// ---------------------------------------------------------------------------
// Routing: FNV-1a consistent-hash ring over the alive shards.

void Gateway::rebuild_ring_locked() {
  ring_.clear();
  for (Shard* shard : shard_snapshot()) {
    if (!shard->alive.load(std::memory_order_relaxed)) continue;
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v) {
      const std::string point = shard->spec.name + "#" + std::to_string(v);
      ring_[ring_hash(point)] = shard;
    }
  }
}

Gateway::Shard* Gateway::route(const std::string& session) const {
  std::lock_guard<std::mutex> lock(ring_mutex_);
  if (ring_.empty()) return nullptr;
  auto it = ring_.lower_bound(ring_hash(session));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<Gateway::Shard*> Gateway::shard_snapshot() const {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  std::vector<Shard*> snapshot;
  snapshot.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    snapshot.push_back(shard.get());
  }
  return snapshot;
}

Gateway::Shard* Gateway::find_shard(const std::string& name) const {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->spec.name == name) return shard.get();
  }
  return nullptr;
}

std::string Gateway::shard_for(const std::string& session) const {
  Shard* shard = route(session);
  if (shard == nullptr) {
    throw ConfigError("no alive shard to route session '" + session + "'");
  }
  return shard->spec.name;
}

std::size_t Gateway::alive_shard_count() const {
  std::size_t alive = 0;
  for (Shard* shard : shard_snapshot()) {
    if (shard->alive.load(std::memory_order_relaxed)) ++alive;
  }
  return alive;
}

// ---------------------------------------------------------------------------
// Shard connections.

util::Socket Gateway::dial(Shard& shard) {
  return util::with_retry(
      "gateway.shard_connect", config_.connect_retry,
      [this, &shard](std::size_t attempt) {
        CCD_FAULT_POINT(
            "gateway.shard_connect",
            (static_cast<std::uint64_t>(shard.index) << 16) | attempt,
            DataError);
        util::Socket socket =
            shard.spec.unix_socket.empty()
                ? util::Socket::connect_tcp(shard.spec.host,
                                            shard.spec.tcp_port)
                : util::Socket::connect_unix(shard.spec.unix_socket);
        // Shards may require the same token the gateway's own clients use
        // (non-loopback TCP fleet); no-op when no token is configured.
        client_handshake(socket, config_.auth_token, config_.io_timeout_ms);
        return socket;
      });
}

util::Socket Gateway::acquire(Shard& shard) {
  {
    std::lock_guard<std::mutex> lock(shard.pool_mutex);
    if (!shard.pool.empty()) {
      util::Socket socket = std::move(shard.pool.back());
      shard.pool.pop_back();
      return socket;
    }
  }
  return dial(shard);
}

void Gateway::release(Shard& shard, util::Socket socket) {
  if (!socket.valid() || stopping_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(shard.pool_mutex);
  shard.pool.push_back(std::move(socket));
}

Response Gateway::roundtrip(Shard& shard, const Request& request) {
  // On any failure the connection is simply destroyed (not released):
  // a half-written frame makes it unusable.
  util::Socket connection = acquire(shard);
  send_message(connection, encode_request(request), config_.io_timeout_ms);
  const std::optional<std::string> payload = recv_message(
      connection, config_.forward_timeout_ms, config_.io_timeout_ms);
  if (!payload) {
    throw DataError("shard '" + shard.spec.name +
                    "' closed the connection mid-request");
  }
  Response response = decode_response(*payload);
  if (response.request_id != request.request_id) {
    throw DataError("shard '" + shard.spec.name +
                    "' response correlation mismatch (sent " +
                    std::to_string(request.request_id) + ", got " +
                    std::to_string(response.request_id) + ")");
  }
  release(shard, std::move(connection));
  return response;
}

// ---------------------------------------------------------------------------
// Request handling.

Response Gateway::forward(const Request& request) {
  GatewayMetrics& m = GatewayMetrics::instance();
  metrics::ScopedTimer timer(&m.forward_us);
  std::string failure = "no forward attempt made";
  bool tried_stray_recovery = false;
  for (std::size_t attempt = 0; attempt < kMaxForwardAttempts; ++attempt) {
    if (attempt > 0 || rebalance_active_.load(std::memory_order_acquire)) {
      // Barrier: wait out any in-progress failover or join rebalance so
      // the request routes on the post-handoff ring and the moved session
      // is already on its new owner.
      std::lock_guard<std::mutex> barrier(failover_mutex_);
    }
    const std::uint64_t ring_version =
        ring_version_.load(std::memory_order_acquire);
    Shard* shard = route(request.session);
    if (shard == nullptr) {
      // Every shard is down. That is a transient fleet outage, not a bad
      // request: report it retryable so clients back off and reissue once
      // a shard rejoins.
      m.forward_failures.add(1);
      Response response;
      response.status = Status::kUnavailable;
      response.message = "no alive shard to route session '" +
                         request.session + "' (retry after a shard rejoins)";
      return response;
    }
    try {
      m.forwards.add(1);
      Response response = roundtrip(*shard, request);
      if (response.status == Status::kConfigError &&
          response.message.find("no open session") != std::string::npos) {
        if (ring_version_.load(std::memory_order_acquire) != ring_version ||
            rebalance_active_.load(std::memory_order_acquire)) {
          // The ring moved (or is moving) while this request was in
          // flight: what looks like an unknown session may just have been
          // handed to another shard. Re-route and reissue.
          m.forward_retries.add(1);
          failure = response.message;
          continue;
        }
        if (!tried_stray_recovery && recover_stray(request.session)) {
          // Stable ring but the session was stranded off its ring owner
          // (an open that raced a membership change); it has been pulled
          // home, reissue there.
          tried_stray_recovery = true;
          m.forward_retries.add(1);
          failure = response.message;
          continue;
        }
      }
      return response;
    } catch (const ccd::Error& e) {
      m.forward_retries.add(1);
      failure = e.what();
      // Distinguish a broken connection from a dead shard: a fresh dial
      // succeeding means only this connection failed — retry. A dial
      // failing (after its own retry/backoff budget) declares the shard
      // down and hands its sessions off before the next attempt.
      try {
        release(*shard, dial(*shard));
      } catch (const ccd::Error&) {
        on_shard_down(*shard, failure);
      }
    }
  }
  m.forward_failures.add(1);
  Response response;
  response.status = Status::kDataError;
  response.message = "forward of " + std::string(to_string(request.op)) +
                     " for session '" + request.session +
                     "' failed: " + failure;
  return response;
}

Response Gateway::handle(const Request& request) {
  GatewayMetrics& m = GatewayMetrics::instance();
  m.requests.add(1);
  Response response;
  try {
    switch (request.op) {
      case Op::kPing:
        response.text = kBanner;
        m.local.add(1);
        break;
      case Op::kMetrics:
        response.text = request.metrics_prometheus ? metrics::to_prometheus()
                                                   : metrics::to_json();
        m.local.add(1);
        break;
      case Op::kHealth:
        response = local_health();
        m.local.add(1);
        break;
      case Op::kShutdown:
        broadcast_shutdown();
        shutdown_requested_.store(true, std::memory_order_release);
        m.local.add(1);
        break;
      case Op::kJoin: {
        // Admin frame: spec validation errors surface as a status on this
        // response (the catch below), never as a gateway-thread crash.
        const AdminResult result =
            admit_shard(ShardSpec::from_target(request.shard));
        response.status = result.status;
        response.message = result.message;
        response.text = "ring_version=" + std::to_string(result.ring_version) +
                        " sessions_moved=" +
                        std::to_string(result.sessions_moved);
        m.local.add(1);
        break;
      }
      case Op::kRetire: {
        const AdminResult result = retire_shard(
            request.shard.name.empty() ? request.session : request.shard.name);
        response.status = result.status;
        response.message = result.message;
        response.text = "ring_version=" + std::to_string(result.ring_version);
        m.local.add(1);
        break;
      }
      case Op::kAuth:
        // The handshake is transport-level (consumed by auth_intercept on
        // socket connections); an in-process caller has nothing to prove.
        response.status = Status::kConfigError;
        response.message = "op 'auth' is only meaningful on a socket";
        m.local.add(1);
        break;
      default: {
        // Session-scoped op: forward, under the inflight cap.
        if (shutdown_requested_.load(std::memory_order_acquire)) {
          response.status = Status::kShuttingDown;
          response.message = "gateway is draining";
          m.rejected.add(1);
          break;
        }
        const std::size_t inflight =
            inflight_.fetch_add(1, std::memory_order_acq_rel);
        if (inflight >= config_.max_inflight) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          response.status = Status::kBackpressure;
          response.message = "gateway at max_inflight (" +
                             std::to_string(config_.max_inflight) + ")";
          m.backpressure.add(1);
          break;
        }
        m.inflight.set(static_cast<double>(inflight + 1));
        try {
          response = forward(request);
        } catch (...) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          throw;
        }
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
    }
  } catch (const ccd::Error& e) {
    // Defensive: forward() reports failures as responses, so only local
    // handling can land here.
    response.status = status_for(e);
    response.message = e.what();
    m.local.add(1);
  }
  response.request_id = request.request_id;
  m.responses.add(1);
  return response;
}

Response Gateway::local_health() {
  Response response;
  HealthInfo total;
  bool draining = shutdown_requested_.load(std::memory_order_acquire);
  for (Shard* shard : shard_snapshot()) {
    if (!shard->alive.load(std::memory_order_relaxed)) continue;
    if (config_.health_interval_ms <= 0) {
      // No prober: refresh synchronously so health is never stale.
      probe_shard(*shard);
    }
    std::lock_guard<std::mutex> lock(shard->health_mutex);
    if (!shard->health_valid) continue;
    total.sessions_open += shard->last_health.sessions_open;
    total.max_sessions += shard->last_health.max_sessions;
    total.queue_depth += shard->last_health.queue_depth;
    total.queue_capacity += shard->last_health.queue_capacity;
    draining = draining || shard->last_health.draining;
  }
  total.draining = draining;
  response.health = total;
  return response;
}

void Gateway::broadcast_shutdown() {
  for (Shard* shard : shard_snapshot()) {
    if (!shard->alive.load(std::memory_order_relaxed)) continue;
    Request request;
    request.op = Op::kShutdown;
    request.request_id =
        internal_request_id_.fetch_add(1, std::memory_order_relaxed);
    try {
      (void)roundtrip(*shard, request);
    } catch (const ccd::Error&) {
      // Best effort; a shard that is already gone needs no shutdown.
    }
  }
}

// ---------------------------------------------------------------------------
// Liveness and failover.

bool Gateway::probe_shard(Shard& shard) {
  Request request;
  request.op = Op::kHealth;
  request.request_id =
      internal_request_id_.fetch_add(1, std::memory_order_relaxed);
  try {
    const Response response = roundtrip(shard, request);
    if (is_error(response.status)) return false;
    std::lock_guard<std::mutex> lock(shard.health_mutex);
    shard.last_health = response.health;
    shard.health_valid = true;
    return true;
  } catch (const ccd::Error&) {
    return false;
  }
}

void Gateway::prober_loop() {
  const auto interval = std::chrono::milliseconds(config_.health_interval_ms);
  std::unique_lock<std::mutex> lock(prober_mutex_);
  while (!prober_stop_) {
    prober_cv_.wait_for(lock, interval, [this] { return prober_stop_; });
    if (prober_stop_) return;
    lock.unlock();
    for (Shard* shard : shard_snapshot()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (!shard->alive.load(std::memory_order_relaxed)) continue;
      if (!probe_shard(*shard)) {
        on_shard_down(*shard, "health probe failed");
      }
    }
    lock.lock();
  }
}

Gateway::AdminResult Gateway::retire_shard(const std::string& name) {
  AdminResult result;
  Shard* shard = find_shard(name);
  if (shard == nullptr) {
    // Under dynamic membership an unknown name is an admin race (a retire
    // crossing a rename or a double-submit), not a config error: report
    // it without killing the connection or the gateway thread.
    result.status = Status::kUnavailable;
    result.message = "unknown shard '" + name + "' (nothing to retire)";
    result.ring_version = ring_version();
    return result;
  }
  if (!shard->alive.load(std::memory_order_relaxed)) {
    result.message = "shard '" + name + "' already retired";
    result.ring_version = ring_version();
    return result;
  }
  on_shard_down(*shard, "retired by operator");
  result.message = "shard '" + name + "' retired";
  result.ring_version = ring_version();
  return result;
}

Gateway::AdminResult Gateway::admit_shard(const ShardSpec& spec) {
  spec.validate();  // same bar as startup shards; throws ConfigError
  GatewayMetrics& m = GatewayMetrics::instance();
  AdminResult result;
  std::lock_guard<std::mutex> lock(failover_mutex_);

  Shard* shard = find_shard(spec.name);
  if (shard != nullptr && shard->alive.load(std::memory_order_relaxed)) {
    if (shard->spec.same_target(spec)) {
      // Idempotent repeat of a live join.
      result.message = "shard '" + spec.name + "' already admitted";
      result.ring_version = ring_version();
      return result;
    }
    result.status = Status::kUnavailable;
    result.message = "shard name '" + spec.name +
                     "' is live on a different endpoint; retire it first";
    result.ring_version = ring_version();
    return result;
  }
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    owned->spec = spec;
    owned->alive.store(false, std::memory_order_relaxed);
    shard = owned.get();
    std::lock_guard<std::mutex> shards(shards_mutex_);
    owned->index = shards_.size();
    shards_.push_back(std::move(owned));
  } else {
    // Rejoin of a retired name, possibly on a new endpoint.
    shard->spec = spec;
    shard->health_valid = false;
  }

  // Probe before admitting: a shard that cannot answer a health frame
  // never enters the ring (the spec stays parked as retired).
  if (!probe_shard(*shard)) {
    result.status = Status::kUnavailable;
    result.message = "shard '" + spec.name +
                     "' failed its admission probe; is the daemon up?";
    result.ring_version = ring_version();
    return result;
  }

  // Enumerate what the current owners hold (in-memory sessions plus
  // idle-evicted checkpoints) BEFORE the routing flip, so the move list
  // is exactly the pre-join population.
  rebalance_active_.store(true, std::memory_order_release);
  std::vector<std::pair<std::string, Shard*>> holdings;
  std::set<std::string> seen;
  for (Shard* holder : shard_snapshot()) {
    if (holder == shard || !holder->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    Request list;
    list.op = Op::kListSessions;
    list.request_id =
        internal_request_id_.fetch_add(1, std::memory_order_relaxed);
    try {
      const Response response = roundtrip(*holder, list);
      if (is_error(response.status)) continue;
      for (const std::string& id : response.session_ids) {
        if (seen.insert(id).second) holdings.emplace_back(id, holder);
      }
    } catch (const ccd::Error&) {
      // A holder failing its list keeps its sessions; if any of them now
      // belong to the joiner they are pulled by the stray path on first
      // touch instead.
    }
  }

  // Flip routing. Forwards issued from here on land on the post-join
  // ring; "no open session" during the move window is retried behind the
  // failover_mutex_ barrier (rebalance_active_), so in-flight requests
  // land exactly once on the final owner.
  shard->alive.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> ring(ring_mutex_);
    rebuild_ring_locked();
  }
  ring_version_.fetch_add(1, std::memory_order_acq_rel);
  m.joins.add(1);
  m.shards_alive.set(static_cast<double>(alive_shard_count()));

  // Move ONLY the sessions whose ring owner changed (consistent hashing:
  // a join reassigns ~1/N of the keyspace to the joiner and nothing
  // else). Everything staying put is untouched — campaigns there never
  // notice the membership change.
  for (const auto& [id, holder] : holdings) {
    Shard* owner = route(id);
    if (owner == nullptr || owner == holder) continue;
    try {
      move_session_locked(id, *holder, *owner);
      m.sessions_handed_off.add(1);
      m.sessions_restored.add(1);
      ++result.sessions_moved;
    } catch (const ccd::Error&) {
      m.handoff_failures.add(1);
    }
  }
  rebalance_active_.store(false, std::memory_order_release);

  result.message = "shard '" + spec.name + "' admitted";
  result.ring_version = ring_version();
  return result;
}

void Gateway::move_session_locked(const std::string& id, Shard& from,
                                  Shard& to) {
  Request export_request;
  export_request.op = Op::kExport;
  export_request.session = id;
  export_request.request_id =
      internal_request_id_.fetch_add(1, std::memory_order_relaxed);
  const Response exported = roundtrip(from, export_request);
  if (is_error(exported.status)) {
    throw DataError("export of session '" + id + "' from shard '" +
                    from.spec.name + "' failed: " + exported.message);
  }

  Request restore_request;
  restore_request.op = Op::kRestore;
  restore_request.session = id;
  restore_request.checkpoint_blob = exported.checkpoint_blob;
  restore_request.request_id =
      internal_request_id_.fetch_add(1, std::memory_order_relaxed);
  try {
    const Response restored = roundtrip(to, restore_request);
    if (is_error(restored.status)) {
      throw DataError("restore of session '" + id + "' on shard '" +
                      to.spec.name + "' failed: " + restored.message);
    }
  } catch (const ccd::Error&) {
    // The session left `from` but never landed on `to`: put it back on
    // the holder so the campaign survives the failed move (its requests
    // then recover via the stray path).
    restore_request.request_id =
        internal_request_id_.fetch_add(1, std::memory_order_relaxed);
    try {
      (void)roundtrip(from, restore_request);
    } catch (const ccd::Error&) {
      // Both sides failing is a genuine loss; counted by the caller.
    }
    throw;
  }
}

bool Gateway::recover_stray(const std::string& session) {
  std::lock_guard<std::mutex> lock(failover_mutex_);
  GatewayMetrics& m = GatewayMetrics::instance();
  Shard* owner = route(session);
  if (owner == nullptr) return false;
  for (Shard* holder : shard_snapshot()) {
    if (holder == owner || !holder->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    try {
      move_session_locked(session, *holder, *owner);
      m.strays_recovered.add(1);
      m.sessions_handed_off.add(1);
      m.sessions_restored.add(1);
      return true;
    } catch (const ccd::Error&) {
      // Not on this shard (export refused) or the move failed; keep
      // scanning — a false return just surfaces the original error.
    }
  }
  return false;
}

void Gateway::on_shard_down(Shard& shard, const std::string& reason) {
  std::lock_guard<std::mutex> lock(failover_mutex_);
  if (!shard.alive.load(std::memory_order_relaxed)) return;  // raced: done
  GatewayMetrics& m = GatewayMetrics::instance();
  rebalance_active_.store(true, std::memory_order_release);
  shard.alive.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> pool(shard.pool_mutex);
    shard.pool.clear();
  }
  {
    std::lock_guard<std::mutex> ring(ring_mutex_);
    rebuild_ring_locked();
  }
  m.failovers.add(1);
  m.shards_alive.set(static_cast<double>(alive_shard_count()));
  (void)reason;
  handoff_locked(shard);
  // Publish only after the survivors hold the sessions: a forward that
  // raced the handoff retries once it sees the version move.
  ring_version_.fetch_add(1, std::memory_order_acq_rel);
  rebalance_active_.store(false, std::memory_order_release);
}

void Gateway::handoff_locked(Shard& dead) {
  if (dead.spec.checkpoint_dir.empty()) return;
  GatewayMetrics& m = GatewayMetrics::instance();

  struct Entry {
    std::string id;
    std::string path;
  };
  std::vector<Entry> entries;
  DIR* dir = ::opendir(dead.spec.checkpoint_dir.c_str());
  if (dir == nullptr) return;  // nothing to scavenge
  const std::string sim_suffix =
      Session::checkpoint_suffix(SessionMode::kSimulation);
  const std::string ingest_suffix =
      Session::checkpoint_suffix(SessionMode::kIngest);
  while (dirent* e = ::readdir(dir)) {
    const std::string file = e->d_name;
    std::string id;
    if (!strip_suffix(file, sim_suffix, &id) &&
        !strip_suffix(file, ingest_suffix, &id)) {
      continue;
    }
    entries.push_back({id, dead.spec.checkpoint_dir + "/" + file});
  }
  ::closedir(dir);
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });

  for (const Entry& entry : entries) {
    try {
      Request request;
      request.op = Op::kRestore;
      request.session = entry.id;
      request.request_id =
          internal_request_id_.fetch_add(1, std::memory_order_relaxed);
      // Raw file image: the shard validates the frame (tag, version,
      // checksum) before decoding, so a torn checkpoint is rejected
      // there, not silently installed.
      request.checkpoint_blob = util::read_file(entry.path);
      Shard* target = route(entry.id);  // dead shard already off the ring
      if (target == nullptr) {
        throw DataError("no surviving shard for session '" + entry.id + "'");
      }
      const Response response = roundtrip(*target, request);
      if (is_error(response.status)) {
        throw DataError("restore of session '" + entry.id + "' on shard '" +
                        target->spec.name + "' failed: " + response.message);
      }
      m.sessions_handed_off.add(1);
      m.sessions_restored.add(1);
      // Remove the scavenged checkpoint: if this daemon is later
      // restarted on the same directory with resume=1 (a rejoin), a stale
      // file would resurrect a session that now lives elsewhere.
      ::unlink(entry.path.c_str());
    } catch (const ccd::Error&) {
      // Do not cascade failovers from inside one — a survivor failing
      // here is caught by the prober or by live traffic.
      m.handoff_failures.add(1);
    }
  }
}

// ---------------------------------------------------------------------------
// Socket front end (mirrors serve::Server, but handling is synchronous:
// the gateway is I/O-bound and the shards own the queues).

void Gateway::accept_loop(util::Socket* listener) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<util::Socket> accepted;
    try {
      accepted = listener->accept(kAcceptPollMs);
    } catch (const ccd::Error&) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    if (!accepted) continue;  // poll timeout

    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    connection->via_unix = (listener == &unix_listener_);
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    reap_finished_handlers_locked();
    Handler handler;
    handler.connection = connection;
    handler.thread =
        std::thread([this, connection] { handle_connection(connection); });
    handlers_.push_back(std::move(handler));
  }
}

void Gateway::handle_connection(std::shared_ptr<Connection> connection) {
  AuthGate gate;
  gate.token = config_.auth_token;
  // Unix sockets are guarded by filesystem permissions and loopback TCP
  // is trusted by default; everything else must prove the token (when one
  // is configured). require_auth extends the gate to loopback TCP.
  gate.require = !gate.token.empty() && !connection->via_unix &&
                 (config_.require_auth ||
                  !connection->socket.peer_is_loopback());
  try {
    for (;;) {
      const std::optional<std::string> payload = recv_message(
          connection->socket, config_.idle_timeout_ms, config_.io_timeout_ms);
      if (!payload) break;  // clean peer close
      const Request request = decode_request(*payload);
      bool close_connection = false;
      if (const std::optional<Response> intercepted =
              auth_intercept(gate, request, close_connection)) {
        send_message(connection->socket, encode_response(*intercepted),
                     config_.io_timeout_ms);
        if (close_connection) break;
        continue;
      }
      const Response response = handle(request);
      send_message(connection->socket, encode_response(response),
                   config_.io_timeout_ms);
    }
  } catch (const ccd::Error&) {
    // Corrupt frame or transport failure: framing is unrecoverable on a
    // byte stream, drop the connection.
  }
  connection->socket.shutdown_both();
  connection->finished.store(true, std::memory_order_release);
}

void Gateway::reap_finished_handlers_locked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->connection->finished.load(std::memory_order_acquire)) {
      it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ccd::serve
