#include "util/config.hpp"

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::util {

ParamMap ParamMap::from_args(int argc, const char* const* argv) {
  ParamMap map;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) continue;
    map.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return map;
}

void ParamMap::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool ParamMap::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

double ParamMap::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  return parse_double(it->second);
}

long long ParamMap::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  return parse_int(it->second);
}

bool ParamMap::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  return parse_bool(it->second);
}

std::string ParamMap::get_string(const std::string& key,
                                 const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  return it->second;
}

void ParamMap::assert_all_consumed() const {
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) {
      throw ConfigError("unknown parameter '" + key + "=" + value + "'");
    }
  }
}

std::vector<std::string> ParamMap::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, _] : values_) out.push_back(key);
  return out;
}

}  // namespace ccd::util
