// key=value parameter maps for examples and benchmark binaries.
//
// Every runnable accepts overrides as `name=value` command-line arguments;
// ParamMap parses them and provides typed access with defaults. Unknown keys
// are tolerated until `assert_all_consumed()` — catching typos in sweeps.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ccd::util {

class ParamMap {
 public:
  ParamMap() = default;

  /// Parse argv-style `key=value` tokens (skips tokens without '=').
  static ParamMap from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;

  /// Typed getters; throw ccd::ConfigError on parse failure.
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Throws ConfigError if any provided key was never read.
  void assert_all_consumed() const;

  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace ccd::util
