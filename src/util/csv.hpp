// CSV reading/writing with RFC-4180-style quoting.
//
// Used by the trace loader/saver. The reader is strict: ragged rows and
// malformed quoting raise ccd::DataError with a line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ccd::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parse a single CSV line (no trailing newline). Handles quoted fields with
/// embedded commas and doubled quotes.
CsvRow parse_csv_line(const std::string& line);

/// Quote a field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

class CsvReader {
 public:
  /// Opens `path`; throws ccd::DataError if unreadable.
  explicit CsvReader(const std::string& path);
  ~CsvReader();
  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;

  /// Reads the next row into `row`. Returns false at end of file.
  bool next(CsvRow& row);

  /// Line number of the most recently returned row (1-based).
  std::size_t line_number() const { return line_number_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t line_number_ = 0;
};

class CsvWriter {
 public:
  /// Creates/truncates `path`; throws ccd::DataError on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const CsvRow& row);
  void flush();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace ccd::util
