#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <sstream>

#include "util/error.hpp"

namespace ccd::util {
namespace {

// Identifies which pool (if any) owns the current thread; lets
// parallel_for detect nested use and fall back to inline execution.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  metrics::MetricsRegistry& reg = metrics::registry();
  tasks_completed_ = &reg.counter("ccd.pool.tasks");
  task_us_ = &reg.histogram("ccd.pool.task_us");
  queue_depth_ = &reg.gauge("ccd.pool.queue_depth");
  busy_workers_ = &reg.gauge("ccd.pool.busy_workers");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::on_worker_thread() const {
  return tls_current_pool == this;
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  while (true) {
    std::function<void()> task;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    queue_depth_->set(static_cast<double>(depth));
    busy_workers_->add(1.0);
    {
      metrics::ScopedTimer timer(task_us_);
      task();  // packaged_task captures exceptions into its future
    }
    busy_workers_->add(-1.0);
    tasks_completed_->add(1);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancellationToken* cancel) {
  if (n == 0) return;
  if (cancel != nullptr && cancel->poll()) return;
  // Nested use: an outer task calling parallel_for on its own pool would
  // block on futures that can only run on the slots the outer tasks hold.
  // Run inline instead (also the degraded mode after shutdown()).
  if (on_worker_thread() || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->poll()) return;
      fn(i);
    }
    return;
  }
  // Chunk so that each thread gets a handful of blocks; per-index dispatch
  // would drown small tasks in queue overhead.
  const std::size_t chunks =
      std::min<std::size_t>(n, thread_count() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<bool> failed{false};
  std::atomic<std::size_t> failure_count{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(submit([&, begin, end] {
      // One deadline poll per chunk; per-index checks touch only the
      // already-latched flag so cancellation costs one relaxed load.
      if (cancel != nullptr && cancel->poll()) return;
      for (std::size_t i = begin; i < end; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (cancel != nullptr && cancel->cancelled()) return;
        try {
          fn(i);
        } catch (...) {
          failure_count.fetch_add(1, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (!first_error) return;

  // Rethrow the first failure; when other chunks also threw, those
  // exceptions would otherwise vanish silently, so their count is appended
  // to the rethrown error ("(+K more task failures)").
  const std::size_t suppressed = failure_count.load() - 1;
  if (suppressed == 0) std::rethrow_exception(first_error);
  try {
    std::rethrow_exception(first_error);
  } catch (Error& e) {
    // Mutate-and-rethrow preserves the dynamic exception type.
    e.with_suppressed_failures(suppressed);
    throw;
  } catch (const std::exception& e) {
    std::ostringstream os;
    os << e.what() << " (+" << suppressed << " more task failures)";
    throw std::runtime_error(os.str());
  } catch (...) {
    std::ostringstream os;
    os << "parallel_for task failed (+" << suppressed
       << " more task failures)";
    throw std::runtime_error(os.str());
  }
}

namespace {

std::once_flag shared_pool_once;
ThreadPool* shared_pool_instance = nullptr;

}  // namespace

ThreadPool& shared_pool() {
  // Leaked on purpose: a function-local static would join its threads
  // during static destruction, racing destructors in other translation
  // units. shutdown_shared_pool() provides the explicit teardown.
  std::call_once(shared_pool_once, [] {
    shared_pool_instance = new ThreadPool();
    metrics::registry().gauge("ccd.pool.threads")
        .set(static_cast<double>(shared_pool_instance->thread_count()));
  });
  return *shared_pool_instance;
}

void shutdown_shared_pool() { shared_pool().shutdown(); }

void parallel_for_default(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  shared_pool().parallel_for(n, fn);
}

}  // namespace ccd::util
