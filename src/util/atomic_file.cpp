#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <limits>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/error.hpp"
#include "util/wire.hpp"

namespace ccd::util {
namespace {

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw DataError(what + " '" + path + "': " + std::strerror(errno));
}

/// Directory part of `path` ("." when there is none), for the post-rename
/// directory fsync that makes the rename itself durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void atomic_write_file(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_error("cannot create", tmp);

  std::size_t written = 0;
  while (written < payload.size()) {
    const ::ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("cannot write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("cannot fsync", tmp);
  }
  if (::close(fd) != 0) io_error("cannot close", tmp);

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    io_error("cannot rename over", path);
  }

  // fsync the directory so the rename survives a crash; best-effort on
  // filesystems that refuse O_RDONLY directory fds.
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_error("cannot open", path);
  std::string out;
  char buffer[1 << 16];
  while (true) {
    const ::ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("cannot read", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void write_framed_file(const std::string& path, const std::string& tag,
                       std::uint32_t version, const std::string& payload) {
  atomic_write_file(path, wire::encode_frame(tag, version, payload));
}

FramedPayload read_framed_file(const std::string& path, const std::string& tag,
                               std::uint32_t min_version,
                               std::uint32_t max_version) {
  const std::string raw = read_file(path);
  const std::string context = "file '" + path + "'";
  const wire::FrameHeader header = wire::decode_frame_header(
      raw, tag, min_version, max_version,
      std::numeric_limits<std::uint64_t>::max(), context);
  FramedPayload result;
  result.version = header.version;
  result.payload = raw.substr(wire::kFrameHeaderSize);
  wire::verify_frame_payload(header, result.payload, context);
  return result;
}

}  // namespace ccd::util
