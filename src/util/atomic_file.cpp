#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/error.hpp"

namespace ccd::util {
namespace {

constexpr char kMagic[4] = {'C', 'C', 'D', 'F'};
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw DataError(what + " '" + path + "': " + std::strerror(errno));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t read_u32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

/// Directory part of `path` ("." when there is none), for the post-rename
/// directory fsync that makes the rename itself durable.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void atomic_write_file(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_error("cannot create", tmp);

  std::size_t written = 0;
  while (written < payload.size()) {
    const ::ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("cannot write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("cannot fsync", tmp);
  }
  if (::close(fd) != 0) io_error("cannot close", tmp);

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    io_error("cannot rename over", path);
  }

  // fsync the directory so the rename survives a crash; best-effort on
  // filesystems that refuse O_RDONLY directory fds.
  const int dir_fd = ::open(parent_dir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_error("cannot open", path);
  std::string out;
  char buffer[1 << 16];
  while (true) {
    const ::ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("cannot read", path);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void write_framed_file(const std::string& path, const std::string& tag,
                       std::uint32_t version, const std::string& payload) {
  CCD_CHECK_MSG(tag.size() == 4, "framed-file tag must be exactly 4 bytes");
  std::string framed;
  framed.reserve(kHeaderSize + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  framed.append(tag);
  append_u32(framed, version);
  append_u64(framed, payload.size());
  append_u64(framed, fnv1a64(payload.data(), payload.size()));
  framed.append(payload);
  atomic_write_file(path, framed);
}

FramedPayload read_framed_file(const std::string& path, const std::string& tag,
                               std::uint32_t min_version,
                               std::uint32_t max_version) {
  CCD_CHECK_MSG(tag.size() == 4, "framed-file tag must be exactly 4 bytes");
  const std::string raw = read_file(path);
  if (raw.size() < kHeaderSize) {
    throw DataError("truncated framed file '" + path + "' (" +
                    std::to_string(raw.size()) + " bytes, header needs " +
                    std::to_string(kHeaderSize) + ")");
  }
  if (raw.compare(0, 4, kMagic, 4) != 0) {
    throw DataError("bad magic in framed file '" + path + "'");
  }
  if (raw.compare(4, 4, tag) != 0) {
    throw DataError("framed file '" + path + "' has tag '" + raw.substr(4, 4) +
                    "', expected '" + tag + "'");
  }
  FramedPayload result;
  result.version = read_u32(raw, 8);
  if (result.version < min_version || result.version > max_version) {
    throw DataError("framed file '" + path + "' has unsupported version " +
                    std::to_string(result.version) + " (supported " +
                    std::to_string(min_version) + ".." +
                    std::to_string(max_version) + ")");
  }
  const std::uint64_t size = read_u64(raw, 12);
  if (raw.size() - kHeaderSize != size) {
    throw DataError("framed file '" + path + "' payload is " +
                    std::to_string(raw.size() - kHeaderSize) +
                    " bytes, header says " + std::to_string(size) +
                    " (truncated or torn write)");
  }
  const std::uint64_t checksum = read_u64(raw, 20);
  result.payload = raw.substr(kHeaderSize);
  const std::uint64_t actual =
      fnv1a64(result.payload.data(), result.payload.size());
  if (actual != checksum) {
    throw DataError("checksum mismatch in framed file '" + path +
                    "' (corrupted)");
  }
  return result;
}

}  // namespace ccd::util
