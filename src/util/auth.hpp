// Shared-secret transport authentication primitives for the CSRV v3
// token handshake: SHA-256, HMAC-SHA256, hex rendering, a constant-time
// comparator, and nonce generation.
//
// The serve transport must not depend on system crypto libraries (the
// build is self-contained), so SHA-256 is implemented here from the FIPS
// 180-4 specification. It is used for *authentication of a challenge*
// (HMAC over a fresh server nonce), not for protecting data in transit —
// the protocol remains plaintext; see docs/API.md for the threat model.
//
// Handshake shape (see serve/protocol.hpp): the server issues a random
// per-connection nonce; the client proves knowledge of the shared token
// by returning hex(HMAC-SHA256(token, nonce)). Proofs are bound to the
// nonce, and each nonce is issued once per connection, so a captured
// proof does not replay.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ccd::util::auth {

/// SHA-256 digest of `data` (FIPS 180-4), as 32 raw bytes.
std::array<std::uint8_t, 32> sha256(const std::string& data);

/// HMAC-SHA256 (RFC 2104) of `message` under `key`, as 32 raw bytes.
std::array<std::uint8_t, 32> hmac_sha256(const std::string& key,
                                         const std::string& message);

/// Lowercase hex rendering of a 32-byte digest (64 characters).
std::string to_hex(const std::array<std::uint8_t, 32>& digest);

/// hex(HMAC-SHA256(token, nonce)) — the proof a client sends in the CSRV
/// token handshake.
std::string handshake_proof(const std::string& token,
                            const std::string& nonce);

/// Compare two strings in time independent of where they differ (always
/// scans max(len) bytes). Length mismatch still returns false.
bool constant_time_equal(const std::string& a, const std::string& b);

/// A fresh unpredictable nonce (32 hex chars from std::random_device),
/// generated per connection when a challenge is issued.
std::string make_nonce();

}  // namespace ccd::util::auth
