#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CCD_CHECK_MSG(!header_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CCD_CHECK_MSG(cells.size() == header_.size(),
                "row has " << cells.size() << " cells, header has "
                           << header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_number_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (const double v : cells) out.push_back(format_double(v, precision));
  add_row(std::move(out));
}

void TextTable::add_labeled_row(const std::string& label,
                                const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size() + 1);
  out.push_back(label);
  for (const double v : cells) out.push_back(format_double(v, precision));
  add_row(std::move(out));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  const auto emit_rule = [&] {
    for (const std::size_t w : widths) {
      os << '+';
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    }
    os << "+\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

}  // namespace ccd::util
