// Bounded retry with exponential backoff and deterministic jitter, for the
// I/O edges of a run (trace loading, checkpoint save/load).
//
// with_retry("checkpoint_write", policy, fn) invokes fn(attempt) for
// attempt = 0, 1, ... and returns its result on first success. A thrown
// ccd::Error is transient until attempts run out: the call sleeps the
// jittered backoff and tries again; the final failure is rethrown verbatim
// (original type, code, and context preserved). Non-ccd exceptions
// propagate immediately — they indicate bugs, not flaky I/O.
//
// Jitter is drawn from a util::Rng seeded by (policy.seed, operation
// name), so a given run schedules identical backoffs — retry timing never
// makes results less reproducible. Tests set sleep = false to spin through
// attempts instantly.
//
// Every attempt and outcome is counted in the process-wide registry:
//   ccd.io.attempts   — fn invocations, across all operations
//   ccd.io.retries    — failed attempts that were retried
//   ccd.io.successes  — with_retry calls that returned a result
//   ccd.io.failures   — with_retry calls that exhausted their attempts
//
// Fault-injection sites live inside the retried callables (keyed by the
// attempt index, e.g. CCD_FAULT_POINT("io.load_trace", attempt, ...)), so
// chaos tests can fail the first k attempts of an operation and assert the
// backoff path recovers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "util/error.hpp"

namespace ccd::util {

struct RetryPolicy {
  /// Total attempts (>= 1); 1 disables retrying.
  std::size_t max_attempts = 3;
  /// Backoff before the second attempt, in seconds.
  double initial_backoff_s = 0.01;
  /// Backoff growth per retry (>= 1).
  double multiplier = 2.0;
  /// Uniform jitter as a fraction of the backoff: each sleep is scaled by
  /// a factor in [1 - jitter, 1 + jitter]. Must be in [0, 1].
  double jitter = 0.2;
  /// Seed for the deterministic jitter stream.
  std::uint64_t seed = 0x10aDU;
  /// When false, retries happen immediately (tests).
  bool sleep = true;

  void validate() const;
};

namespace detail {

/// Counts the attempt; computes and (when policy.sleep) sleeps the
/// jittered backoff before attempt `next_attempt` (>= 1). Returns the
/// backoff in seconds (0 for the first attempt).
double backoff_before(const char* op, const RetryPolicy& policy,
                      std::size_t next_attempt);

void count_attempt();
void count_retry();
void count_success();
void count_failure();

}  // namespace detail

/// Invoke fn(attempt) until it succeeds or attempts are exhausted; see the
/// file comment for semantics.
template <typename F>
auto with_retry(const char* op, const RetryPolicy& policy, F&& fn)
    -> decltype(fn(std::size_t{0})) {
  policy.validate();
  for (std::size_t attempt = 0;; ++attempt) {
    if (attempt > 0) detail::backoff_before(op, policy, attempt);
    detail::count_attempt();
    try {
      if constexpr (std::is_void_v<decltype(fn(std::size_t{0}))>) {
        fn(attempt);
        detail::count_success();
        return;
      } else {
        auto result = fn(attempt);
        detail::count_success();
        return result;
      }
    } catch (const Error&) {
      if (attempt + 1 >= policy.max_attempts) {
        detail::count_failure();
        throw;
      }
      detail::count_retry();
    }
  }
}

}  // namespace ccd::util
