// Crash-safe file replacement and a checksummed, versioned framing format.
//
// atomic_write_file() is the durability primitive under checkpointing:
// write the payload to `<path>.tmp`, fsync the file, rename() it over
// `path`, and fsync the containing directory. A crash at any point leaves
// either the previous complete file or the new complete file — never a
// torn mix — and the stray `.tmp` from an interrupted write is simply
// overwritten by the next attempt.
//
// Framed files add a fixed binary header so readers can reject torn,
// truncated, or bit-rotted content deterministically instead of decoding
// garbage:
//
//   offset  size  field
//   0       4     magic "CCDF"
//   4       4     caller tag (e.g. "SCKP" for Stackelberg checkpoints)
//   8       4     format version (little-endian u32)
//   12      8     payload size in bytes (little-endian u64)
//   20      8     FNV-1a 64 checksum of the payload (little-endian u64)
//   28      -     payload
//
// read_framed_file() throws ccd::DataError (never UB, never a partial
// object) on any mismatch: missing file, short header, wrong magic or tag,
// version outside the caller's supported range, size mismatch, checksum
// mismatch. Version policy: readers state the [min, max] they decode;
// writers bump the version whenever the payload layout changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ccd::util {

/// FNV-1a 64-bit over a byte range (the framing checksum).
std::uint64_t fnv1a64(const void* data, std::size_t size);

/// Durably replace `path` with `payload` (write-temp + fsync + rename).
/// Throws ccd::DataError on any I/O failure.
void atomic_write_file(const std::string& path, const std::string& payload);

/// Read a whole file; throws ccd::DataError when missing or unreadable.
std::string read_file(const std::string& path);

struct FramedPayload {
  std::uint32_t version = 0;
  std::string payload;
};

/// Atomically write `payload` framed under (tag, version). `tag` must be
/// exactly 4 bytes.
void write_framed_file(const std::string& path, const std::string& tag,
                       std::uint32_t version, const std::string& payload);

/// Read and verify a framed file written by write_framed_file. Throws
/// ccd::DataError on corruption, truncation, tag mismatch, or a version
/// outside [min_version, max_version].
FramedPayload read_framed_file(const std::string& path, const std::string& tag,
                               std::uint32_t min_version,
                               std::uint32_t max_version);

}  // namespace ccd::util
