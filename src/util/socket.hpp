// Minimal RAII wrapper over POSIX stream sockets (Unix-domain and
// loopback TCP) — the transport under the serve subsystem.
//
// Scope is deliberately narrow: blocking stream sockets, EINTR-retrying
// exact reads/writes, and a poll()-based accept with timeout so accept
// loops can observe a stop flag without signals or self-pipes. Failures
// surface as ccd::DataError (transport problems are environmental, like
// file I/O); a clean peer close is not an error — recv_exact reports it
// as `false` when it happens on a message boundary.
//
// TCP listeners bind 127.0.0.1 by default; binding another address is an
// explicit opt-in via the host overload, because exposure beyond loopback
// requires the serve layer's token handshake (peer_is_loopback() is the
// predicate that gate keys on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ccd::util {

class Socket {
 public:
  /// An empty (invalid) socket; valid() is false.
  Socket() = default;
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Bind + listen on a Unix-domain socket at `path`. An existing socket
  /// file at `path` is unlinked first (stale leftovers from a killed
  /// daemon must not block restart).
  static Socket listen_unix(const std::string& path, int backlog = 64);

  /// Bind + listen on loopback TCP. `port` 0 picks an ephemeral port
  /// (read it back via local_port()).
  static Socket listen_tcp(int port, int backlog = 64);

  /// Bind + listen on an explicit IPv4 address (e.g. "0.0.0.0" to accept
  /// remote clients — pair with a serve-layer auth token).
  static Socket listen_tcp(const std::string& host, int port,
                           int backlog = 64);

  static Socket connect_unix(const std::string& path);
  static Socket connect_tcp(const std::string& host, int port);

  /// Wait up to `timeout_ms` for a pending connection; nullopt on timeout.
  /// Throws ccd::DataError on listener failure.
  std::optional<Socket> accept(int timeout_ms);

  /// Write the whole buffer (EINTR-retrying). Throws ccd::DataError on
  /// failure (including peer reset).
  void send_all(const void* data, std::size_t size);
  void send_all(const std::string& data) { send_all(data.data(), data.size()); }

  /// Read exactly `size` bytes. Returns false on a clean EOF before the
  /// first byte (peer closed between messages); throws ccd::DataError on
  /// mid-buffer EOF or any transport error.
  bool recv_exact(void* data, std::size_t size);

  /// Deadline variant of send_all: the whole buffer must be written within
  /// `timeout_ms` (overall budget, not per-chunk). A peer that stops
  /// draining its receive buffer surfaces as ccd::DataError instead of
  /// blocking forever. `timeout_ms <= 0` means no deadline.
  void write_exact(const void* data, std::size_t size, int timeout_ms);

  /// Deadline variant of recv_exact: all `size` bytes must arrive within
  /// `timeout_ms` (overall budget). Same clean-EOF/false contract as
  /// recv_exact; a timeout throws ccd::DataError. `timeout_ms <= 0` means
  /// no deadline.
  bool read_exact(void* data, std::size_t size, int timeout_ms);

  /// Shut down both directions (wakes a peer blocked in recv). Safe on an
  /// already-closed socket.
  void shutdown_both();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Bound port of a TCP listener (0 for Unix-domain sockets).
  int local_port() const;

  /// True when the connected peer cannot be a remote host: Unix-domain
  /// sockets and TCP peers in 127.0.0.0/8 (or the IPv6 loopback /
  /// v4-mapped equivalent). Unknown address families report false so the
  /// auth gate fails closed.
  bool peer_is_loopback() const;

 private:
  explicit Socket(int fd) : fd_(fd) {}
  static Socket listen_tcp_addr(std::uint32_t bind_addr_be, int port,
                                int backlog, const std::string& what);
  void close_fd();

  int fd_ = -1;
};

}  // namespace ccd::util
