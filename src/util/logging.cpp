#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace ccd::util {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);

  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& os = sink_ != nullptr ? *sink_ : std::cerr;
  os << '[' << ts << "] [" << to_string(level) << "] " << message << '\n';
}

}  // namespace ccd::util
