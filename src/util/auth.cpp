#include "util/auth.hpp"

#include <cstring>
#include <random>

namespace ccd::util::auth {
namespace {

// FIPS 180-4 SHA-256. Straightforward single-shot implementation — the
// inputs here are a short token/nonce pair, so streaming is unnecessary.
constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline std::uint32_t rotr(std::uint32_t v, int n) {
  return (v >> n) | (v << (32 - n));
}

void compress(std::uint32_t state[8], const unsigned char block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

std::array<std::uint8_t, 32> sha256(const std::string& data) {
  std::uint32_t state[8];
  std::memcpy(state, kInit, sizeof(state));

  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  std::size_t full = data.size() / 64;
  for (std::size_t i = 0; i < full; ++i) compress(state, bytes + 64 * i);

  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  unsigned char tail[128] = {0};
  const std::size_t rem = data.size() - 64 * full;
  std::memcpy(tail, bytes + 64 * full, rem);
  tail[rem] = 0x80;
  const std::size_t tail_blocks = (rem + 1 + 8 > 64) ? 2 : 1;
  const std::uint64_t bit_len = std::uint64_t{data.size()} * 8;
  for (int i = 0; i < 8; ++i) {
    tail[64 * tail_blocks - 1 - i] =
        static_cast<unsigned char>(bit_len >> (8 * i));
  }
  for (std::size_t i = 0; i < tail_blocks; ++i) compress(state, tail + 64 * i);

  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return out;
}

std::array<std::uint8_t, 32> hmac_sha256(const std::string& key,
                                         const std::string& message) {
  std::string block_key = key;
  if (block_key.size() > 64) {
    const auto digest = sha256(block_key);
    block_key.assign(reinterpret_cast<const char*>(digest.data()),
                     digest.size());
  }
  block_key.resize(64, '\0');

  std::string inner(64, '\0'), outer(64, '\0');
  for (int i = 0; i < 64; ++i) {
    inner[i] = static_cast<char>(block_key[i] ^ 0x36);
    outer[i] = static_cast<char>(block_key[i] ^ 0x5c);
  }
  const auto inner_digest = sha256(inner + message);
  outer.append(reinterpret_cast<const char*>(inner_digest.data()),
               inner_digest.size());
  return sha256(outer);
}

std::string to_hex(const std::array<std::uint8_t, 32>& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

std::string handshake_proof(const std::string& token,
                            const std::string& nonce) {
  return to_hex(hmac_sha256(token, nonce));
}

bool constant_time_equal(const std::string& a, const std::string& b) {
  const std::size_t n = a.size() > b.size() ? a.size() : b.size();
  unsigned char diff = a.size() == b.size() ? 0 : 1;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char x = i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    const unsigned char y = i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    diff = static_cast<unsigned char>(diff | (x ^ y));
  }
  return diff == 0;
}

std::string make_nonce() {
  static const char kHex[] = "0123456789abcdef";
  std::random_device rd;
  std::string nonce;
  nonce.reserve(32);
  for (int i = 0; i < 8; ++i) {
    std::uint32_t word = rd();
    for (int j = 0; j < 4; ++j) {
      nonce.push_back(kHex[word & 0x0f]);
      word >>= 4;
    }
  }
  return nonce;
}

}  // namespace ccd::util::auth
