// Descriptive statistics: streaming accumulator, percentiles, histograms.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace ccd::util {

/// Streaming mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolation percentile (p in [0, 100]) of a sample.
/// Copies and sorts; fine for experiment-sized data.
double percentile(std::vector<double> values, double p);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);
double median(std::vector<double> values);

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p5 = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi); values outside clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering (for example programs).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ccd::util
