// Minimal leveled logger.
//
// Single global sink (stderr by default) guarded by a mutex; cheap enough for
// our workloads and safe when the pipeline fans subproblems out over the
// thread pool. Use the CCD_LOG(level) macro, which skips message formatting
// entirely when the level is disabled.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace ccd::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output (tests use this); pass nullptr to restore stderr.
  void set_sink(std::ostream* sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::mutex mutex_;
  LogLevel level_ = LogLevel::kInfo;
  std::ostream* sink_ = nullptr;  // nullptr => std::cerr
};

/// Stream-style helper: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().write(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ccd::util

#define CCD_LOG(level)                                                  \
  if (!::ccd::util::Logger::instance().enabled(::ccd::util::LogLevel::level)) \
    ;                                                                   \
  else                                                                  \
    ::ccd::util::LogMessage(::ccd::util::LogLevel::level).stream()

#define CCD_LOG_DEBUG CCD_LOG(kDebug)
#define CCD_LOG_INFO CCD_LOG(kInfo)
#define CCD_LOG_WARN CCD_LOG(kWarn)
#define CCD_LOG_ERROR CCD_LOG(kError)
