#include "util/fault_injection.hpp"

namespace ccd::util {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const FaultInjectorConfig& config) {
  const std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  counts_.clear();
  total_.store(0, std::memory_order_relaxed);
  armed_.store(config.enabled, std::memory_order_relaxed);
}

void FaultInjector::disable() { configure(FaultInjectorConfig{}); }

bool FaultInjector::should_inject(const char* site, std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!config_.enabled) return false;
  double rate = config_.rate;
  const auto it = config_.site_rates.find(site);
  if (it != config_.site_rates.end()) rate = it->second;
  if (rate <= 0.0) return false;

  // Pure function of (seed, site, key): u in [0, 1) from a mixed hash.
  const std::uint64_t h =
      splitmix64(splitmix64(config_.seed ^ fnv1a(site)) ^ key);
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // 53-bit mantissa
  if (u >= rate) return false;

  ++counts_[site];
  total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t FaultInjector::injected(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace ccd::util
