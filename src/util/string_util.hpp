// Small string helpers used across ccd (splitting, trimming, formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccd::util {

/// Split `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace, dropping empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers: throw ccd::ConfigError with context on failure.
double parse_double(std::string_view s);
long long parse_int(std::string_view s);
bool parse_bool(std::string_view s);

/// printf-style double formatting with fixed precision.
std::string format_double(double v, int precision = 4);

/// Join tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace ccd::util
