// Aligned ASCII table rendering for benchmark/experiment output.
#pragma once

#include <string>
#include <vector>

namespace ccd::util {

/// Builds a text table: set a header, append rows, then render with columns
/// padded to their widest cell. Numeric convenience overloads format doubles
/// with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Row of doubles, formatted with `precision` decimals.
  void add_number_row(const std::vector<double>& cells, int precision = 3);

  /// First cell as label, remaining as doubles.
  void add_labeled_row(const std::string& label,
                       const std::vector<double>& cells, int precision = 3);

  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccd::util
