#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::util::metrics {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double histogram_bucket_bound(std::size_t i) {
  // Bucket i < 27 is bounded above by 2^i; the last bucket is open-ended.
  if (i + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(1ull << i);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside [lo, hi) of the winning bucket, then clamp to the
    // observed extrema (tightens the open-ended first/last buckets).
    const double lo = i == 0 ? 0.0 : histogram_bucket_bound(i - 1);
    double hi = histogram_bucket_bound(i);
    if (!std::isfinite(hi)) hi = std::max(max, lo);
    const double fraction =
        std::clamp((rank - before) / static_cast<double>(buckets[i]), 0.0, 1.0);
    return std::clamp(lo + fraction * (hi - lo), min, max);
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

#ifndef CCD_NO_METRICS

namespace {

std::atomic<bool> g_enabled{true};

std::size_t bucket_index(double value) {
  // Smallest i with value < 2^i; values below 1 (and negatives) land in
  // bucket 0. Branch-free enough: log2 via exponent extraction would save
  // little over this loop's typical 1-2 iterations for latencies.
  if (!(value >= 1.0)) return 0;  // also catches NaN
  std::size_t i = 0;
  while (i + 1 < kHistogramBuckets &&
         value >= histogram_bucket_bound(i)) {
    ++i;
  }
  return i;
}

void fold_min(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void fold_max(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Histogram::record(double value) {
  if (!enabled()) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  fold_min(min_, value);
  fold_max(max_, value);
}

void Histogram::merge(const HistogramSnapshot& snap) {
  if (snap.count == 0) return;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (snap.buckets[i] != 0) {
      buckets_[i].fetch_add(snap.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snap.count, std::memory_order_relaxed);
  sum_.fetch_add(snap.sum, std::memory_order_relaxed);
  fold_min(min_, snap.min);
  fold_max(max_, snap.max);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snap.max = snap.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

struct MetricsRegistry::Metric {
  explicit Metric(MetricKind k) : kind(k) {}
  const MetricKind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

struct MetricsRegistry::Stripe {
  mutable std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Metric>> metrics;
};

MetricsRegistry::MetricsRegistry()
    : stripes_(std::make_unique<Stripe[]>(kStripes)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked like util::shared_pool(): handles into the registry live in
  // objects with arbitrary destruction order (thread pools, caches), so
  // the registry must outlive static destruction.
  static MetricsRegistry* const reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry::Metric& MetricsRegistry::metric_for(std::string_view name,
                                                     MetricKind kind) {
  const std::size_t stripe_index =
      std::hash<std::string_view>{}(name) % kStripes;
  Stripe& stripe = stripes_[stripe_index];
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.metrics.find(std::string(name));
  if (it == stripe.metrics.end()) {
    it = stripe.metrics
             .emplace(std::string(name), std::make_unique<Metric>(kind))
             .first;
  } else if (it->second->kind != kind) {
    throw ConfigError("metric '" + std::string(name) + "' registered as " +
                      std::string(to_string(it->second->kind)) +
                      ", requested as " + std::string(to_string(kind)));
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return metric_for(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return metric_for(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return metric_for(name, MetricKind::kHistogram).histogram;
}

void MetricsRegistry::reset() {
  for (std::size_t s = 0; s < kStripes; ++s) {
    const std::lock_guard<std::mutex> lock(stripes_[s].mutex);
    for (auto& [name, metric] : stripes_[s].metrics) {
      metric->counter.reset();
      metric->gauge.reset();
      metric->histogram.reset();
    }
  }
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  for (std::size_t s = 0; s < kStripes; ++s) {
    const std::lock_guard<std::mutex> lock(stripes_[s].mutex);
    for (const auto& [name, metric] : stripes_[s].metrics) {
      MetricSnapshot snap;
      snap.name = name;
      snap.kind = metric->kind;
      switch (metric->kind) {
        case MetricKind::kCounter:
          snap.counter = metric->counter.value();
          break;
        case MetricKind::kGauge:
          snap.gauge = metric->gauge.value();
          break;
        case MetricKind::kHistogram:
          snap.histogram = metric->histogram.snapshot();
          break;
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

ScopedTimer::ScopedTimer(Histogram* hist, double* out_seconds)
    : hist_(hist), out_seconds_(out_seconds), running_(true) {
  // Timing is skipped entirely when disarmed unless the caller asked for
  // the wall-clock result itself (stage timings in PipelineResult).
  if (hist_ != nullptr && !enabled()) hist_ = nullptr;
  if (hist_ == nullptr && out_seconds_ == nullptr) {
    running_ = false;
    return;
  }
  start_ = std::chrono::steady_clock::now();
}

double ScopedTimer::stop() {
  if (!running_) return 0.0;
  running_ = false;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  const double seconds = elapsed.count();
  if (hist_ != nullptr) hist_->record(seconds * 1e6);
  if (out_seconds_ != nullptr) *out_seconds_ = seconds;
  return seconds;
}

MetricsRegistry& registry() { return MetricsRegistry::instance(); }

bool compiled_in() { return true; }

#else  // CCD_NO_METRICS

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* const reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry& registry() { return MetricsRegistry::instance(); }

bool compiled_in() { return false; }

#endif  // CCD_NO_METRICS

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string prometheus_name(const std::string& name) {
  // Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Registry
  // names are dotted (`ccd.pool.queue_depth`) and occasionally carry
  // user-supplied segments, so every invalid character maps to '_' (not
  // just '.'/'-'), and a leading digit gets a '_' prefix — otherwise one
  // odd name makes the whole exposition unparseable.
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string format_number(double v) {
  // Compact fixed formatting; integers render without a fraction.
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string to_json() {
  const std::vector<MetricSnapshot> snaps = registry().snapshot();
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const MetricSnapshot& m : snaps) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << json_escape(m.name) << "\": {\"type\": \""
       << to_string(m.kind) << "\", ";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "\"value\": " << m.counter << "}";
        break;
      case MetricKind::kGauge:
        os << "\"value\": " << format_number(m.gauge) << "}";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        os << "\"count\": " << h.count << ", \"sum\": " << format_number(h.sum)
           << ", \"min\": " << format_number(h.min)
           << ", \"max\": " << format_number(h.max)
           << ", \"p50\": " << format_number(h.p50())
           << ", \"p95\": " << format_number(h.p95())
           << ", \"p99\": " << format_number(h.p99()) << ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          if (h.buckets[i] == 0) continue;
          if (!first_bucket) os << ", ";
          first_bucket = false;
          const double bound = histogram_bucket_bound(i);
          os << "[";
          if (std::isfinite(bound)) {
            os << format_number(bound);
          } else {
            os << "\"+inf\"";
          }
          os << ", " << h.buckets[i] << "]";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n}\n";
  return os.str();
}

std::string to_prometheus() {
  const std::vector<MetricSnapshot> snaps = registry().snapshot();
  std::ostringstream os;
  for (const MetricSnapshot& m : snaps) {
    const std::string name = prometheus_name(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << m.counter << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << format_number(m.gauge) << "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          cumulative += h.buckets[i];
          if (h.buckets[i] == 0 && i + 1 < kHistogramBuckets) continue;
          const double bound = histogram_bucket_bound(i);
          os << name << "_bucket{le=\"";
          if (std::isfinite(bound)) {
            os << format_number(bound);
          } else {
            os << "+Inf";
          }
          os << "\"} " << cumulative << "\n";
        }
        os << name << "_sum " << format_number(h.sum) << "\n"
           << name << "_count " << h.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string render_summary() {
  const std::vector<MetricSnapshot> snaps = registry().snapshot();
  if (snaps.empty()) return {};
  const auto find = [&](const std::string& name) -> const MetricSnapshot* {
    for (const MetricSnapshot& m : snaps) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const auto us = [](double v) { return format_double(v / 1000.0, 3); };

  std::ostringstream os;
  // Per-stage pipeline latencies.
  bool any_stage = false;
  for (const char* stage :
       {"sanitize", "detect", "cluster", "fit", "solve", "total"}) {
    const MetricSnapshot* m =
        find(std::string("ccd.pipeline.") + stage + "_us");
    if (m == nullptr || m->histogram.count == 0) continue;
    if (!any_stage) os << "pipeline stage latency (ms):\n";
    any_stage = true;
    os << "  " << stage << ": p50=" << us(m->histogram.p50())
       << " p95=" << us(m->histogram.p95()) << " max=" << us(m->histogram.max)
       << " (n=" << m->histogram.count << ")\n";
  }
  if (const MetricSnapshot* m = find("ccd.pipeline.solve_task_us");
      m != nullptr && m->histogram.count > 0) {
    os << "  solve spans (per community/spec, us): p50="
       << format_double(m->histogram.p50(), 1)
       << " p95=" << format_double(m->histogram.p95(), 1)
       << " (n=" << m->histogram.count << ")\n";
  }

  // Thread pool.
  const MetricSnapshot* task_us = find("ccd.pool.task_us");
  const MetricSnapshot* threads = find("ccd.pool.threads");
  const MetricSnapshot* depth = find("ccd.pool.queue_depth");
  if (task_us != nullptr && task_us->histogram.count > 0) {
    os << "thread pool: tasks=" << task_us->histogram.count
       << " task p50=" << format_double(task_us->histogram.p50(), 1)
       << "us p95=" << format_double(task_us->histogram.p95(), 1) << "us";
    if (depth != nullptr) {
      os << " queue_depth=" << format_number(depth->gauge);
    }
    // Utilization: busy-time integral over the pool's capacity during the
    // instrumented pipeline wall time.
    const MetricSnapshot* total = find("ccd.pipeline.total_us");
    if (threads != nullptr && threads->gauge > 0 && total != nullptr &&
        total->histogram.sum > 0) {
      // Clamped: clock granularity can push the busy integral slightly
      // past the wall-time envelope on short runs.
      const double utilization = std::min(
          1.0, task_us->histogram.sum / (threads->gauge * total->histogram.sum));
      os << " utilization=" << format_double(100.0 * utilization, 1) << "%";
    }
    os << "\n";
  }

  // Design cache.
  const MetricSnapshot* lookups = find("ccd.cache.lookups");
  const MetricSnapshot* hits = find("ccd.cache.hits");
  if (lookups != nullptr && lookups->counter > 0 && hits != nullptr) {
    const double rate = static_cast<double>(hits->counter) /
                        static_cast<double>(lookups->counter);
    os << "design cache: lookups=" << lookups->counter
       << " hits=" << hits->counter << " (hit rate "
       << format_double(100.0 * rate, 1) << "%)";
    if (const MetricSnapshot* avoided = find("ccd.cache.sweep_steps_avoided");
        avoided != nullptr) {
      os << " sweep_steps_avoided=" << avoided->counter;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ccd::util::metrics
