#include "util/cancellation.hpp"

#include <limits>

namespace ccd::util {

const char* to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kCancelled: return "cancelled";
    case CancelReason::kDeadline: return "deadline";
  }
  return "?";
}

Deadline Deadline::after(double seconds) {
  Deadline d;
  d.active_ = true;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
  return d;
}

bool Deadline::expired() const {
  return active_ && std::chrono::steady_clock::now() >= at_;
}

double Deadline::remaining_s() const {
  if (!active_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now())
      .count();
}

CancellationToken::CancellationToken() : state_(std::make_shared<State>()) {}

void CancellationToken::request_cancel(CancelReason reason) const {
  // First cancellation wins the reason; later calls are no-ops.
  bool expected = false;
  if (state_->cancelled.compare_exchange_strong(expected, true,
                                                std::memory_order_relaxed)) {
    state_->reason.store(static_cast<int>(reason), std::memory_order_relaxed);
  }
}

void CancellationToken::set_deadline(Deadline deadline) {
  state_->deadline = deadline;
}

bool CancellationToken::poll() const {
  if (cancelled()) return true;
  if (state_->deadline.expired()) {
    request_cancel(CancelReason::kDeadline);
    return true;
  }
  return false;
}

}  // namespace ccd::util
