#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace ccd::util {

void Accumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double Accumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> values, double p) {
  CCD_CHECK_MSG(!values.empty(), "percentile of empty sample");
  CCD_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
  Accumulator acc;
  for (const double v : values) acc.add(v);
  return acc.mean();
}

double stddev(const std::vector<double>& values) {
  Accumulator acc;
  for (const double v : values) acc.add(v);
  return acc.stddev();
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  Accumulator acc;
  for (const double v : values) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p5 = percentile(values, 5.0);
  s.median = percentile(values, 50.0);
  s.p95 = percentile(values, 95.0);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CCD_CHECK_MSG(hi > lo, "Histogram requires hi > lo");
  CCD_CHECK_MSG(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  long long bin = static_cast<long long>(std::floor((x - lo_) / width));
  bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  CCD_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.3f, %9.3f) %8zu ",
                  bin_lo(b), bin_hi(b), counts_[b]);
    os << label;
    const std::size_t bar = counts_[b] * width / peak;
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
  return os.str();
}

}  // namespace ccd::util
