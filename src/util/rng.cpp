#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ccd::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start in the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CCD_CHECK_MSG(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CCD_CHECK_MSG(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 bounded away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  CCD_CHECK_MSG(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

double Rng::exponential(double rate) {
  CCD_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  CCD_CHECK_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction, clipped at zero.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) {
  CCD_CHECK_MSG(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return uniform() < p;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  CCD_CHECK_MSG(!weights.empty(), "discrete() needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    CCD_CHECK_MSG(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  CCD_CHECK_MSG(total > 0.0, "discrete() weights must not all be zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: total rounding
}

RngState Rng::state() const {
  return RngState{state_, has_cached_normal_, cached_normal_};
}

void Rng::set_state(const RngState& state) {
  CCD_CHECK_MSG(state.words[0] != 0 || state.words[1] != 0 ||
                    state.words[2] != 0 || state.words[3] != 0,
                "Rng state must not be all-zero");
  state_ = state.words;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng Rng::split() {
  // A fresh generator seeded from this stream's output is statistically
  // independent for our simulation purposes.
  return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace ccd::util
