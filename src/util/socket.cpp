#include "util/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hpp"

namespace ccd::util {
namespace {

[[noreturn]] void sock_error(const std::string& what) {
  throw DataError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError("unix socket path too long (" +
                      std::to_string(path.size()) + " bytes, max " +
                      std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

int new_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) sock_error("cannot create socket");
  return fd;
}

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped to >= 0. Returns -1 (poll's
/// "wait forever") when there is no deadline.
int remaining_ms(bool has_deadline, SteadyClock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Wait until the fd is ready for `events` or the deadline passes.
/// Returns true when ready, false on deadline expiry.
bool poll_until(int fd, short events, bool has_deadline,
                SteadyClock::time_point deadline) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int wait = remaining_ms(has_deadline, deadline);
    if (has_deadline && wait == 0) return false;
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      sock_error("poll on socket failed");
    }
    if (ready > 0) return true;
    if (has_deadline) return false;
  }
}

}  // namespace

Socket::~Socket() { close_fd(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  ::unlink(path.c_str());
  Socket sock(new_socket(AF_UNIX));
  if (::bind(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    sock_error("cannot bind unix socket '" + path + "'");
  }
  if (::listen(sock.fd_, backlog) != 0) {
    sock_error("cannot listen on unix socket '" + path + "'");
  }
  return sock;
}

Socket Socket::listen_tcp_addr(std::uint32_t bind_addr_be, int port,
                               int backlog, const std::string& what) {
  Socket sock(new_socket(AF_INET));
  const int one = 1;
  ::setsockopt(sock.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = bind_addr_be;
  if (::bind(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    sock_error("cannot bind " + what);
  }
  if (::listen(sock.fd_, backlog) != 0) {
    sock_error("cannot listen on " + what);
  }
  return sock;
}

Socket Socket::listen_tcp(int port, int backlog) {
  return listen_tcp_addr(htonl(INADDR_LOOPBACK), port, backlog,
                         "tcp port " + std::to_string(port));
}

Socket Socket::listen_tcp(const std::string& host, int port, int backlog) {
  in_addr parsed{};
  if (::inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    throw ConfigError("invalid IPv4 bind address '" + host + "'");
  }
  return listen_tcp_addr(parsed.s_addr, port, backlog,
                         "tcp " + host + ":" + std::to_string(port));
}

Socket Socket::connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Socket sock(new_socket(AF_UNIX));
  if (::connect(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    sock_error("cannot connect to unix socket '" + path + "'");
  }
  return sock;
}

Socket Socket::connect_tcp(const std::string& host, int port) {
  Socket sock(new_socket(AF_INET));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("invalid IPv4 address '" + host + "'");
  }
  if (::connect(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    sock_error("cannot connect to " + host + ":" + std::to_string(port));
  }
  // The protocol is strict request/response with small frames; latency
  // matters more than coalescing.
  const int one = 1;
  ::setsockopt(sock.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

std::optional<Socket> Socket::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      sock_error("poll on listener failed");
    }
    if (ready == 0) return std::nullopt;
    break;
  }
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // The pending connection vanished between poll and accept; report a
    // timeout so the caller's loop just polls again.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    sock_error("accept failed");
  }
}

void Socket::send_all(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as an error on this
    // connection, not a process-wide SIGPIPE.
    const ::ssize_t n =
        ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sock_error("socket send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::recv(fd_, bytes + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sock_error("socket recv failed");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close on a message boundary
      throw DataError("peer closed mid-message (" + std::to_string(got) +
                      " of " + std::to_string(size) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::write_exact(const void* data, std::size_t size, int timeout_ms) {
  if (timeout_ms <= 0) {
    send_all(data, size);
    return;
  }
  const bool has_deadline = true;
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ::ssize_t n = ::send(fd_, bytes + sent, size - sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!poll_until(fd_, POLLOUT, has_deadline, deadline)) {
          throw DataError("socket write timed out after " +
                          std::to_string(timeout_ms) + " ms (" +
                          std::to_string(sent) + " of " +
                          std::to_string(size) + " bytes sent)");
        }
        continue;
      }
      sock_error("socket send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::read_exact(void* data, std::size_t size, int timeout_ms) {
  if (timeout_ms <= 0) return recv_exact(data, size);
  const bool has_deadline = true;
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  char* bytes = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n = ::recv(fd_, bytes + got, size - got, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!poll_until(fd_, POLLIN, has_deadline, deadline)) {
          throw DataError("socket read timed out after " +
                          std::to_string(timeout_ms) + " ms (" +
                          std::to_string(got) + " of " + std::to_string(size) +
                          " bytes received)");
        }
        continue;
      }
      sock_error("socket recv failed");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close on a message boundary
      throw DataError("peer closed mid-message (" + std::to_string(got) +
                      " of " + std::to_string(size) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Socket::peer_is_loopback() const {
  sockaddr_storage peer{};
  socklen_t len = sizeof(peer);
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&peer), &len) != 0) {
    return false;  // fail closed: unknown peers are not loopback
  }
  switch (peer.ss_family) {
    case AF_UNIX:
      return true;
    case AF_INET: {
      const auto* in4 = reinterpret_cast<const sockaddr_in*>(&peer);
      return (ntohl(in4->sin_addr.s_addr) >> 24) == 127;
    }
    case AF_INET6: {
      const auto* in6 = reinterpret_cast<const sockaddr_in6*>(&peer);
      if (IN6_IS_ADDR_LOOPBACK(&in6->sin6_addr)) return true;
      if (IN6_IS_ADDR_V4MAPPED(&in6->sin6_addr)) {
        const unsigned char* b =
            reinterpret_cast<const unsigned char*>(&in6->sin6_addr);
        return b[12] == 127;
      }
      return false;
    }
    default:
      return false;
  }
}

int Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return 0;
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

}  // namespace ccd::util
