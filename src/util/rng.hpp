// Deterministic pseudo-random number generation for simulations.
//
// We implement xoshiro256++ (Blackman & Vigna) rather than relying on
// std::mt19937 so that (a) streams are reproducible across standard-library
// implementations, and (b) `split()` can derive independent child streams for
// parallel generation without sharing state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ccd::util {

/// Complete generator state, for bitwise-exact checkpoint/resume: the four
/// xoshiro words plus the cached second Box–Muller deviate (a resumed
/// stream must replay it before drawing a fresh pair).
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

class Rng {
 public:
  /// Seeds the four 64-bit words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Poisson via inversion for small means, normal approximation for large.
  std::uint64_t poisson(double mean);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Sample an index from unnormalized non-negative weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream (for per-thread generation).
  Rng split();

  /// Snapshot / restore the full generator state. A generator restored from
  /// state() continues the original stream bitwise-identically.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ccd::util
