// Cooperative cancellation and deadlines for long-running work.
//
// A CancellationToken is a cheap, copyable handle to shared stop state.
// Producers call request_cancel() (or arm a Deadline); workers poll. Two
// polling tiers keep the hot path essentially free:
//
//  * cancelled() — one relaxed atomic load through a stable pointer. This
//    is the per-iteration check for hot loops (the solve fan-out, a
//    parallel_for body); it never reads the clock. Cost is on the order of
//    the disarmed-metrics branch (~1-2 ns, benchmarked in bench_perf).
//  * poll() — additionally reads the steady clock and flips the token to
//    cancelled (reason kDeadline) once the armed deadline has passed. Call
//    it at coarse boundaries only: per pipeline stage, per simulation
//    round, per parallel_for chunk, per k-sweep.
//
// Cancellation is cooperative and silent: nothing throws on its own.
// Checkpoints in the code observe the token, stop starting new work, and
// leave the caller to render a well-formed partial result (see
// core::run_pipeline and core::StackelbergSimulator::run). Sites that have
// no partial result to return throw CancelledError (ErrorCode::kDeadline,
// ccdctl exit code 6) instead.
//
// Tokens are handed through the library as `const CancellationToken*`
// (null = run to completion) so the un-cancellable path stays branch-free
// at construction sites and nothing allocates when durability is off.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace ccd::util {

/// Why a token fired.
enum class CancelReason : int {
  kNone = 0,      ///< not cancelled
  kCancelled = 1, ///< explicit request_cancel()
  kDeadline = 2,  ///< armed deadline expired
};

const char* to_string(CancelReason reason);

/// A wall-clock budget on the steady clock. Default-constructed deadlines
/// are inactive (never expire).
class Deadline {
 public:
  Deadline() = default;

  /// Expires `seconds` from now (negative or zero: already expired).
  static Deadline after(double seconds);
  /// An inactive deadline (never expires); the default state, spelled out.
  static Deadline never() { return {}; }

  bool active() const { return active_; }
  /// True when active and the steady clock has passed the deadline.
  bool expired() const;
  /// Seconds until expiry; +infinity when inactive, <= 0 once expired.
  double remaining_s() const;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point at_{};
};

class CancellationToken {
 public:
  /// A fresh, un-cancelled token with no deadline.
  CancellationToken();

  /// Flip the token to cancelled. Idempotent; the first reason wins.
  void request_cancel(CancelReason reason = CancelReason::kCancelled) const;

  /// Arm (or replace) the deadline. Call before sharing the token with
  /// workers: the deadline itself is not synchronized, only the cancelled
  /// flag it eventually flips.
  void set_deadline(Deadline deadline);

  /// Hot-path check: one relaxed load, never reads the clock. A deadline
  /// only becomes visible here after some thread has poll()ed past it.
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Coarse-granularity check: also reads the clock and latches deadline
  /// expiry into the cancelled flag. Returns cancelled().
  bool poll() const;

  /// Why the token fired (kNone while not cancelled).
  CancelReason reason() const {
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_relaxed));
  }

  const Deadline& deadline() const { return state_->deadline; }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int> reason{static_cast<int>(CancelReason::kNone)};
    Deadline deadline;
  };
  std::shared_ptr<State> state_;
};

}  // namespace ccd::util
