// Error types and runtime check macros shared by all ccd libraries.
//
// The library reports precondition violations and unrecoverable runtime
// failures by throwing subclasses of ccd::Error (itself a
// std::runtime_error), so callers can catch per-domain or catch-all.
//
// Every Error carries a stable ErrorCode (for scripted triage — ccdctl maps
// codes to process exit codes via exit_code()) and an attachable
// ErrorContext (worker id, pipeline stage, round, suppressed-failure count).
// Context is attached at the recovery boundary that knows it, typically by
// catching `Error&` by non-const reference, annotating, and rethrowing with
// a bare `throw;` — this preserves the dynamic exception type:
//
//   try { fit(...); }
//   catch (Error& e) { e.with_stage("fit").with_worker(id); throw; }
//
// what() renders the message plus any attached context, so downstream
// catch-sites and logs see the full story without extra plumbing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ccd {

/// Stable error category codes. Values are part of the tooling contract:
/// ccdctl exits with exit_code(code), and scripted sweeps triage on them —
/// never renumber.
enum class ErrorCode : int {
  kGeneric = 1,   ///< uncategorized ccd::Error (includes CCD_CHECK failures)
  kConfig = 2,    ///< ConfigError
  kData = 3,      ///< DataError
  kMath = 4,      ///< MathError
  kContract = 5,  ///< ContractError
  kDeadline = 6,  ///< CancelledError — run cancelled or deadline expired
  kAuth = 7,      ///< AuthError — transport authentication failed
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kData: return "data";
    case ErrorCode::kMath: return "math";
    case ErrorCode::kContract: return "contract";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kAuth: return "auth";
  }
  return "?";
}

/// Process exit code for an error category (ConfigError=2, DataError=3,
/// MathError=4, ContractError=5, CancelledError=6, AuthError=7, anything
/// else 1).
inline int exit_code(ErrorCode code) { return static_cast<int>(code); }

/// Provenance attached to an Error as it crosses recovery boundaries.
/// Fields left unset stay out of what(); merging never overwrites a field
/// that is already set, so the innermost (most specific) annotation wins.
struct ErrorContext {
  static constexpr std::int64_t kUnset = -1;

  std::string stage;              ///< pipeline stage name ("fit", "solve", ...)
  std::int64_t worker = kUnset;   ///< offending worker id
  std::int64_t round = kUnset;    ///< offending round index
  /// Additional task failures beyond the rethrown first one (set by
  /// ThreadPool::parallel_for when several chunks throw).
  std::size_t suppressed_failures = 0;

  bool empty() const {
    return stage.empty() && worker == kUnset && round == kUnset &&
           suppressed_failures == 0;
  }

  /// Fill unset fields of *this from `other` (set fields are kept).
  void merge(const ErrorContext& other) {
    if (stage.empty()) stage = other.stage;
    if (worker == kUnset) worker = other.worker;
    if (round == kUnset) round = other.round;
    if (suppressed_failures == 0) suppressed_failures = other.suppressed_failures;
  }

  /// Renders e.g. " [stage=solve worker=12 round=3]" — empty string when
  /// nothing is set. The suppressed-failure note renders separately.
  std::string to_string() const {
    if (stage.empty() && worker == kUnset && round == kUnset) return "";
    std::ostringstream os;
    os << " [";
    bool first = true;
    const auto sep = [&] {
      if (!first) os << ' ';
      first = false;
    };
    if (!stage.empty()) {
      sep();
      os << "stage=" << stage;
    }
    if (worker != kUnset) {
      sep();
      os << "worker=" << worker;
    }
    if (round != kUnset) {
      sep();
      os << "round=" << round;
    }
    os << ']';
    return os.str();
  }
};

/// Root of the ccd exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::kGeneric)
      : std::runtime_error(what), message_(what), full_(what), code_(code) {}

  /// Message plus rendered context (identical to the raw message while no
  /// context is attached).
  const char* what() const noexcept override { return full_.c_str(); }

  ErrorCode code() const { return code_; }
  const ErrorContext& context() const { return context_; }
  /// The original message without context decoration.
  const std::string& message() const { return message_; }

  Error& with_stage(const std::string& stage) {
    if (context_.stage.empty()) context_.stage = stage;
    rebuild();
    return *this;
  }
  Error& with_worker(std::int64_t worker) {
    if (context_.worker == ErrorContext::kUnset) context_.worker = worker;
    rebuild();
    return *this;
  }
  Error& with_round(std::int64_t round) {
    if (context_.round == ErrorContext::kUnset) context_.round = round;
    rebuild();
    return *this;
  }
  Error& with_suppressed_failures(std::size_t count) {
    context_.suppressed_failures = count;
    rebuild();
    return *this;
  }
  Error& with_context(const ErrorContext& context) {
    context_.merge(context);
    rebuild();
    return *this;
  }

 private:
  void rebuild() {
    full_ = message_ + context_.to_string();
    if (context_.suppressed_failures > 0) {
      full_ += " (+" + std::to_string(context_.suppressed_failures) +
               " more task failures)";
    }
  }

  std::string message_;
  std::string full_;
  ErrorCode code_;
  ErrorContext context_;
};

/// Invalid user-supplied configuration or parameter value.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error(what, ErrorCode::kConfig) {}
};

/// Malformed or inconsistent dataset / trace input.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what)
      : Error(what, ErrorCode::kData) {}
};

/// Numerical failure (singular system, domain violation, non-convergence).
class MathError : public Error {
 public:
  explicit MathError(const std::string& what)
      : Error(what, ErrorCode::kMath) {}
};

/// Contract-construction failure (infeasible piece, invalid effort model).
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what)
      : Error(what, ErrorCode::kContract) {}
};

/// A run was cancelled (explicitly or by deadline expiry) at a site with
/// no well-formed partial result to return. Sites that can degrade — the
/// pipeline, the Stackelberg simulator — return a partial result with the
/// cancellation recorded instead of throwing this.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what)
      : Error(what, ErrorCode::kDeadline) {}
};

/// Transport authentication failure: a connection that requires the CSRV
/// token handshake presented no proof, a wrong proof, or a replayed one.
/// The server closes such connections; clients surface exit code 7.
class AuthError : public Error {
 public:
  explicit AuthError(const std::string& what)
      : Error(what, ErrorCode::kAuth) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CCD_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ccd

/// Runtime precondition check; throws ccd::Error with location on failure.
/// Always active (not compiled out in release builds): these guard
/// library-boundary invariants, not internal assertions.
#define CCD_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ccd::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define CCD_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream ccd_check_os_;                                     \
      ccd_check_os_ << msg;                                                 \
      ::ccd::detail::throw_check_failure(#expr, __FILE__, __LINE__,         \
                                         ccd_check_os_.str());              \
    }                                                                       \
  } while (false)
