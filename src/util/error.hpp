// Error types and runtime check macros shared by all ccd libraries.
//
// The library reports precondition violations and unrecoverable runtime
// failures by throwing subclasses of ccd::Error (itself a
// std::runtime_error), so callers can catch per-domain or catch-all.
#pragma once

#include <stdexcept>
#include <sstream>
#include <string>

namespace ccd {

/// Root of the ccd exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration or parameter value.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Malformed or inconsistent dataset / trace input.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// Numerical failure (singular system, domain violation, non-convergence).
class MathError : public Error {
 public:
  explicit MathError(const std::string& what) : Error(what) {}
};

/// Contract-construction failure (infeasible piece, invalid effort model).
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CCD_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ccd

/// Runtime precondition check; throws ccd::Error with location on failure.
/// Always active (not compiled out in release builds): these guard
/// library-boundary invariants, not internal assertions.
#define CCD_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ccd::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define CCD_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream ccd_check_os_;                                     \
      ccd_check_os_ << msg;                                                 \
      ::ccd::detail::throw_check_failure(#expr, __FILE__, __LINE__,         \
                                         ccd_check_os_.str());              \
    }                                                                       \
  } while (false)
