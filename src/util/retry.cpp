#include "util/retry.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/atomic_file.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace ccd::util {

void RetryPolicy::validate() const {
  CCD_CHECK_MSG(max_attempts >= 1, "retry needs at least one attempt");
  CCD_CHECK_MSG(initial_backoff_s >= 0.0, "retry backoff must be >= 0");
  CCD_CHECK_MSG(multiplier >= 1.0, "retry multiplier must be >= 1");
  CCD_CHECK_MSG(jitter >= 0.0 && jitter <= 1.0, "retry jitter must be in [0, 1]");
}

namespace detail {
namespace {

struct IoMetrics {
  metrics::Counter& attempts;
  metrics::Counter& retries;
  metrics::Counter& successes;
  metrics::Counter& failures;

  static IoMetrics& get() {
    static IoMetrics* const m = [] {
      metrics::MetricsRegistry& reg = metrics::registry();
      return new IoMetrics{reg.counter("ccd.io.attempts"),
                           reg.counter("ccd.io.retries"),
                           reg.counter("ccd.io.successes"),
                           reg.counter("ccd.io.failures")};
    }();
    return *m;
  }
};

}  // namespace

double backoff_before(const char* op, const RetryPolicy& policy,
                      std::size_t next_attempt) {
  if (next_attempt == 0) return 0.0;
  double backoff = policy.initial_backoff_s *
                   std::pow(policy.multiplier,
                            static_cast<double>(next_attempt - 1));
  if (policy.jitter > 0.0) {
    // Deterministic per (seed, operation, attempt): retry schedules are
    // part of the reproducible run, not a source of noise.
    Rng rng(policy.seed ^ fnv1a64(op, std::strlen(op)) ^
            (0x9e3779b97f4a7c15ULL * next_attempt));
    backoff *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  if (policy.sleep && backoff > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
  return backoff;
}

void count_attempt() { IoMetrics::get().attempts.add(1); }
void count_retry() { IoMetrics::get().retries.add(1); }
void count_success() { IoMetrics::get().successes.add(1); }
void count_failure() { IoMetrics::get().failures.add(1); }

}  // namespace detail
}  // namespace ccd::util
