// Fixed-size thread pool with a blocking task queue and a parallel_for
// convenience wrapper.
//
// The contract-design pipeline decomposes the bilevel program into
// independent per-worker subproblems (paper §IV); the pool is how we solve
// them in parallel. Exceptions thrown by tasks submitted through
// parallel_for are captured and rethrown on the calling thread (first one
// wins), so failures are not silently lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccd::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete.
  /// Rethrows the first task exception on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Blocked parallel_for over a shared default pool (lazily constructed with
/// hardware concurrency). Suitable for coarse-grained work items.
void parallel_for_default(std::size_t n,
                          const std::function<void(std::size_t)>& fn);

}  // namespace ccd::util
