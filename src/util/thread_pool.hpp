// Fixed-size thread pool with a blocking task queue and a parallel_for
// convenience wrapper.
//
// The contract-design pipeline decomposes the bilevel program into
// independent per-worker subproblems (paper §IV); the pool is how we solve
// them in parallel. Exceptions thrown by tasks submitted through
// parallel_for are captured and rethrown on the calling thread: the first
// failure is rethrown verbatim, and when several chunks threw, the count of
// the additional failures is appended to its message ("(+K more task
// failures)" — attached as ErrorContext::suppressed_failures for ccd::Error,
// re-wrapped as std::runtime_error otherwise), so no failure is silently
// lost.
//
// Threading model:
//  * parallel_for is reentrant. When called from one of the pool's own
//    worker threads it runs every index inline on the caller: the outer
//    task already occupies a worker slot and would otherwise block on
//    future::get() for chunks that can never be scheduled (deadlock once
//    all slots are held by blocked outer tasks).
//  * A process-wide pool is available via shared_pool(). It is created on
//    first use and intentionally never destroyed, so no thread joins race
//    other objects during static destruction; call shutdown_shared_pool()
//    (or ThreadPool::shutdown()) when deterministic teardown is needed.
//  * After shutdown() a pool keeps working in degraded form: parallel_for
//    runs inline and submit throws.
//
// Observability: every pool reports into the process-wide `ccd.pool.*`
// metrics — queue depth and busy-worker gauges, a task-latency histogram
// (execution time of each dequeued task, microseconds), and a completed-
// task counter. `ccd.pool.threads` carries the shared pool's size. See
// util/metrics.hpp for the export paths and the -DCCD_NO_METRICS switch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/cancellation.hpp"
#include "util/metrics.hpp"

namespace ccd::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads still attached (0 after shutdown()).
  std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Stop accepting new work, drain the queue, and join all workers.
  /// Idempotent; must not be called from one of the pool's own tasks.
  /// The destructor calls it implicitly.
  void shutdown();

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    std::size_t depth;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
      depth = queue_.size();
    }
    queue_depth_->set(static_cast<double>(depth));
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete.
  /// Rethrows the first task exception on the caller, with the number of
  /// additional (suppressed) task failures appended to its message.
  /// Reentrant: nested calls from a worker of this pool (and calls after
  /// shutdown) run inline on the calling thread.
  ///
  /// When `cancel` is non-null, cancellation is cooperative and silent:
  /// each chunk re-polls the token (latching deadline expiry) and each
  /// index checks the cheap cancelled() flag; indices not yet started are
  /// skipped, indices already running finish normally, and parallel_for
  /// returns without throwing. Callers that need to know inspect
  /// cancel->cancelled() afterwards and render their own partial result.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const CancellationToken* cancel = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Observability handles (process-wide `ccd.pool.*` metrics, aggregated
  // across every pool). Resolved once at construction; all mutation is
  // lock-free and compiles out under -DCCD_NO_METRICS.
  metrics::Counter* tasks_completed_;
  metrics::Histogram* task_us_;
  metrics::Gauge* queue_depth_;
  metrics::Gauge* busy_workers_;
};

/// The process-wide shared pool (hardware concurrency). Constructed on
/// first use and deliberately leaked: its threads are joined only by an
/// explicit shutdown_shared_pool(), never during static destruction.
ThreadPool& shared_pool();

/// Explicitly stop the shared pool (idempotent). Afterwards parallel_for
/// on the shared pool degrades to inline execution, so late callers still
/// make progress.
void shutdown_shared_pool();

/// Blocked parallel_for over shared_pool(). Suitable for coarse-grained
/// work items.
void parallel_for_default(std::size_t n,
                          const std::function<void(std::size_t)>& fn);

}  // namespace ccd::util
