#include "util/csv.hpp"

#include <fstream>

#include "util/error.hpp"

namespace ccd::util {

CsvRow parse_csv_line(const std::string& line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        if (!field.empty()) {
          throw DataError("CSV: quote in the middle of an unquoted field");
        }
        in_quotes = true;
      } else if (c == ',') {
        row.push_back(std::move(field));
        field.clear();
      } else {
        field += c;
      }
    }
    ++i;
  }
  if (in_quotes) throw DataError("CSV: unterminated quoted field");
  row.push_back(std::move(field));
  return row;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

struct CsvReader::Impl {
  std::ifstream in;
};

CsvReader::CsvReader(const std::string& path) : impl_(new Impl) {
  impl_->in.open(path);
  if (!impl_->in) {
    delete impl_;
    throw DataError("cannot open CSV file for reading: " + path);
  }
}

CsvReader::~CsvReader() { delete impl_; }

bool CsvReader::next(CsvRow& row) {
  std::string line;
  if (!std::getline(impl_->in, line)) return false;
  ++line_number_;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  try {
    row = parse_csv_line(line);
  } catch (const DataError& e) {
    throw DataError(std::string(e.what()) + " (line " +
                    std::to_string(line_number_) + ")");
  }
  return true;
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw DataError("cannot open CSV file for writing: " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) impl_->out << ',';
    impl_->out << csv_escape(row[i]);
  }
  impl_->out << '\n';
  if (!impl_->out) throw DataError("CSV write failed");
}

void CsvWriter::flush() { impl_->out.flush(); }

}  // namespace ccd::util
