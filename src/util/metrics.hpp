// Process-wide observability: counters, gauges, and fixed-bucket latency
// histograms behind a lock-striped registry, plus RAII timing helpers and
// text/JSON/Prometheus export.
//
// Design constraints (the pipeline's hot paths run through here):
//  * Zero allocation on the hot path. Registration (`registry().counter(..)`)
//    hashes a name and takes a stripe lock once; the returned handle is a
//    stable reference whose mutation methods are lock-free atomic ops.
//    Instrument hot loops through cached handles, never by name.
//  * Disarmed cost is a branch. Every mutation first checks the global
//    `enabled()` flag (one relaxed atomic load); `set_enabled(false)`
//    reduces the entire subsystem to that branch. Compiling with
//    -DCCD_NO_METRICS replaces every type in this header with an inline
//    no-op stub, so instrumentation vanishes from the binary while call
//    sites compile unchanged.
//  * Histograms are fixed-bucket (powers of two, unit-agnostic — the
//    conventional unit for latency metrics here is microseconds), so
//    snapshots merge across threads and runs by bucket-wise addition, and
//    p50/p95/p99 are estimated by linear interpolation inside the bucket
//    that holds the rank (error bounded by the bucket width).
//
// Naming convention: `ccd.<layer>.<name>`, e.g. `ccd.pipeline.solve_us`,
// `ccd.pool.queue_depth`, `ccd.cache.hits`. Latency histograms end in the
// unit suffix `_us`. The registry is process-wide; `reset()` zeroes every
// value but keeps registrations (and thus outstanding handles) valid —
// call it between pipeline runs for per-run readings.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <string_view>

#ifndef CCD_NO_METRICS
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#endif

namespace ccd::util::metrics {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Upper bucket bounds shared by every histogram: powers of two from 1 to
/// 2^26, plus a final overflow bucket. Bucket i holds values < kBounds[i]
/// (bucket 0 also absorbs everything below 1, including negatives).
inline constexpr std::size_t kHistogramBuckets = 28;

/// Bound of bucket i for i < kHistogramBuckets - 1 (the last bucket is
/// unbounded).
double histogram_bucket_bound(std::size_t i);

/// Mergeable point-in-time view of a histogram. Plain data: safe to copy
/// into results, diff across runs, and merge across threads.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< observed extrema (0 when count == 0)
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// bucket holding the rank, clamped to the observed [min, max].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void merge(const HistogramSnapshot& other);
};

#ifndef CCD_NO_METRICS

/// True when instrumentation is armed (the default). The flag is global on
/// purpose: it makes "disarm everything" one store, and every mutation
/// exactly one extra relaxed load when disarmed.
bool enabled();
void set_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // Padded to a cache line so independent hot counters don't false-share.
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (bounds above). Thread-safe: record() is a
/// handful of relaxed atomic ops, no locks, no allocation.
class Histogram {
 public:
  void record(double value);
  /// Fold a snapshot in (bucket-wise). Used to roll per-run local
  /// histograms up into the process-wide registry. Ignores enabled():
  /// the per-sample gate already ran when the snapshot was recorded.
  void merge(const HistogramSnapshot& snap);
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Extrema start at +/-inf and are folded in with CAS loops; snapshot()
  // maps the empty-histogram infinities back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One registered metric, exported by name.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  HistogramSnapshot histogram;
};

/// Lock-striped name -> metric table. Handles returned by counter() /
/// gauge() / histogram() stay valid for the registry's lifetime (the
/// process, for the global instance()): values are zeroed by reset(), but
/// registrations are never removed.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  /// Fetch-or-register. Throws ccd::ConfigError if `name` is already
  /// registered with a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every value; registrations (and outstanding handles) survive.
  void reset();
  /// Point-in-time view of every metric, sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Metric;
  struct Stripe;
  Metric& metric_for(std::string_view name, MetricKind kind);

  static constexpr std::size_t kStripes = 16;
  std::unique_ptr<Stripe[]> stripes_;
};

/// RAII wall-clock span. Arms itself only when metrics are enabled at
/// construction; on stop (or destruction) records the elapsed time in
/// microseconds into `hist` (when non-null) and, independently of the
/// enabled flag, writes elapsed seconds to `out_seconds` (when non-null) —
/// pipeline results always carry their stage timings.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, double* out_seconds = nullptr);
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record once; further calls are no-ops. Returns elapsed seconds (0
  /// after the first call).
  double stop();

 private:
  Histogram* hist_;
  double* out_seconds_;
  std::chrono::steady_clock::time_point start_;
  bool running_;
};

#else  // CCD_NO_METRICS — same API, all no-ops, nothing in the binary.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
  void reset() {}
};

class Histogram {
 public:
  void record(double) {}
  void merge(const HistogramSnapshot&) {}
  HistogramSnapshot snapshot() const { return {}; }
  std::uint64_t count() const { return 0; }
  void reset() {}
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  HistogramSnapshot histogram;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();
  Counter& counter(std::string_view) { return dummy_counter_; }
  Gauge& gauge(std::string_view) { return dummy_gauge_; }
  Histogram& histogram(std::string_view) { return dummy_histogram_; }
  void reset() {}
  std::vector<MetricSnapshot> snapshot() const { return {}; }

 private:
  Counter dummy_counter_;
  Gauge dummy_gauge_;
  Histogram dummy_histogram_;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*, double* out_seconds = nullptr)
      : out_seconds_(out_seconds) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  double stop() {
    if (out_seconds_) *out_seconds_ = 0.0;
    out_seconds_ = nullptr;
    return 0.0;
  }

 private:
  double* out_seconds_;
};

#endif  // CCD_NO_METRICS

/// Shorthand for MetricsRegistry::instance().
MetricsRegistry& registry();

/// Whether instrumentation exists in this build (false under
/// -DCCD_NO_METRICS). Lets tools print "metrics compiled out" instead of
/// an empty report.
bool compiled_in();

/// JSON object keyed by metric name, sorted; histograms carry count, sum,
/// extrema, p50/p95/p99, and their non-empty buckets.
std::string to_json();

/// Prometheus text exposition format ('.' in names becomes '_';
/// histograms emit cumulative _bucket{le=...}, _sum, _count).
std::string to_prometheus();

/// Human-readable digest of the registry for CLI output: per-stage
/// pipeline latencies (p50/p95), thread-pool load and utilization, and
/// design-cache hit rate. Empty string when nothing has been recorded.
std::string render_summary();

}  // namespace ccd::util::metrics
