#include "util/wire.hpp"

#include <bit>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace ccd::util::wire {

namespace {
constexpr char kMagic[4] = {'C', 'C', 'D', 'F'};
}  // namespace

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(in_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string s = in_.substr(pos_, size);
  pos_ += size;
  return s;
}

std::vector<double> Reader::f64_vec() {
  const std::size_t size = count(8);
  std::vector<double> v;
  v.reserve(size);
  for (std::size_t i = 0; i < size; ++i) v.push_back(f64());
  return v;
}

std::size_t Reader::count(std::size_t min_element_bytes) {
  const std::uint64_t n = u64();
  if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
    throw DataError("wire payload count exceeds remaining bytes");
  }
  return static_cast<std::size_t>(n);
}

void Reader::finish() const {
  if (pos_ != in_.size()) {
    throw DataError("wire payload has trailing bytes");
  }
}

void Reader::need(std::uint64_t bytes) const {
  if (bytes > remaining()) {
    throw DataError("wire payload truncated");
  }
}

std::string encode_frame(const std::string& tag, std::uint32_t version,
                         const std::string& payload) {
  CCD_CHECK_MSG(tag.size() == 4, "frame tag must be exactly 4 bytes");
  Writer w;
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.append(tag);
  w.u32(version);
  w.u64(payload.size());
  w.u64(fnv1a64(payload.data(), payload.size()));
  out.append(w.take());
  out.append(payload);
  return out;
}

FrameHeader decode_frame_header(std::string_view data, const std::string& tag,
                                std::uint32_t min_version,
                                std::uint32_t max_version,
                                std::uint64_t max_payload,
                                const std::string& context) {
  CCD_CHECK_MSG(tag.size() == 4, "frame tag must be exactly 4 bytes");
  if (data.size() < kFrameHeaderSize) {
    throw DataError("truncated frame from " + context + " (" +
                    std::to_string(data.size()) + " bytes, header needs " +
                    std::to_string(kFrameHeaderSize) + ")");
  }
  if (data.compare(0, 4, kMagic, 4) != 0) {
    throw DataError("bad magic in frame from " + context);
  }
  if (data.compare(4, 4, tag) != 0) {
    throw DataError("frame from " + context + " has tag '" +
                    std::string(data.substr(4, 4)) + "', expected '" + tag +
                    "'");
  }
  const std::string header_bytes(data.substr(8, 20));
  Reader r(header_bytes);
  FrameHeader header;
  header.tag = tag;
  header.version = r.u32();
  header.payload_size = r.u64();
  header.checksum = r.u64();
  if (header.version < min_version || header.version > max_version) {
    throw DataError("frame from " + context + " has unsupported version " +
                    std::to_string(header.version) + " (supported " +
                    std::to_string(min_version) + ".." +
                    std::to_string(max_version) + ")");
  }
  if (header.payload_size > max_payload) {
    throw DataError("frame from " + context + " announces " +
                    std::to_string(header.payload_size) +
                    " payload bytes, limit is " + std::to_string(max_payload));
  }
  return header;
}

void verify_frame_payload(const FrameHeader& header, std::string_view payload,
                          const std::string& context) {
  if (payload.size() != header.payload_size) {
    throw DataError("frame payload from " + context + " is " +
                    std::to_string(payload.size()) + " bytes, header says " +
                    std::to_string(header.payload_size) +
                    " (truncated or torn)");
  }
  const std::uint64_t actual = fnv1a64(payload.data(), payload.size());
  if (actual != header.checksum) {
    throw DataError("checksum mismatch in frame from " + context +
                    " (corrupted)");
  }
}

}  // namespace ccd::util::wire
