// Little-endian byte-stream codec and the "CCDF" frame helpers shared by
// on-disk checkpoints (util/atomic_file.hpp) and the serve subsystem's
// socket protocol (serve/protocol.hpp).
//
// Writer/Reader are the primitive pair: integers travel little-endian,
// doubles as their exact bit patterns (bit_cast through u64) — the
// durability and serving contracts are *bitwise* reproduction, which a
// text round-trip cannot guarantee. Reader throws ccd::DataError on any
// truncation, oversized count, or trailing garbage — never UB, never a
// half-decoded object.
//
// Frames wrap a payload in the fixed 28-byte header documented in
// util/atomic_file.hpp (magic "CCDF", 4-byte caller tag, version, payload
// size, FNV-1a 64 checksum). atomic_file composes encode_frame with the
// write-temp+fsync+rename primitive for files; the serve daemon writes the
// same bytes down a socket, so a frame captured off the wire and a framed
// file are interchangeable at the byte level. decode_frame_header /
// verify_frame_payload let stream readers validate incrementally: header
// first (rejecting absurd sizes before allocating), payload checksum once
// the bytes have arrived.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccd::util::wire {

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }

  /// Exact bit pattern (bit_cast through u64).
  void f64(double v);

  /// Length-prefixed (u64) byte string.
  void str(const std::string& s) {
    u64(s.size());
    out_.append(s);
  }

  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. The buffer
/// must outlive the Reader.
class Reader {
 public:
  explicit Reader(const std::string& in) : in_(in) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();

  /// A count that is about to drive element-wise reads; bounded by the
  /// remaining bytes so corrupt (yet checksum-valid) data cannot request
  /// absurd allocations. Throws ccd::DataError when the count could not
  /// possibly fit.
  std::size_t count(std::size_t min_element_bytes);

  /// Throws ccd::DataError unless every byte has been consumed.
  void finish() const;

  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void need(std::uint64_t bytes) const;

  const std::string& in_;
  std::size_t pos_ = 0;
};

/// Size of the fixed frame header (magic + tag + version + size + checksum).
inline constexpr std::size_t kFrameHeaderSize = 28;

/// Decoded and validated frame header.
struct FrameHeader {
  std::string tag;  ///< 4 bytes
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

/// Build header + payload as one byte string (what write_framed_file puts
/// on disk and the serve protocol puts on the wire). `tag` must be exactly
/// 4 bytes.
std::string encode_frame(const std::string& tag, std::uint32_t version,
                         const std::string& payload);

/// Parse and validate the first kFrameHeaderSize bytes of `data`: magic,
/// expected tag, version within [min_version, max_version], payload size
/// at most `max_payload`. `context` names the source ("socket", a file
/// path) in error messages. Throws ccd::DataError on any mismatch.
FrameHeader decode_frame_header(std::string_view data, const std::string& tag,
                                std::uint32_t min_version,
                                std::uint32_t max_version,
                                std::uint64_t max_payload,
                                const std::string& context);

/// Verify the payload checksum announced by `header`. Throws ccd::DataError
/// on mismatch.
void verify_frame_payload(const FrameHeader& header, std::string_view payload,
                          const std::string& context);

}  // namespace ccd::util::wire
