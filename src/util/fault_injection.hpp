// Deterministic, seeded fault injection for chaos testing.
//
// A FaultInjector decides, per named injection site and per entity key,
// whether to throw an injected fault. The decision is a pure function of
// (seed, site, key) — never of thread scheduling or call order — so a run
// at a given seed and rate injects the exact same faults no matter how the
// work is parallelized, and a chaos test can assert exact invariants.
//
// The injector is compiled in always and off by default. The disabled fast
// path is a single relaxed atomic load (see CCD_FAULT_POINT), so production
// code pays effectively nothing for carrying the sites.
//
// Usage:
//
//   // at an injection site (key must be deterministic for the entity):
//   CCD_FAULT_POINT("contract.design", spec_key, ContractError);
//
//   // in a chaos test:
//   util::FaultInjectorConfig chaos;
//   chaos.enabled = true;
//   chaos.seed = 7;
//   chaos.rate = 0.05;                       // all sites at 5%...
//   chaos.site_rates["math.polyfit"] = 0.2;  // ...except this one
//   util::FaultInjector::instance().configure(chaos);
//   ... run the pipeline, assert invariants ...
//   util::FaultInjector::instance().disable();
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ccd::util {

struct FaultInjectorConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Default injection probability for every site in [0, 1].
  double rate = 0.0;
  /// Per-site overrides of `rate`.
  std::map<std::string, double> site_rates;
};

class FaultInjector {
 public:
  /// The process-wide injector used by CCD_FAULT_POINT.
  static FaultInjector& instance();

  /// Install a configuration (also resets the injection counters).
  void configure(const FaultInjectorConfig& config);

  /// Turn injection off and clear counters (equivalent to configure({})).
  void disable();

  /// True when injection is configured on. Single relaxed load — this is
  /// the only cost on the production path.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Deterministic decision for (site, key) under the current config, and
  /// counts the injection when it fires. Meaningful only while armed.
  bool should_inject(const char* site, std::uint64_t key);

  /// Injections fired at `site` since the last configure/disable.
  std::size_t injected(const std::string& site) const;

  /// Total injections fired since the last configure/disable.
  std::size_t total_injected() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  std::atomic<std::size_t> total_{0};
  mutable std::mutex mutex_;
  FaultInjectorConfig config_;
  std::map<std::string, std::size_t> counts_;
};

}  // namespace ccd::util

/// Injection site: throws ExceptionType when the process-wide injector is
/// armed and elects (site, key). `key` must identify the work unit
/// deterministically (an id, an index, or a hash of the inputs) so runs are
/// reproducible. Zero-cost when disarmed beyond one relaxed atomic load.
#define CCD_FAULT_POINT(site, key, ExceptionType)                            \
  do {                                                                       \
    ::ccd::util::FaultInjector& ccd_fi_ =                                    \
        ::ccd::util::FaultInjector::instance();                              \
    if (ccd_fi_.armed() &&                                                   \
        ccd_fi_.should_inject(site, static_cast<std::uint64_t>(key))) {      \
      throw ExceptionType(std::string("injected fault at ") + site);         \
    }                                                                        \
  } while (false)
